"""The virtual testbed: a fresh controlled environment per measurement.

The paper populates its performance database by running each application
configuration "in a virtual execution environment for different levels of
allocated resources".  A :class:`Testbed` assembles exactly that: a
simulator, hosts, links, optional background daemons, and one sandbox per
application component with the requested resource limits.

Each profiling run uses a *fresh* testbed so measurements are independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster import BackgroundLoad, Host, Network
from ..sim import Simulator, stream
from .limits import LimiterMode, ResourceLimits
from .sandbox import Sandbox

__all__ = ["HostSpec", "LinkSpec", "Testbed"]


@dataclass(frozen=True)
class HostSpec:
    """Static description of one host in the execution environment."""

    name: str
    cpu_speed: float
    mem_pages: int = 32768


@dataclass(frozen=True)
class LinkSpec:
    """Duplex link between two hosts."""

    a: str
    b: str
    bandwidth: float
    latency: float = 0.0


@dataclass
class DaemonSpec:
    """Background OS activity on a host (Fig. 3b's 100 %-share gap)."""

    host: str
    mean_interval: float = 0.25
    cpu_fraction: float = 0.02

    def burst_work(self, cpu_speed: float) -> float:
        return self.cpu_fraction * cpu_speed * self.mean_interval


class Testbed:
    """One controlled execution environment instance."""

    __test__ = False  # keep pytest from collecting this as a test class

    def __init__(
        self,
        host_specs: List[HostSpec],
        link_specs: List[LinkSpec] = (),
        mode: str = LimiterMode.IDEAL,
        seed: int = 0,
        daemons: List[DaemonSpec] = (),
        tiebreak=None,
    ):
        self.mode = mode
        self.seed = seed
        # ``tiebreak`` (see repro.analysis.schedule) reorders same-instant
        # event ties for schedule exploration; None is byte-identical FIFO.
        self.sim = Simulator(tiebreak=tiebreak)
        self.network = Network(self.sim)
        self.hosts: Dict[str, Host] = {}
        self.sandboxes: Dict[str, Sandbox] = {}
        self.daemons: List[BackgroundLoad] = []
        for spec in host_specs:
            host = Host(self.sim, spec.name, spec.cpu_speed, spec.mem_pages)
            self.network.register(host)
            self.hosts[spec.name] = host
        for link in link_specs:
            self.network.connect(link.a, link.b, link.bandwidth, link.latency)
        for i, dspec in enumerate(daemons):
            host = self.hosts[dspec.host]
            self.daemons.append(
                BackgroundLoad(
                    host,
                    rng=stream(seed, f"daemon.{dspec.host}.{i}"),
                    mean_interval=dspec.mean_interval,
                    burst_work=dspec.burst_work(host.cpu.speed),
                )
            )

    def sandbox(
        self,
        host_name: str,
        limits: ResourceLimits = ResourceLimits(),
        name: Optional[str] = None,
        **kwargs,
    ) -> Sandbox:
        """Create a sandbox on ``host_name`` with the given limits."""
        host = self.hosts[host_name]
        sb = Sandbox(
            host,
            limits=limits,
            mode=self.mode,
            name=name or f"{host_name}.sandbox",
            **kwargs,
        )
        self.sandboxes[sb.name] = sb
        return sb

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def shutdown(self) -> None:
        for daemon in self.daemons:
            daemon.stop()
        for sb in self.sandboxes.values():
            sb.close()
