"""The sandbox: a resource-constrained execution context for one process.

This is the reproduction of the paper's user-level virtual execution
environment ([7], Section 5.1).  Application code never touches the host
directly; every compute / send / recv / memory request goes through a
:class:`Sandbox` ("API interception"), which

- enforces the configured CPU share, either as an ideal fluid cap or by the
  paper's mechanism — a controller that wakes every few milliseconds and
  suspends/resumes the process (priority manipulation) to steer windowed
  average usage to the target;
- enforces the network bandwidth limit by delaying sends (token bucket) or
  capping the flow rate;
- enforces the physical-memory limit by bounding the resident set and
  charging protection-fault costs;
- keeps the progress accounting that both the limiter and the run-time
  monitoring agent consume.

Several sandboxes can run on one host without interfering (Section 6.2);
benchmarks verify this isolation property.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..cluster.host import Host
from ..sim import Event, Process, SimulationError, Simulator
from .limits import LimiterMode, ResourceLimits
from .net_limiter import TokenBucket
from .progress import ProgressEstimator

__all__ = ["Sandbox"]

#: Default controller quantum — the paper adjusts priority "every few
#: milliseconds".
DEFAULT_QUANTUM = 0.005
#: Credit bound of the quantum controller (seconds of full-speed burst).
DEFAULT_BURST = 0.02
#: Default cost of one soft page fault (seconds).
DEFAULT_FAULT_COST = 5e-5


class Sandbox:
    """Resource-constrained execution context bound to one host process."""

    def __init__(
        self,
        host: Host,
        limits: ResourceLimits = ResourceLimits(),
        mode: str = LimiterMode.IDEAL,
        name: str = "sandbox",
        weight: float = 1.0,
        quantum: float = DEFAULT_QUANTUM,
        burst: float = DEFAULT_BURST,
        fault_cost: float = DEFAULT_FAULT_COST,
        usage_window: float = 0.1,
    ):
        if mode not in LimiterMode.ALL:
            raise ValueError(f"unknown limiter mode {mode!r}")
        self.host = host
        self.sim: Simulator = host.sim
        self.limits = limits
        self.mode = mode
        self.name = name
        self.weight = float(weight)
        self.quantum = float(quantum)
        self.burst = float(burst)
        self.fault_cost = float(fault_cost)

        # -- CPU accounting ------------------------------------------------
        self._active_job = None
        self._compute_queue: Deque[Tuple[float, Event]] = deque()
        self._finished_consumed = 0.0
        self._suspended = False
        self._credit = 0.0
        self.progress = ProgressEstimator(window=usage_window)
        #: (time, achieved share over the last quantum) samples — Fig. 3(a).
        self.usage_trace: list = []
        self.trace_usage = False
        self._runnable_since: Optional[float] = None
        self._runnable_time = 0.0
        self._controller_proc: Optional[Process] = None
        self._wake: Optional[Event] = None
        self._closed = False
        if self.mode == LimiterMode.QUANTUM and self.limits.cpu_share is not None:
            self._start_controller()

        # -- network -----------------------------------------------------------
        self._bucket: Optional[TokenBucket] = None
        if self.limits.net_bw is not None and self.mode == LimiterMode.QUANTUM:
            self._bucket = TokenBucket(
                rate=self.limits.net_bw, burst=max(1.0, self.limits.net_bw * 0.05)
            )
        # Receive-side shaping: the paper's sandbox delays *receiving* of
        # messages too, so a bandwidth-limited process sees inbound data at
        # its configured rate even when the physical link is much faster.
        self._recv_bucket: Optional[TokenBucket] = None
        if self.limits.net_bw is not None:
            self._recv_bucket = TokenBucket(
                rate=self.limits.net_bw, burst=max(1.0, self.limits.net_bw * 0.01)
            )
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        #: (start, end, size) of completed sends — monitoring-agent input.
        self.send_log: list = []
        #: (arrival, delivered, size) of completed receives.
        self.recv_log: list = []
        #: (start, end, size) of completed disk operations.
        self.disk_log: list = []
        # Entries trimmed off the front of each bounded log, so consumers
        # holding absolute indices (the monitoring agent's ``_net_seen``)
        # can re-anchor after a trim instead of slicing out of range.
        self.send_log_dropped = 0
        self.recv_log_dropped = 0
        self.disk_log_dropped = 0

        # -- memory ------------------------------------------------------------
        self.mem_space = None
        if self.limits.mem_pages is not None:
            self.mem_space = host.memory.create_space(self.limits.mem_pages)
        self._next_page = 0

    # ------------------------------------------------------------------ CPU
    @property
    def now(self) -> float:
        return self.sim.now

    def cpu_consumed(self) -> float:
        """Total CPU work completed by this sandbox so far."""
        if self._active_job is not None:
            self.host.cpu.sync()
            return self._finished_consumed + self._active_job.consumed
        return self._finished_consumed

    def runnable_time(self) -> float:
        """Cumulative time this sandbox had CPU demand outstanding."""
        total = self._runnable_time
        if self._runnable_since is not None:
            total += self.sim.now - self._runnable_since
        return total

    def achieved_share(self) -> Optional[float]:
        """Windowed average share of the host CPU actually received."""
        return self.progress.fraction(self.host.cpu.speed, now=self.sim.now)

    def compute(self, work: float) -> Event:
        """Request ``work`` units of CPU; returns a waitable completion event.

        Requests from one sandbox are serialized (the sandboxed process is
        single-threaded, like the paper's Win32 application threads).
        """
        if work < 0:
            raise SimulationError(f"work must be non-negative, got {work!r}")
        done = Event(self.sim)
        if self._runnable_since is None:
            self._runnable_since = self.sim.now
        self._compute_queue.append((work, done))
        if self._active_job is None:
            self._dispatch_next()
        if self._wake is not None:
            self._wake.succeed()
            self._wake = None
        return done

    def _cpu_cap(self) -> Optional[float]:
        if self.mode == LimiterMode.IDEAL and self.limits.cpu_share is not None:
            return self.limits.cpu_share * self.host.cpu.speed
        return None

    def _dispatch_next(self) -> None:
        if not self._compute_queue:
            if self._runnable_since is not None:
                self._runnable_time += self.sim.now - self._runnable_since
                self._runnable_since = None
            return
        work, done = self._compute_queue.popleft()
        weight = 0.0 if self._suspended else self.weight
        job = self.host.cpu.execute(work, weight=weight, cap=self._cpu_cap(), owner=self)
        self._active_job = job

        def on_done(event: Event) -> None:
            self._finished_consumed += job.consumed
            self._active_job = None
            if event._ok:
                self._dispatch_next()
                done.succeed(self.sim.now)
            else:
                event.defused = True
                self._dispatch_next()
                done.fail(event._value)

        job.done.callbacks.append(on_done)

    def _start_controller(self) -> None:
        self._controller_proc = self.sim.process(
            self._controller(), name=f"{self.name}.cpu-controller"
        )

    def _controller(self):
        """Quantum feedback loop: the paper's priority-manipulation scheme.

        Credit accrues at ``share * speed`` work units per second while the
        process is runnable and is spent by actual progress; a negative
        balance suspends the process, a positive one resumes it.
        """
        last_consumed = self.cpu_consumed()
        burst_work = self.burst * self.host.cpu.speed
        while not self._closed:
            runnable = self._runnable_since is not None or self._compute_queue
            if not runnable:
                # Park until the application asks for CPU again; otherwise
                # the controller's ticks would keep the simulation alive
                # forever (and burn events while the app is blocked).
                self._wake = Event(self.sim)
                yield self._wake
                self._wake = None
                last_consumed = self.cpu_consumed()
            yield self.sim.timeout(self.quantum)
            if self._closed:
                return
            share = self.limits.cpu_share
            if share is None:
                continue
            consumed = self.cpu_consumed()
            used = consumed - last_consumed
            last_consumed = consumed
            runnable = self._runnable_since is not None or self._compute_queue
            if runnable or used > 0:
                self._credit += share * self.host.cpu.speed * self.quantum
            self._credit -= used
            self._credit = max(-burst_work, min(burst_work, self._credit))
            if self.trace_usage:
                self.usage_trace.append(
                    (self.sim.now, used / (self.host.cpu.speed * self.quantum))
                )
            self.progress.record(self.sim.now, consumed)
            if self._credit <= 0 and not self._suspended:
                self._set_suspended(True)
            elif self._credit > 0 and self._suspended:
                self._set_suspended(False)

    def _set_suspended(self, suspended: bool) -> None:
        self._suspended = suspended
        if self._active_job is not None:
            self.host.cpu.share.set_weight(
                self._active_job, 0.0 if suspended else self.weight
            )

    # -------------------------------------------------------------- network
    def send(self, dst: str, port: str, payload, size: float) -> Process:
        """Send a message subject to the bandwidth limit; yields the Message."""
        return self.sim.process(
            self._send(dst, port, payload, size), name=f"{self.name}.send"
        )

    def _send(self, dst: str, port: str, payload, size: float):
        start = self.sim.now
        cap = None
        if self.limits.net_bw is not None:
            if self._bucket is not None:
                delay = self._bucket.reserve(size, self.sim.now)
                if delay > 0:
                    yield self.sim.timeout(delay)
            else:
                cap = self.limits.net_bw
        msg = yield self.host.send(dst, port, payload, size, cap=cap, owner=self)
        self.bytes_sent += size
        self.send_log.append((start, self.sim.now, size))
        if len(self.send_log) > 4096:
            del self.send_log[:2048]
            self.send_log_dropped += 2048
        return msg

    def recv(self, port: str, filter=None) -> Process:
        """Wait for the next message on ``port`` (optionally filtered).

        Inbound data is shaped to the sandbox's bandwidth limit: delivery of
        a message is delayed until its bytes fit the configured rate — the
        paper's "delaying ... receiving of messages".  Yields the Message.
        """
        return self.sim.process(self._recv(port, filter), name=f"{self.name}.recv")

    def _recv(self, port: str, filter=None):
        msg = yield self.host.mailbox(port).get(filter=filter)
        if self._recv_bucket is not None:
            delay = self._recv_bucket.reserve(msg.size, self.sim.now)
            if delay > 0:
                yield self.sim.timeout(delay)
        self.bytes_received += msg.size
        # Log (transmission start, delivered, size): the span covers wire
        # time plus any shaping, which is exactly the "effective bandwidth"
        # the monitoring agent must estimate.
        self.recv_log.append((getattr(msg, "send_time", self.sim.now), self.sim.now, msg.size))
        if len(self.recv_log) > 4096:
            del self.recv_log[:2048]
            self.recv_log_dropped += 2048
        return msg

    def note_received(self, msg) -> None:
        """Record reception for bandwidth accounting (raw-mailbox paths)."""
        self.bytes_received += msg.size

    # ----------------------------------------------------------------- disk
    def disk_read(self, nbytes: float) -> Event:
        """Read from the host disk, capped at the sandbox's disk bandwidth."""
        return self._disk_op(nbytes, "read")

    def disk_write(self, nbytes: float) -> Event:
        """Write to the host disk, capped at the sandbox's disk bandwidth."""
        return self._disk_op(nbytes, "write")

    def _disk_op(self, nbytes: float, kind: str) -> Event:
        cap = self.limits.disk_bw
        op = getattr(self.host.disk, kind)
        start = self.sim.now
        done = op(nbytes, weight=self.weight, cap=cap, owner=self)

        def log(event: Event) -> None:
            if event._ok:
                self.disk_log.append((start, self.sim.now, nbytes))
                if len(self.disk_log) > 4096:
                    del self.disk_log[:2048]
                    self.disk_log_dropped += 2048

        if done.callbacks is not None:
            done.callbacks.append(log)
        return done

    # --------------------------------------------------------------- memory
    def alloc_pages(self, count: int) -> range:
        """Allocate a fresh range of virtual pages."""
        start = self._next_page
        self._next_page += count
        if self.mem_space is not None:
            return self.mem_space.alloc_range(start, count)
        return range(start, start + count)

    def touch_pages(self, pages) -> Event:
        """Access pages; completion is delayed by protection-fault costs."""
        faults = 0
        if self.mem_space is not None:
            faults = self.mem_space.touch(pages)
        return self.sim.timeout(faults * self.fault_cost, value=faults)

    def free_pages(self, pages) -> None:
        if self.mem_space is not None:
            self.mem_space.free(pages)

    # ---------------------------------------------------------------- misc
    def sleep(self, dt: float) -> Event:
        return self.sim.timeout(dt)

    def set_limits(self, limits: ResourceLimits) -> None:
        """Reconfigure the sandbox (used to vary resources in experiments)."""
        old = self.limits
        self.limits = limits
        # CPU: update the active job's cap in ideal mode; the quantum
        # controller reads the new share on its next tick.
        if self.mode == LimiterMode.IDEAL and self._active_job is not None:
            self.host.cpu.share.set_cap(self._active_job, self._cpu_cap())
        if (
            self.mode == LimiterMode.QUANTUM
            and limits.cpu_share is not None
            and self._controller_proc is None
        ):
            self._start_controller()
        # Network.
        if limits.net_bw is not None and self.mode == LimiterMode.QUANTUM:
            if self._bucket is None:
                self._bucket = TokenBucket(
                    rate=limits.net_bw, burst=max(1.0, limits.net_bw * 0.05)
                )
            else:
                self._bucket.set_rate(limits.net_bw, self.sim.now)
        elif limits.net_bw is None:
            self._bucket = None
        if limits.net_bw is not None:
            if self._recv_bucket is None:
                self._recv_bucket = TokenBucket(
                    rate=limits.net_bw, burst=max(1.0, limits.net_bw * 0.01)
                )
            else:
                self._recv_bucket.set_rate(limits.net_bw, self.sim.now)
        else:
            self._recv_bucket = None
        # Memory.
        if limits.mem_pages is not None and self.mem_space is not None:
            if limits.mem_pages != old.mem_pages:
                self.mem_space.set_resident_limit(limits.mem_pages)
        elif limits.mem_pages is not None and self.mem_space is None:
            self.mem_space = self.host.memory.create_space(limits.mem_pages)

    def close(self) -> None:
        """Release reservations and stop the controller."""
        self._closed = True
        if self.mem_space is not None:
            self.host.memory.release_space(self.mem_space)
            self.mem_space = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Sandbox {self.name!r} on {self.host.name!r} {self.limits}>"
