"""Virtual execution environment: resource-constrained sandboxes and testbeds."""

from .limits import LimiterMode, ResourceLimits
from .net_limiter import TokenBucket
from .progress import ProgressEstimator
from .sandbox import DEFAULT_FAULT_COST, DEFAULT_QUANTUM, Sandbox
from .testbed import DaemonSpec, HostSpec, LinkSpec, Testbed

__all__ = [
    "ResourceLimits",
    "LimiterMode",
    "Sandbox",
    "TokenBucket",
    "ProgressEstimator",
    "Testbed",
    "HostSpec",
    "LinkSpec",
    "DaemonSpec",
    "DEFAULT_QUANTUM",
    "DEFAULT_FAULT_COST",
]
