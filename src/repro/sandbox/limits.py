"""Resource-limit specifications for the virtual execution environment."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["ResourceLimits", "LimiterMode"]


class LimiterMode:
    """How the sandbox enforces its CPU limit.

    - ``IDEAL``: fluid rate cap — the job never exceeds ``share * speed``
      at any instant (the limiting behaviour the paper's sandbox converges
      to on average).
    - ``QUANTUM``: the paper's actual mechanism — a controller wakes every
      few milliseconds, estimates progress, and manipulates the process
      priority (here: suspend/resume) to steer the *windowed average* share
      to the target.  Produces the measured sawtooth of Fig. 3(a).
    """

    IDEAL = "ideal"
    QUANTUM = "quantum"

    ALL = (IDEAL, QUANTUM)


@dataclass(frozen=True)
class ResourceLimits:
    """Per-process resource caps; ``None`` means unconstrained.

    cpu_share:
        Fraction of the host CPU (0, 1].
    mem_pages:
        Resident physical page limit.
    net_bw:
        Network bandwidth in bytes/second applied to this process's flows.
    disk_bw:
        Disk transfer bandwidth in bytes/second for this process's I/O.
    """

    cpu_share: Optional[float] = None
    mem_pages: Optional[int] = None
    net_bw: Optional[float] = None
    disk_bw: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cpu_share is not None and not (0.0 < self.cpu_share <= 1.0):
            raise ValueError(f"cpu_share must be in (0, 1], got {self.cpu_share!r}")
        if self.mem_pages is not None and self.mem_pages <= 0:
            raise ValueError(f"mem_pages must be positive, got {self.mem_pages!r}")
        if self.net_bw is not None and self.net_bw <= 0:
            raise ValueError(f"net_bw must be positive, got {self.net_bw!r}")
        if self.disk_bw is not None and self.disk_bw <= 0:
            raise ValueError(f"disk_bw must be positive, got {self.disk_bw!r}")

    def with_(self, **changes) -> "ResourceLimits":
        """Functional update (used when the testbed varies one resource)."""
        return replace(self, **changes)

    @staticmethod
    def unlimited() -> "ResourceLimits":
        return ResourceLimits()
