"""Progress-metric estimation over a sliding history window.

The paper's injected sandbox code "continually monitors application requests
for operating system resources and estimates a 'progress' metric (e.g. what
fraction of the CPU share has the application been receiving)".  This module
provides that estimator: it ingests (time, cumulative-quantity) samples and
answers windowed-average rate/fraction queries.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

__all__ = ["ProgressEstimator"]


class ProgressEstimator:
    """Windowed rate estimator over a cumulative counter.

    Samples are ``(time, cumulative_value)`` with both non-decreasing.  The
    estimated rate over the trailing ``window`` is
    ``(value_now - value_then) / (now - then)``.
    """

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.window = float(window)
        self._samples: Deque[Tuple[float, float]] = deque()

    def record(self, time: float, cumulative: float) -> None:
        if self._samples and time < self._samples[-1][0] - 1e-12:
            raise ValueError("samples must be recorded in time order")
        self._samples.append((time, cumulative))
        self._trim(time)

    def _trim(self, now: float) -> None:
        # Keep one sample older than the window edge so interpolation at the
        # edge stays possible.
        cutoff = now - self.window
        while len(self._samples) >= 2 and self._samples[1][0] <= cutoff:
            self._samples.popleft()

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def rate(self, now: Optional[float] = None) -> Optional[float]:
        """Average rate over the trailing window; None with <2 samples."""
        if len(self._samples) < 2:
            return None
        t_end, v_end = self._samples[-1]
        if now is not None and now > t_end:
            t_end = now  # counter unchanged since the last sample
        start = t_end - self.window
        t0, v0 = self._samples[0]
        # Interpolate the cumulative value at the window start.
        if t0 < start:
            for (ta, va), (tb, vb) in zip(self._samples, list(self._samples)[1:]):
                if tb >= start:
                    if tb == ta:
                        v_start = vb
                    else:
                        frac = (start - ta) / (tb - ta)
                        v_start = va + frac * (vb - va)
                    t_start = start
                    break
            else:  # pragma: no cover - defensive
                t_start, v_start = t0, v0
        else:
            t_start, v_start = t0, v0
        span = t_end - t_start
        if span <= 1e-12:
            return None
        return (v_end - v_start) / span

    def fraction(self, capacity_rate: float, now: Optional[float] = None) -> Optional[float]:
        """Windowed rate as a fraction of ``capacity_rate``."""
        r = self.rate(now)
        if r is None or capacity_rate <= 0:
            return None
        return r / capacity_rate

    def reset(self) -> None:
        self._samples.clear()
