"""Token-bucket network limiter.

Implements the paper's "delaying sending ... of messages to ensure that the
application sees the desired bandwidth": a send is held back until enough
tokens (bytes) have accrued at the configured rate.
"""

from __future__ import annotations

__all__ = ["TokenBucket"]


class TokenBucket:
    """Byte token bucket with lazy refill in virtual time.

    ``reserve(size, now)`` books ``size`` bytes and returns how long the
    caller must wait before injecting them.  Oversized messages (bigger than
    the burst) are supported by letting the balance go negative.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def set_rate(self, rate: float, now: float) -> None:
        """Change the refill rate; the balance is settled at the old rate."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self._refill(now)
        self.rate = float(rate)

    def peek_tokens(self, now: float) -> float:
        self._refill(now)
        return self._tokens

    def reserve(self, size: float, now: float) -> float:
        """Debit ``size`` bytes; return the required delay (>= 0)."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size!r}")
        self._refill(now)
        self._tokens -= size
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate
