"""Composite events: wait for *any* or *all* of a set of events."""

from __future__ import annotations

from typing import Dict, Iterable, List

from .core import Event, SimulationError, Simulator

__all__ = ["Condition", "AnyOf", "AllOf", "ConditionValue"]


class ConditionValue:
    """Ordered mapping of the triggered events of a condition to their values.

    Preserves the order in which the events were passed to the condition so
    callers can write ``value[first_event]`` or iterate deterministically.
    """

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, event: Event):
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def todict(self) -> Dict[Event, object]:
        return {e: e.value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Fires once ``evaluate(events, n_triggered)`` becomes true.

    A failure of any constituent event fails the whole condition immediately
    (the constituent is defused so the failure surfaces exactly once).
    """

    def __init__(self, sim: Simulator, evaluate, events: Iterable[Event]):
        super().__init__(sim)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        if not self._events:
            self.succeed(ConditionValue())
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_value(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            # Use `processed` rather than `triggered`: Timeout events carry
            # their value from construction, but have not *fired* until their
            # callbacks ran.
            if event.processed and event._ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect_value())


class AnyOf(Condition):
    """Fires when the first of ``events`` fires."""

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim, lambda events, count: count >= 1, events)


class AllOf(Condition):
    """Fires when every one of ``events`` has fired."""

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim, lambda events, count: count == len(events), events)
