"""Discrete-event simulation kernel.

This module provides the virtual-time substrate on which every other part of
the reproduction runs: the cluster model, the sandboxed virtual execution
environment, and the applications themselves are all coroutine processes
scheduled by a :class:`Simulator`.

The design follows the classic event/process style (as popularized by SimPy,
reimplemented here from scratch): a :class:`Simulator` owns a priority queue
of :class:`Event` objects; application logic is written as Python generator
functions that ``yield`` events and are resumed when those events fire.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

# Event scheduling priorities (lower fires first at equal times).
URGENT = 0
NORMAL = 1

_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The interrupting party may attach an arbitrary ``cause`` describing why
    the process was interrupted (e.g. a reconfiguration request).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt({self.cause!r})"


class Event:
    """A happening at a point in simulated time.

    Events start *pending*; calling :meth:`succeed` or :meth:`fail` schedules
    them on the simulator queue, and once the queue processes them their
    callbacks run.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        #: If True, a failure of this event that nobody handles will not
        #: crash the simulation run.
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Mark the event successful and schedule its callbacks."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Mark the event failed; waiters receive ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, 0.0, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome (used by condition events)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- plumbing ---------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:
            cb(self)
        if not self._ok and not self.defused:
            exc = self._value
            raise exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` time units.

    ``priority`` orders the firing against other events at the same
    timestamp (:data:`URGENT` before :data:`NORMAL`): periodic control
    loops that must observe state *before* same-instant activity — e.g. a
    liveness watchdog vs. message deliveries — take :data:`URGENT` so
    their ordering is semantic instead of a queue-arrival accident.
    """

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        priority: int = NORMAL,
    ):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, delay, priority)


class _Initialize(Event):
    """Kick-starts a freshly created process."""

    __slots__ = ("process",)

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        #: Back-reference for instrumentation (the observability recorder
        #: opens the process's lifecycle span when this event fires).
        self.process = process
        self.callbacks.append(process._resume)
        sim._enqueue(self, 0.0, URGENT)


class Process(Event):
    """A coroutine driven by the events it yields.

    The process object is itself an event that fires when the generator
    terminates: its value is the generator's return value, or the unhandled
    exception if it crashed.
    """

    __slots__ = ("generator", "_target", "name", "obs_span", "obs_parent")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() requires a generator, got {generator!r}"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        #: Span context for :mod:`repro.obs`: the id of this process's
        #: lifecycle span (set by a bound recorder when the process starts)
        #: and the span that was active in the *spawning* context — captured
        #: here because by the time the initialize event fires the creator
        #: is no longer the active process.
        self.obs_span: Optional[int] = None
        creator = sim._active
        self.obs_parent: Optional[int] = (
            creator.obs_span if creator is not None else None
        )
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must be alive and must not interrupt itself.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever the process was waiting on so that the stale
        # event no longer resumes it.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        interruption = Event(self.sim)
        interruption._ok = False
        interruption._value = Interrupt(cause)
        interruption.defused = True
        interruption.callbacks.append(self._resume)
        self.sim._enqueue(interruption, 0.0, URGENT)

    # -- plumbing ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.sim._active = self
        try:
            while True:
                try:
                    if event._ok:
                        result = self.generator.send(event._value)
                    else:
                        event.defused = True
                        result = self.generator.throw(event._value)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    break
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    break

                if not isinstance(result, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded a non-event: {result!r}"
                    )
                    self._ok = False
                    self._value = exc
                    break
                if result.sim is not self.sim:
                    exc = SimulationError("yielded event belongs to another simulator")
                    self._ok = False
                    self._value = exc
                    break

                if result.callbacks is not None:
                    # Pending (or triggered but unprocessed) event: wait for it.
                    result.callbacks.append(self._resume)
                    self._target = result
                    self.sim._active = None
                    return
                # Already processed: feed its outcome straight back in.
                event = result
        finally:
            if self.sim._active is self:
                self.sim._active = None
        # Generator finished (or crashed): fire the process event.
        self._target = None
        self.sim._enqueue(self, 0.0, URGENT)
        if not self._ok and not self.callbacks:
            # Nobody is waiting for the crash; let it propagate via
            # _run_callbacks unless defused.
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Simulator:
    """Owns virtual time and the pending-event queue.

    Ties — events scheduled at the same ``(time, priority)`` — are broken
    by a FIFO counter by default.  A **tiebreak policy** (see
    :mod:`repro.analysis.schedule`) may replace that counter's key to
    explore alternative same-instant orders: any object with a
    ``key(time, priority, seq, event)`` method returning a sortable value
    that is unique per event.  With no policy installed (the default) the
    queue behaves byte-identically to the plain FIFO counter.
    """

    def __init__(self, start: float = 0.0, tiebreak: Optional[Any] = None):
        self._now = float(start)
        self._heap: list = []
        self._seq = count()
        self._tiebreak = tiebreak
        self._active: Optional[Process] = None
        #: Opt-in instrumentation: called as ``hook(time, priority, seq,
        #: event)`` just before each popped event's callbacks run.  Used by
        #: :class:`repro.analysis.races.RaceDetector`; None costs nothing.
        self.step_hook: Optional[Callable[[float, int, int, Event], None]] = None
        #: Discovery point for the observability layer: a bound
        #: :class:`repro.obs.TraceRecorder`, or None (the default — every
        #: instrumented call site guards on this, so disabled tracing costs
        #: one attribute read).
        self.obs: Optional[Any] = None
        #: Discovery point for the usage-accounting layer: an attached
        #: :class:`repro.obs.usage.UsageAccountant`, or None.  The runtime
        #: uses it to attribute served work to the active configuration at
        #: ``config.switch`` safe points; like ``obs`` it is strictly
        #: passive, so disabled accounting costs one attribute read.
        self.usage: Optional[Any] = None
        #: Discovery point for the recovery layer: an attached
        #: :class:`repro.recovery.Supervisor`, or None.  ControlBox safe
        #: points notify it (checkpointing) and FaultPlan ``kill`` events
        #: route through it; with no supervisor attached every hook site is
        #: a single ``is None`` check, so disabled recovery costs nothing.
        self.recovery: Optional[Any] = None
        #: Discovery point for the kernel self-profiler: an attached
        #: :class:`repro.obs.perf.KernelProfiler`, or None.  The hot loop
        #: decrements its burst-sampling countdown inline and hands it
        #: observed steps so host wall-clock cost can be attributed per
        #: bucket; it is
        #: strictly passive — it never schedules, draws randomness, or
        #: touches sim state — so profiled runs stay byte-identical and
        #: disabled profiling costs one attribute read.
        self.perf: Optional[Any] = None

    # -- inspection -------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def is_idle(self) -> bool:
        return not self._heap

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(
        self, delay: float, value: Any = None, priority: int = NORMAL
    ) -> Timeout:
        return Timeout(self, delay, value, priority=priority)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> "Event":
        from .conditions import AnyOf

        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> "Event":
        from .conditions import AllOf

        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def set_tiebreak(self, policy: Optional[Any]) -> None:
        """Install (or clear) the same-instant tiebreak policy.

        Only legal while the queue is empty: mixing keys produced by two
        different policies inside one heap would make entries incomparable.
        """
        if self._heap:
            raise SimulationError(
                "set_tiebreak() with events already scheduled; install the "
                "policy before creating any process or timeout"
            )
        self._tiebreak = policy

    @property
    def tiebreak(self) -> Optional[Any]:
        return self._tiebreak

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        seq = next(self._seq)
        if self._tiebreak is not None:
            seq = self._tiebreak.key(self._now + delay, priority, seq, event)
        heapq.heappush(self._heap, (self._now + delay, priority, seq, event))

    def schedule_callback(
        self, delay: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> Event:
        """Run ``fn()`` after ``delay``; returns the underlying event."""
        ev = Timeout(self, delay, priority=priority)

        def _fire(_e: Event) -> None:
            fn()

        # Callsite identity for the kernel profiler: the wrapper itself has
        # an anonymous qualname, so expose the scheduled function through
        # the standard ``__wrapped__`` convention.
        _fire.__wrapped__ = fn  # type: ignore[attr-defined]
        ev.callbacks.append(_fire)
        return ev

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if self._active is not None:
            raise SimulationError(
                "step() re-entered from inside a process; processes must "
                "yield events instead of driving the kernel"
            )
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        t, _prio, _seq, event = heapq.heappop(self._heap)
        if t < self._now - 1e-12:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = t
        if self.step_hook is not None:
            self.step_hook(t, _prio, _seq, event)
        perf = self.perf
        if perf is not None:
            # Burst sampling: during a profiler off phase the countdown is
            # decremented inline (three ops, no call).  On observed steps
            # pre_step closes the previous event's wall window with a
            # single clock read, so each bucket's cost spans from its
            # event's dispatch to the next event's dispatch — callbacks,
            # chained step hooks, and heap maintenance included.
            n = perf.skip
            if n:
                perf.skip = n - 1
            else:
                perf.pre_step(t, _prio, event)
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until``."""
        if self._active is not None:
            raise SimulationError(
                "run() re-entered from inside a process; processes must "
                "yield events instead of driving the kernel"
            )
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until!r}) is in the past (now={self._now!r})"
            )
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self._now = until
                    return
                self.step()
        except StopSimulation:
            return
        finally:
            # Structural profiling boundary: host time after this point
            # (between run() segments) must not be charged to the last
            # event's bucket.
            if self.perf is not None:
                self.perf.run_pause()
        if until is not None:
            self._now = until

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator``, run, and return its result."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self._now}"
            )
        if not proc.ok:
            raise proc._value
        return proc._value

    def stop(self) -> None:
        """Halt :meth:`run` at the current time (callable from callbacks)."""
        raise StopSimulation()
