"""Discrete-event simulation kernel (virtual time, processes, fluid sharing)."""

from .aggregate import AggregateFlow
from .conditions import AllOf, AnyOf, Condition, ConditionValue
from .core import (
    NORMAL,
    URGENT,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .fluid import FluidJob, FluidShare
from .primitives import Container, Request, Resource, Store, StoreGet, StorePut
from .rng import derive_seed, stream
from .trace import Probe, Tracer

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "URGENT",
    "NORMAL",
    "AnyOf",
    "AllOf",
    "Condition",
    "ConditionValue",
    "Store",
    "StorePut",
    "StoreGet",
    "Resource",
    "Request",
    "Container",
    "FluidShare",
    "FluidJob",
    "AggregateFlow",
    "stream",
    "Tracer",
    "Probe",
    "derive_seed",
]
