"""Fluid (generalized-processor-sharing) resource model.

A :class:`FluidShare` serves a set of concurrent *jobs*, each with a fixed
amount of work.  At every instant, the total service rate ``speed`` is
divided among active jobs in proportion to their weights, subject to
per-job rate *caps* (water-filling).  This single abstraction models both

- a CPU shared by competing processes under proportional-share scheduling
  (weights ≈ priorities; caps ≈ sandbox CPU-share limits), and
- a network link shared by concurrent flows (weights ≈ flow fairness;
  caps ≈ sandbox bandwidth limits).

The implementation is an event-driven fluid simulation: whenever the job
set, a weight, a cap, or the speed changes, all remaining-work figures are
advanced to "now" and the next completion is rescheduled.  Between change
points rates are constant, so the evolution is exact (no time-stepping).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from .core import Event, NORMAL, SimulationError, Simulator

__all__ = ["FluidShare", "FluidJob"]

_EPS = 1e-12


class FluidJob:
    """One unit of work in service at a :class:`FluidShare`.

    Attributes
    ----------
    remaining:
        Work still to be done (same unit as ``FluidShare.speed`` per second).
    consumed:
        Work completed so far (monotone; used for usage accounting).
    weight:
        Scheduling weight; 0 suspends the job.
    cap:
        Optional absolute rate ceiling (work units / second).
    done:
        Event fired when the job's work reaches zero.
    """

    __slots__ = (
        "share",
        "remaining",
        "consumed",
        "weight",
        "cap",
        "done",
        "owner",
        "_rate",
    )

    def __init__(
        self,
        share: "FluidShare",
        work: float,
        weight: float,
        cap: Optional[float],
        owner: Optional[object] = None,
    ):
        self.share = share
        self.remaining = float(work)
        self.consumed = 0.0
        self.weight = float(weight)
        self.cap = cap
        self.owner = owner
        self.done: Event = Event(share.sim)
        self._rate = 0.0

    @property
    def rate(self) -> float:
        """Current instantaneous service rate (valid until the next change)."""
        return self._rate

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def set_weight(self, weight: float) -> None:
        self.share.set_weight(self, weight)

    def set_cap(self, cap: Optional[float]) -> None:
        self.share.set_cap(self, cap)

    def cancel(self) -> None:
        self.share.cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FluidJob remaining={self.remaining:.6g} weight={self.weight}"
            f" cap={self.cap} rate={self._rate:.6g}>"
        )


class FluidShare:
    """Weighted fair sharing of a rated resource with per-job caps."""

    def __init__(self, sim: Simulator, speed: float, name: str = "fluid"):
        if speed < 0:
            raise SimulationError(f"speed must be non-negative, got {speed!r}")
        self.sim = sim
        self.name = name
        self._speed = float(speed)
        self._jobs: Dict[FluidJob, None] = {}
        self._last_update = sim.now
        self._timer_gen = 0
        #: Cumulative busy work served (for utilization accounting).
        self.total_served = 0.0
        #: Passive accounting tap: ``tap(owner, amount)`` is called for
        #: every chunk of served work as it is folded into the lazy
        #: accumulators.  The tap must not touch the simulator (no events,
        #: no RNG) — :class:`repro.obs.usage.UsageAccountant` only sums
        #: floats — so installing one leaves the run byte-identical.
        self.usage_tap: Optional[Callable[[Optional[object], float], None]] = None
        #: Passive speed-change tap: called just *before* ``set_speed``
        #: replaces the rate, so an accountant can fold its capacity
        #: integral (``old_speed * dt``) exactly at the change point and
        #: keep its per-event hook O(1).  Same passivity contract as
        #: :attr:`usage_tap`.
        self.speed_tap: Optional[Callable[[], None]] = None

    # -- public API -------------------------------------------------------
    @property
    def speed(self) -> float:
        return self._speed

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    @property
    def busy(self) -> bool:
        return any(j.weight > 0 or (j.cap or 0) > 0 for j in self._jobs)

    def submit(
        self,
        work: float,
        weight: float = 1.0,
        cap: Optional[float] = None,
        owner: Optional[object] = None,
    ) -> FluidJob:
        """Enter ``work`` units of demand; returns the job handle.

        Zero-work jobs complete immediately.
        """
        if work < 0:
            raise SimulationError(f"work must be non-negative, got {work!r}")
        if weight < 0:
            raise SimulationError(f"weight must be non-negative, got {weight!r}")
        if cap is not None and cap < 0:
            raise SimulationError(f"cap must be non-negative, got {cap!r}")
        if self.sim.perf is not None:
            self.sim.perf.fluid_event(self.name, "submit")
        self._advance()
        job = FluidJob(self, work, weight, cap, owner)
        if work <= _EPS:
            job.remaining = 0.0
            job.done.succeed(self.sim.now)
        else:
            self._jobs[job] = None
        self._reschedule()
        return job

    def add_work(self, job: FluidJob, amount: float) -> bool:
        """Top up an in-service job's remaining work in place.

        The aggregate-flow primitive (see :mod:`repro.sim.aggregate`): a
        population of N clients is represented by *one* job whose demand
        grows by ``amount`` per arrival batch, so a rate change costs one
        O(active jobs) reschedule regardless of N — the same lazy-integral
        trick the usage accountant uses, generalized into the resource.

        Returns ``False`` (without applying anything) when the job is no
        longer in service — it completed during the catch-up advance or
        was cancelled — so the caller can resubmit a fresh job.
        """
        if amount < 0:
            raise SimulationError(f"amount must be non-negative, got {amount!r}")
        if job not in self._jobs:
            return False
        if amount <= _EPS:
            return True
        if self.sim.perf is not None:
            self.sim.perf.fluid_event(self.name, "submit")
        self._advance()
        if job not in self._jobs:  # completed exactly at the catch-up point
            return False
        job.remaining += float(amount)
        self._reschedule()
        return True

    def set_weight(self, job: FluidJob, weight: float) -> None:
        if weight < 0:
            raise SimulationError(f"weight must be non-negative, got {weight!r}")
        if job not in self._jobs:
            return
        if self.sim.perf is not None:
            self.sim.perf.fluid_event(self.name, "set_weight")
        self._advance()
        job.weight = float(weight)
        self._reschedule()

    def set_cap(self, job: FluidJob, cap: Optional[float]) -> None:
        if cap is not None and cap < 0:
            raise SimulationError(f"cap must be non-negative, got {cap!r}")
        if job not in self._jobs:
            return
        if self.sim.perf is not None:
            self.sim.perf.fluid_event(self.name, "set_cap")
        self._advance()
        job.cap = cap
        self._reschedule()

    def set_speed(self, speed: float) -> None:
        if speed < 0:
            raise SimulationError(f"speed must be non-negative, got {speed!r}")
        if self.sim.perf is not None:
            self.sim.perf.fluid_event(self.name, "set_speed")
        self._advance()
        if self.speed_tap is not None:
            self.speed_tap()
        self._speed = float(speed)
        self._reschedule()

    def cancel(self, job: FluidJob) -> None:
        """Abort a job; its ``done`` event fails with :class:`SimulationError`."""
        if job not in self._jobs:
            return
        if self.sim.perf is not None:
            self.sim.perf.fluid_event(self.name, "cancel")
        self._advance()
        del self._jobs[job]
        job._rate = 0.0
        job.done.defused = True
        job.done.fail(SimulationError("job cancelled"))
        self._reschedule()

    def utilization_since(self, t0: float, served0: float) -> float:
        """Average utilization over [t0, now] given a prior snapshot.

        Callers snapshot ``(sim.now, total_served)`` and later compute the
        achieved fraction of capacity.  Requires an up-to-date accumulator,
        so we advance first.
        """
        self._advance()
        self._reschedule()
        dt = self.sim.now - t0
        if dt <= _EPS or self._speed <= _EPS:
            return 0.0
        return (self.total_served - served0) / (self._speed * dt)

    def snapshot(self) -> tuple:
        """(now, total_served) pair for :meth:`utilization_since`."""
        self.sync()
        return (self.sim.now, self.total_served)

    def served_now(self) -> float:
        """``total_served`` projected to the current instant, read-only.

        The passive twin of :meth:`sync`: the lazy accumulators and the
        completion timer are left untouched, so instrumentation (the usage
        accountant's step hook) can read progress between events without
        perturbing the run.
        """
        dt = self.sim.now - self._last_update
        if dt <= 0.0 or not self._jobs:
            return self.total_served
        extra = 0.0
        for job in self._jobs:
            if job._rate > 0.0:
                extra += min(job._rate * dt, job.remaining)
        return self.total_served + extra

    def sync(self) -> None:
        """Bring lazy work accumulators up to the current time.

        Progress advances lazily at event boundaries; call this before
        reading ``consumed``/``total_served`` between events.
        """
        self._advance()
        self._reschedule()

    def peek(self) -> dict:
        """Passive state projection for inspectors, read-only.

        Like :meth:`served_now` but for the whole share: every figure is
        projected to the current instant *without* touching
        ``_last_update`` or re-arming the completion timer, so reading it
        between :meth:`Simulator.step` calls leaves the event sequence
        byte-identical.  (``sync``/``snapshot``/``utilization_since`` all
        fold the accumulators and reschedule — never call those from a
        read-only path.)
        """
        now = self.sim.now
        dt = max(0.0, now - self._last_update)
        jobs = []
        projected_total = self.total_served
        for job in self._jobs:
            served = min(job._rate * dt, job.remaining) if job._rate > 0.0 else 0.0
            projected_total += served
            jobs.append(
                {
                    "remaining": job.remaining - served,
                    "consumed": job.consumed + served,
                    "rate": job._rate,
                    "weight": job.weight,
                    "cap": job.cap,
                    "owner": str(job.owner) if job.owner is not None else None,
                }
            )
        return {
            "name": self.name,
            "speed": self._speed,
            "active_jobs": len(self._jobs),
            "total_served": projected_total,
            "jobs": jobs,
        }

    # -- fluid mechanics ----------------------------------------------------
    def _rates(self) -> Dict[FluidJob, float]:
        """Water-filling: weighted shares with per-job ceilings."""
        rates: Dict[FluidJob, float] = {}
        pending = []
        budget = self._speed
        for job in self._jobs:
            if job.weight <= _EPS:
                # Suspended jobs may still be allowed a capped trickle of 0.
                rates[job] = 0.0
            else:
                pending.append(job)
        while pending and budget > _EPS:
            total_w = sum(j.weight for j in pending)
            capped = []
            for job in pending:
                fair = budget * job.weight / total_w
                if job.cap is not None and job.cap < fair - _EPS:
                    capped.append(job)
            if not capped:
                for job in pending:
                    rates[job] = budget * job.weight / total_w
                pending = []
                break
            for job in capped:
                rates[job] = job.cap or 0.0
                budget -= rates[job]
                pending.remove(job)
            budget = max(0.0, budget)
        for job in pending:
            rates[job] = 0.0
        return rates

    def _advance(self) -> None:
        """Progress every job's remaining work to the current time."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        # dt can legitimately be as small as the Zeno-guard step in
        # _reschedule; it must still advance, or a near-finished job would
        # spin its timer forever without completing.
        if dt <= 0.0 or not self._jobs:
            return
        finished = []
        for job in self._jobs:
            delta = job._rate * dt
            if delta > 0:
                done_amount = min(delta, job.remaining)
                job.remaining -= done_amount
                job.consumed += done_amount
                self.total_served += done_amount
                if self.usage_tap is not None:
                    self.usage_tap(job.owner, done_amount)
                if job.remaining <= _EPS * max(1.0, job.consumed):
                    job.remaining = 0.0
                    finished.append(job)
        for job in finished:
            del self._jobs[job]
            job._rate = 0.0
            job.done.succeed(now)

    def _reschedule(self) -> None:
        """Recompute rates and arm a timer for the next completion."""
        if self.sim.perf is not None:
            # The O(active flows) fan-out ROADMAP item 1 targets: every
            # membership/weight/cap/speed change pays one pass over the
            # whole job set here.
            self.sim.perf.fluid_reschedule(self.name, len(self._jobs))
        rates = self._rates()
        horizon = math.inf
        for job, rate in rates.items():
            job._rate = rate
            if rate > _EPS:
                horizon = min(horizon, job.remaining / rate)
        self._timer_gen += 1
        if horizon is math.inf:
            return
        # Zeno guard: with a near-finished job the exact horizon can be so
        # small that now + horizon == now in float arithmetic, which would
        # re-fire the timer forever at a frozen clock.  Bump the horizon to
        # at least one representable step; the overshoot just completes the
        # job (delta is clamped to `remaining` in _advance).
        now = self.sim.now
        horizon = max(horizon, 1e-12, abs(now) * 1e-12)
        gen = self._timer_gen

        def fire() -> None:
            if gen != self._timer_gen:
                return  # stale timer; a newer change superseded it
            self._advance()
            self._reschedule()

        self.sim.schedule_callback(horizon, fire, priority=NORMAL)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FluidShare {self.name!r} speed={self._speed} jobs={len(self._jobs)}>"
