"""Queueing primitives built on the event kernel.

- :class:`Store` — FIFO message queue with optional capacity (mailboxes,
  request queues).
- :class:`Resource` — counted semaphore with FIFO waiters (locks, bounded
  servers).
- :class:`Container` — continuous quantity (token buckets, buffers).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Store", "StorePut", "StoreGet", "Resource", "Request", "Container"]


class StorePut(Event):
    __slots__ = ("item", "store")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item
        #: Back-reference so teardown code (e.g. a supervisor killing a
        #: parked process) can find the owning store without extra plumbing.
        self.store = store
        store._put_waiters.append(self)
        store._dispatch()


class StoreGet(Event):
    __slots__ = ("filter", "store")

    def __init__(self, store: "Store", filter=None):
        super().__init__(store.sim)
        self.filter = filter
        #: Back-reference for :meth:`Store.cancel` from teardown code.
        self.store = store
        store._get_waiters.append(self)
        store._dispatch()


class Store:
    """FIFO store of items; ``put`` and ``get`` return waitable events.

    ``get`` accepts an optional ``filter`` predicate, turning the store into
    a filtered mailbox (used e.g. to wait for a reply matching a request id).
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self, filter=None) -> StoreGet:
        return StoreGet(self, filter)

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; None when empty."""
        if self.items:
            item = self.items.popleft()
            self._dispatch()
            return item
        return None

    def cancel(self, get: StoreGet) -> None:
        """Withdraw a pending ``get`` so it can no longer consume an item.

        Needed when the waiting process is being torn down (e.g. an
        interrupted mailbox receiver): the interrupt detaches the process
        from the event, but the :class:`StoreGet` would otherwise stay
        queued and silently swallow the next item.
        """
        try:
            self._get_waiters.remove(get)
        except ValueError:
            pass

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit puts while there is room.
            while self._put_waiters and len(self.items) < self.capacity:
                put = self._put_waiters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Serve gets. Filtered gets scan the queue; unfiltered take FIFO.
            NO_MATCH = StoreGet  # sentinel distinct from any stored item
            i = 0
            while i < len(self._get_waiters):
                get = self._get_waiters[i]
                matched: Any = NO_MATCH
                if get.filter is None:
                    if self.items:
                        matched = self.items.popleft()
                else:
                    for j, item in enumerate(self.items):
                        if get.filter(item):
                            matched = item
                            del self.items[j]
                            break
                if matched is NO_MATCH:
                    i += 1
                    continue
                del self._get_waiters[i]
                get.succeed(matched)
                progressed = True


class Request(Event):
    """A pending or held claim on a :class:`Resource` unit.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ...  # holding one unit
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        resource._waiters.append(self)
        resource._dispatch()

    def release(self) -> None:
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class Resource:
    """Counted resource with FIFO granting."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self._users: list = []
        self._waiters: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Units currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
        else:
            # Cancelling a queued request is allowed.
            try:
                self._waiters.remove(request)
            except ValueError:
                return
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiters and len(self._users) < self.capacity:
            req = self._waiters.popleft()
            self._users.append(req)
            req.succeed()


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise SimulationError(f"put amount must be positive, got {amount!r}")
        super().__init__(container.sim)
        self.amount = amount
        container._put_waiters.append(self)
        container._dispatch()


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise SimulationError(f"get amount must be positive, got {amount!r}")
        super().__init__(container.sim)
        self.amount = amount
        container._get_waiters.append(self)
        container._dispatch()


class Container:
    """A continuous quantity with blocking put/get (e.g. a token bucket)."""

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        if not 0 <= init <= capacity:
            raise SimulationError(f"init {init!r} outside [0, {capacity!r}]")
        self.sim = sim
        self.capacity = capacity
        self._level = float(init)
        self._put_waiters: Deque[_ContainerPut] = deque()
        self._get_waiters: Deque[_ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> _ContainerPut:
        return _ContainerPut(self, amount)

    def get(self, amount: float) -> _ContainerGet:
        return _ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self.capacity + 1e-12:
                    self._put_waiters.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount - 1e-12:
                    self._get_waiters.popleft()
                    self._level = max(0.0, self._level - get.amount)
                    get.succeed()
                    progressed = True
