"""Aggregate demand flows: N clients as one lazily-integrated fluid job.

A :class:`AggregateFlow` attaches a *population's* resource demand to an
existing :class:`~repro.sim.fluid.FluidShare` as a single standing job.
Arrivals top up the job's remaining work (``add``), rate ceilings map to
the job's cap (``set_rate``), and progress is read passively with
``drained()`` — the projection trick of ``FluidShare.served_now`` scoped
to one flow.  Every operation is O(1) bookkeeping plus at most one
O(active jobs) reschedule on the share, independent of the population
size N: a crowd of a million clients costs exactly as much per rate
change as a crowd of ten.

The flow deliberately *competes* through the share's ordinary
water-filling: give it ``weight=n`` and it squeezes coexisting
interactive jobs exactly like n unit-weight flows would, which is what
makes aggregate crowds congest links and CPUs the honest way.
"""

from __future__ import annotations

from typing import Optional

from .core import Simulator
from .fluid import FluidJob, FluidShare

__all__ = ["AggregateFlow"]


class AggregateFlow:
    """One population's demand on a :class:`FluidShare`, as a standing job."""

    __slots__ = ("share", "sim", "owner", "_weight", "_cap", "_job", "_prior")

    def __init__(
        self,
        share: FluidShare,
        weight: float = 1.0,
        cap: Optional[float] = None,
        owner: Optional[object] = None,
    ):
        self.share = share
        self.sim: Simulator = share.sim
        self.owner = owner
        self._weight = float(weight)
        self._cap = cap
        #: Active standing job, or None when the backlog is fully drained.
        self._job: Optional[FluidJob] = None
        #: Work drained by previous job generations (folded on resubmit).
        self._prior = 0.0

    # -- demand -------------------------------------------------------------
    def add(self, work: float) -> None:
        """Enqueue ``work`` units of aggregate demand (one arrival batch)."""
        if work <= 0.0:
            return
        job = self._job
        if job is not None and self.share.add_work(job, work):
            return
        # No standing job, or it completed during the catch-up advance:
        # fold its total and open the next generation.
        self._fold()
        self._job = self.share.submit(
            work, weight=self._weight, cap=self._cap, owner=self.owner
        )

    def set_rate(self, cap: Optional[float]) -> None:
        """Ceiling on the service rate — one O(1) cap change, any N."""
        self._cap = cap
        job = self._job
        if job is not None and not job.finished:
            self.share.set_cap(job, cap)

    def set_weight(self, weight: float) -> None:
        """Contention weight (≈ number of aggregated unit flows)."""
        self._weight = float(weight)
        job = self._job
        if job is not None and not job.finished:
            self.share.set_weight(job, weight)

    # -- passive reads -------------------------------------------------------
    def drained(self) -> float:
        """Cumulative work served, projected to now without touching the sim.

        Safe for instrumentation and per-tick accounting: the share's lazy
        accumulators and completion timer are left untouched, so reading
        between events keeps the run byte-identical.
        """
        job = self._job
        if job is None:
            return self._prior
        if job.finished:
            return self._prior + job.consumed
        extra = 0.0
        dt = self.sim.now - self.share._last_update
        if dt > 0.0 and job._rate > 0.0:
            extra = min(job._rate * dt, job.remaining)
        return self._prior + job.consumed + extra

    def pending(self) -> float:
        """Demand not yet served, projected to now (passive)."""
        job = self._job
        if job is None or job.finished:
            return 0.0
        extra = 0.0
        dt = self.sim.now - self.share._last_update
        if dt > 0.0 and job._rate > 0.0:
            extra = min(job._rate * dt, job.remaining)
        return max(0.0, job.remaining - extra)

    @property
    def idle(self) -> bool:
        return self._job is None or self._job.finished

    # -- teardown -----------------------------------------------------------
    def cancel(self) -> None:
        """Abandon any unserved demand; drained() keeps the served total."""
        job = self._job
        if job is not None and not job.finished:
            self.share.cancel(job)  # fails job.done with defused set
        self._fold()

    def _fold(self) -> None:
        if self._job is not None:
            self._prior += self._job.consumed
            self._job = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AggregateFlow share={self.share.name!r} weight={self._weight}"
            f" cap={self._cap} pending={self.pending():.6g}>"
        )
