"""Simulation tracing: probes and counters for experiment introspection.

A :class:`Tracer` attaches lightweight periodic probes to a simulator and
collects named time series — e.g. CPU utilization, queue lengths, or any
user-supplied gauge.  The figure modules use ad-hoc collection; the tracer
generalizes it for users building their own experiments, and serializes to
plain dicts for JSON export.

The tracer is now a thin veneer over :mod:`repro.obs`: each probe's
samples are stored in a :class:`repro.obs.TimeSeries` inside the tracer's
:attr:`~Tracer.registry`, so probe data shows up alongside any other
metrics collected for the run (``tracer.registry.snapshot()``).  The
original API — :meth:`~Tracer.series`, :meth:`~Tracer.mean`,
:meth:`~Tracer.to_dict` — is unchanged, except that :meth:`~Tracer.mean`
is now *time-weighted* by default (see below).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from .core import Interrupt, Process, Simulator

__all__ = ["Tracer", "Probe"]


@dataclass
class Probe:
    """One periodic gauge: samples ``fn()`` every ``period`` seconds.

    ``samples`` is the *same list object* as the backing
    :class:`repro.obs.TimeSeries` in the tracer's registry — both views
    stay in sync for free.
    """

    name: str
    fn: Callable[[], Optional[float]]
    period: float
    samples: List[Tuple[float, float]] = field(default_factory=list)
    #: The simulator process driving this probe (interrupted by ``stop()``).
    process: Optional[Process] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"probe period must be positive, got {self.period!r}")


class Tracer:
    """Collects named time series from a running simulation."""

    def __init__(self, sim: Simulator, registry: Optional[MetricsRegistry] = None):
        self.sim = sim
        #: Backing store for probe samples (and anything else the caller
        #: wants to record for the same run).
        self.registry = (
            registry if registry is not None else MetricsRegistry(lambda: sim.now)
        )
        self.probes: Dict[str, Probe] = {}
        self.marks: List[Tuple[float, str]] = []
        self._stopped = False

    def add_probe(
        self,
        name: str,
        fn: Callable[[], Optional[float]],
        period: float = 0.1,
    ) -> Probe:
        """Register a gauge; ``fn`` returning None skips that sample."""
        if name in self.probes:
            raise ValueError(f"duplicate probe name {name!r}")
        series = self.registry.series(name)
        probe = Probe(name=name, fn=fn, period=period, samples=series.samples)
        self.probes[name] = probe
        probe.process = self.sim.process(self._run_probe(probe), name=f"probe:{name}")
        return probe

    def mark(self, label: str) -> None:
        """Record a point event (e.g. 'bandwidth dropped')."""
        self.marks.append((self.sim.now, label))

    def stop(self) -> None:
        """Stop sampling and *terminate* the probe processes.

        Merely setting the flag would leave every probe parked on its next
        timeout — alive until the timeout fires, which an idle-check right
        after ``stop()`` sees as leaked processes.  Interrupt them instead;
        the probe loop treats the interrupt as a clean exit.
        """
        if self._stopped:
            return
        self._stopped = True
        for name in sorted(self.probes):
            proc = self.probes[name].process
            if (
                proc is None
                or not proc.is_alive
                or proc is self.sim.active_process
            ):
                continue
            proc.interrupt("tracer-stop")

    def _run_probe(self, probe: Probe):
        series = self.registry.series(probe.name)
        try:
            while not self._stopped:
                yield self.sim.timeout(probe.period)
                if self._stopped:
                    return
                value = probe.fn()
                if value is not None:
                    series.record(self.sim.now, value)
        except Interrupt:
            return

    # -- queries -----------------------------------------------------------
    def series(self, name: str) -> List[Tuple[float, float]]:
        try:
            return list(self.probes[name].samples)
        except KeyError:
            raise KeyError(f"unknown probe {name!r}") from None

    def mean(
        self,
        name: str,
        t0: float = 0.0,
        t1: float = float("inf"),
        weighted: bool = True,
    ) -> Optional[float]:
        """Mean of a probe's samples within ``[t0, t1]``.

        By default the mean is *time-weighted* (trapezoidal integration of
        the sample polyline divided by its time extent), so irregularly
        spaced samples — a probe racing during a busy phase, then idling —
        no longer bias the estimate toward the densely sampled region.
        ``weighted=False`` restores the historical arithmetic mean over
        sample points.  A single in-window sample is its own mean; no
        samples in the window returns None.
        """
        samples = [(t, v) for t, v in self.series(name) if t0 <= t <= t1]
        if not samples:
            return None
        if not weighted or len(samples) == 1:
            return sum(v for _, v in samples) / len(samples)
        extent = samples[-1][0] - samples[0][0]
        if extent <= 0.0:
            # All samples share one timestamp: degenerate to arithmetic.
            return sum(v for _, v in samples) / len(samples)
        area = 0.0
        for (ta, va), (tb, vb) in zip(samples, samples[1:]):
            area += 0.5 * (va + vb) * (tb - ta)
        return area / extent

    def to_dict(self) -> dict:
        return {
            "probes": {name: p.samples for name, p in self.probes.items()},
            "marks": list(self.marks),
        }
