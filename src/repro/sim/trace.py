"""Simulation tracing: probes and counters for experiment introspection.

A :class:`Tracer` attaches lightweight periodic probes to a simulator and
collects named time series — e.g. CPU utilization, queue lengths, or any
user-supplied gauge.  The figure modules use ad-hoc collection; the tracer
generalizes it for users building their own experiments, and serializes to
plain dicts for JSON export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .core import Simulator

__all__ = ["Tracer", "Probe"]


@dataclass
class Probe:
    """One periodic gauge: samples ``fn()`` every ``period`` seconds."""

    name: str
    fn: Callable[[], Optional[float]]
    period: float
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"probe period must be positive, got {self.period!r}")


class Tracer:
    """Collects named time series from a running simulation."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.probes: Dict[str, Probe] = {}
        self.marks: List[Tuple[float, str]] = []
        self._stopped = False

    def add_probe(
        self,
        name: str,
        fn: Callable[[], Optional[float]],
        period: float = 0.1,
    ) -> Probe:
        """Register a gauge; ``fn`` returning None skips that sample."""
        if name in self.probes:
            raise ValueError(f"duplicate probe name {name!r}")
        probe = Probe(name=name, fn=fn, period=period)
        self.probes[name] = probe
        self.sim.process(self._run_probe(probe), name=f"probe:{name}")
        return probe

    def mark(self, label: str) -> None:
        """Record a point event (e.g. 'bandwidth dropped')."""
        self.marks.append((self.sim.now, label))

    def stop(self) -> None:
        self._stopped = True

    def _run_probe(self, probe: Probe):
        while not self._stopped:
            yield self.sim.timeout(probe.period)
            if self._stopped:
                return
            value = probe.fn()
            if value is not None:
                probe.samples.append((self.sim.now, float(value)))

    # -- queries -----------------------------------------------------------
    def series(self, name: str) -> List[Tuple[float, float]]:
        try:
            return list(self.probes[name].samples)
        except KeyError:
            raise KeyError(f"unknown probe {name!r}") from None

    def mean(self, name: str, t0: float = 0.0, t1: float = float("inf")) -> Optional[float]:
        values = [v for t, v in self.series(name) if t0 <= t <= t1]
        if not values:
            return None
        return sum(values) / len(values)

    def to_dict(self) -> dict:
        return {
            "probes": {name: p.samples for name, p in self.probes.items()},
            "marks": list(self.marks),
        }
