"""Seeded randomness helpers.

All stochastic elements of the reproduction (background daemon load,
interaction traces, sampling plans) draw from named streams derived from a
single experiment seed, so every figure is bit-reproducible while streams
stay statistically independent.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["stream", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Stable 32-bit child seed for stream ``name`` under ``root_seed``."""
    h = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
    return (root_seed * 0x9E3779B1 + h) & 0x7FFFFFFF


def stream(root_seed: int, name: str) -> np.random.Generator:
    """Independent numpy Generator for the named stream."""
    return np.random.default_rng(derive_seed(root_seed, name))
