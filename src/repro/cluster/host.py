"""Host model: CPU + memory + mailboxes, attached to a network."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim import Simulator, Store
from .cpu import CPU
from .disk import Disk
from .memory import Memory
from .network import NICStats

__all__ = ["Host"]


class Host:
    """A machine in the simulated execution environment.

    ``cpu_speed`` is in abstract work units per second (see
    :mod:`repro.cluster.machines`), ``mem_pages`` is physical memory size.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu_speed: float,
        mem_pages: int = 32768,
        disk_bandwidth: float = 20e6,
        disk_seek: float = 0.008,
    ):
        self.sim = sim
        self.name = name
        self.cpu = CPU(sim, cpu_speed, name=f"{name}.cpu")
        self.memory = Memory(mem_pages)
        self.disk = Disk(sim, disk_bandwidth, disk_seek, name=f"{name}.disk")
        self.nic_stats = NICStats(sim)
        self.network = None  # set by Network.register
        self._mailboxes: Dict[str, Store] = {}
        #: Liveness flag consulted by the network's delivery gate.
        self.up = True
        #: While down: "queue" parks traffic for redelivery at restart
        #: (sender-side retransmission), "drop" loses it outright.
        self.down_mode = "queue"
        #: (crash_time, restore_time or None) history of outages.
        self.outages: list = []
        #: key -> callback invoked when the host comes back from a crash.
        #: Keys are sorted before invocation so post-restore re-arming
        #: (e.g. monitor-exchange heartbeats) happens in a deterministic
        #: order independent of registration / process creation order.
        self.restore_hooks: Dict[str, Callable[[], None]] = {}

    def mailbox(self, port: str) -> Store:
        """Get (or lazily create) the message queue for ``port``."""
        box = self._mailboxes.get(port)
        if box is None:
            box = Store(self.sim)
            self._mailboxes[port] = box
        return box

    def crash(self, mode: str = "queue", clear_mailboxes: bool = False) -> None:
        """Take the host down (fail-stop for message traffic).

        With ``clear_mailboxes`` the restart also loses every message already
        queued on the host — full fail-stop semantics.  The default keeps
        queued mail (durable-queue model), which lets request/reply protocols
        survive a crash window without application-level retries.
        """
        if mode not in ("queue", "drop"):
            raise ValueError(f"unknown crash mode {mode!r}")
        if not self.up:
            return
        self.up = False
        self.down_mode = mode
        self.outages.append((self.sim.now, None))
        if clear_mailboxes:
            for box in self._mailboxes.values():
                box.items.clear()

    def restore(self) -> None:
        """Bring the host back up; parked traffic is flushed by the network."""
        if self.up:
            return
        self.up = True
        if self.outages and self.outages[-1][1] is None:
            self.outages[-1] = (self.outages[-1][0], self.sim.now)
        for key in sorted(self.restore_hooks):
            self.restore_hooks[key]()
        if self.network is not None:
            self.network.flush_parked()

    def send(
        self,
        dst: str,
        port: str,
        payload,
        size: float,
        weight: float = 1.0,
        cap: Optional[float] = None,
        owner=None,
    ):
        """Send a message from this host; returns the delivery event."""
        if self.network is None:
            raise RuntimeError(f"host {self.name!r} is not attached to a network")
        return self.network.send(
            self.name, dst, port, payload, size, weight=weight, cap=cap, owner=owner
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.name!r} cpu={self.cpu.speed}>"
