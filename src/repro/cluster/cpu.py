"""Processor model: a fluid-shared CPU with usage accounting.

Speed is expressed in abstract *work units per second*.  The machine catalog
(:mod:`repro.cluster.machines`) maps real processors onto this scale two
ways — raw clock rate for register-bound loops, SpecInt index for general
code — mirroring how the paper picks emulation CPU shares (Section 5.1).
"""

from __future__ import annotations

from typing import Optional

from ..sim import FluidJob, FluidShare, Simulator

__all__ = ["CPU"]


class CPU:
    """A host processor shared by competing jobs (proportional share)."""

    def __init__(self, sim: Simulator, speed: float, name: str = "cpu"):
        self.sim = sim
        self.name = name
        self.share = FluidShare(sim, speed, name=name)

    @property
    def speed(self) -> float:
        return self.share.speed

    def set_speed(self, speed: float) -> None:
        self.share.set_speed(speed)

    def execute(
        self,
        work: float,
        weight: float = 1.0,
        cap: Optional[float] = None,
        owner: Optional[object] = None,
    ) -> FluidJob:
        """Submit ``work`` units of computation; returns the fluid job.

        ``yield job.done`` to wait for completion.  ``cap`` is an absolute
        rate ceiling in work units/second (sandbox CPU-share limits divide a
        share fraction by the speed before calling this).
        """
        return self.share.submit(work, weight=weight, cap=cap, owner=owner)

    def snapshot(self) -> tuple:
        return self.share.snapshot()

    def utilization_since(self, t0: float, served0: float) -> float:
        return self.share.utilization_since(t0, served0)

    def install_usage_tap(self, tap) -> None:
        """Route served-work deltas to ``tap(owner, amount)`` (or None).

        The accounting hook of :class:`repro.obs.usage.UsageAccountant`;
        strictly passive, so installing it never perturbs the run.
        """
        self.share.usage_tap = tap

    def served_now(self) -> float:
        """Cumulative work served, projected to now without mutation."""
        return self.share.served_now()

    def sync(self) -> None:
        self.share.sync()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CPU {self.name!r} speed={self.speed}>"
