"""Catalog of the paper's experimental machines (Section 5.1).

The experiments use four PCs: two Pentium II 450 MHz, one Pentium II
333 MHz, one Pentium Pro 200 MHz, all with 128 MB memory, on 100 Mbps
Ethernet.  The paper's testbed emulates slower machines on a PII-450 by
setting the sandbox CPU share to

- the *clock ratio* for the register-bound toy loop (Fig. 4a), and
- the *SpecInt95 ratio* for the general visualization client (Fig. 4b).

We carry both indexes so experiments can pick the appropriate scale.
SpecInt95 values are period-typical published figures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MachineSpec",
    "PII_450",
    "PII_333",
    "PPRO_200",
    "MACHINES",
    "PAGE_BYTES",
    "ETHERNET_100_BPS",
]

#: Simulated page size (bytes).
PAGE_BYTES = 4096

#: 100 Mbps Ethernet in bytes/second (as in the paper's LAN).
ETHERNET_100_BPS = 100e6 / 8


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a physical machine model."""

    name: str
    clock_mhz: float
    specint95: float
    mem_mb: int = 128

    @property
    def mem_pages(self) -> int:
        return int(self.mem_mb * 1024 * 1024 // PAGE_BYTES)

    def clock_ratio(self, other: "MachineSpec") -> float:
        """This machine's clock as a fraction of ``other``'s."""
        return self.clock_mhz / other.clock_mhz

    def specint_ratio(self, other: "MachineSpec") -> float:
        """This machine's SpecInt95 index as a fraction of ``other``'s."""
        return self.specint95 / other.specint95


PII_450 = MachineSpec(name="PentiumII-450", clock_mhz=450.0, specint95=17.2)
PII_333 = MachineSpec(name="PentiumII-333", clock_mhz=333.0, specint95=12.8)
PPRO_200 = MachineSpec(name="PentiumPro-200", clock_mhz=200.0, specint95=8.2)

MACHINES = {m.name: m for m in (PII_450, PII_333, PPRO_200)}
