"""Simulated distributed platform: hosts, CPUs, memory, links, network."""

from .background import BackgroundLoad, PeriodicDaemon
from .cpu import CPU
from .disk import Disk
from .host import Host
from .link import Link, duplex
from .machines import (
    ETHERNET_100_BPS,
    MACHINES,
    PAGE_BYTES,
    PII_333,
    PII_450,
    PPRO_200,
    MachineSpec,
)
from .memory import Memory, MemoryError_, MemorySpace
from .traffic import CrossTraffic
from .network import DeliveryVerdict, Message, Network, NetworkError, NICStats

__all__ = [
    "CPU",
    "Disk",
    "Host",
    "Memory",
    "MemorySpace",
    "MemoryError_",
    "Link",
    "duplex",
    "Network",
    "NetworkError",
    "DeliveryVerdict",
    "NICStats",
    "Message",
    "BackgroundLoad",
    "CrossTraffic",
    "PeriodicDaemon",
    "MachineSpec",
    "MACHINES",
    "PII_450",
    "PII_333",
    "PPRO_200",
    "PAGE_BYTES",
    "ETHERNET_100_BPS",
]
