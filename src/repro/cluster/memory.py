"""Physical-memory model: per-process resident sets with LRU eviction.

The paper's sandbox limits the *physical* memory of a process by switching
protection bits on mapped pages; exceeding the resident limit turns page
touches into protection faults that cost time.  We model exactly that
accounting: a :class:`MemorySpace` tracks which virtual pages are resident,
and :meth:`touch` reports how many faults a sweep over a page range incurs
under the current limit.  The caller (the sandbox) converts faults into
virtual-time cost.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

__all__ = ["Memory", "MemorySpace", "MemoryError_"]


class MemoryError_(Exception):
    """Raised on invalid memory operations (name avoids shadowing builtins)."""


class Memory:
    """A host's physical memory, divided among process memory spaces."""

    def __init__(self, total_pages: int):
        if total_pages <= 0:
            raise MemoryError_(f"total_pages must be positive, got {total_pages!r}")
        self.total_pages = int(total_pages)
        self._reserved = 0
        self.spaces: list = []
        #: Passive accounting tap: ``tap(space, faults)`` on every faulting
        #: page sweep.  Propagated to spaces created after installation.
        self.usage_tap = None

    def install_usage_tap(self, tap) -> None:
        """Route page-fault deltas of every space to ``tap(space, faults)``."""
        self.usage_tap = tap
        for space in self.spaces:
            space.usage_tap = tap

    @property
    def reserved_pages(self) -> int:
        return self._reserved

    @property
    def free_pages(self) -> int:
        return self.total_pages - self._reserved

    def create_space(self, resident_limit: int) -> "MemorySpace":
        """Reserve ``resident_limit`` physical pages for a new process."""
        if resident_limit <= 0:
            raise MemoryError_(f"resident_limit must be positive, got {resident_limit!r}")
        if resident_limit > self.free_pages:
            raise MemoryError_(
                f"cannot reserve {resident_limit} pages; only {self.free_pages} free"
            )
        self._reserved += resident_limit
        space = MemorySpace(self, resident_limit)
        space.usage_tap = self.usage_tap
        self.spaces.append(space)
        return space

    def release_space(self, space: "MemorySpace") -> None:
        if space in self.spaces:
            self.spaces.remove(space)
            self._reserved -= space.resident_limit


class MemorySpace:
    """Virtual pages of one process mapped onto a bounded resident set."""

    def __init__(self, memory: Memory, resident_limit: int):
        self.memory = memory
        self.resident_limit = int(resident_limit)
        self.allocated: set = set()
        # Resident pages in LRU order (oldest first).
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self.fault_count = 0
        #: Passive accounting tap (see :meth:`Memory.install_usage_tap`).
        self.usage_tap = None

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def allocated_pages(self) -> int:
        return len(self.allocated)

    def set_resident_limit(self, limit: int) -> None:
        """Adjust the limit (sandbox reconfiguration); evicts if shrinking."""
        if limit <= 0:
            raise MemoryError_(f"resident_limit must be positive, got {limit!r}")
        grow = limit - self.resident_limit
        if grow > self.memory.free_pages:
            raise MemoryError_("not enough free physical pages to grow limit")
        self.memory._reserved += grow
        self.resident_limit = int(limit)
        while len(self._resident) > self.resident_limit:
            self._resident.popitem(last=False)

    def alloc(self, pages: Iterable[int]) -> None:
        """Map virtual pages (no physical residency yet)."""
        self.allocated.update(int(p) for p in pages)

    def alloc_range(self, start: int, count: int) -> range:
        pages = range(start, start + count)
        self.allocated.update(pages)
        return pages

    def free(self, pages: Iterable[int]) -> None:
        for p in pages:
            p = int(p)
            self.allocated.discard(p)
            self._resident.pop(p, None)

    def touch(self, pages: Iterable[int]) -> int:
        """Access pages in order; returns the number of faults incurred.

        A fault happens when the page is not resident; bringing it in evicts
        the LRU page if the resident set is at its limit.
        """
        faults = 0
        for p in pages:
            p = int(p)
            if p not in self.allocated:
                raise MemoryError_(f"touch of unallocated page {p}")
            if p in self._resident:
                self._resident.move_to_end(p)
                continue
            faults += 1
            if len(self._resident) >= self.resident_limit:
                self._resident.popitem(last=False)
            self._resident[p] = None
        self.fault_count += faults
        if faults and self.usage_tap is not None:
            self.usage_tap(self, faults)
        return faults

    def touch_range(self, start: int, count: int) -> int:
        return self.touch(range(start, start + count))
