"""Background (daemon) load generators.

The paper attributes the only visible testbed inaccuracy at 100 % CPU share
to "daemons and other uncontrollable OS activity" (Fig. 3b footnote).  These
processes reproduce that effect: they inject small CPU bursts that compete
with application jobs on the host CPU.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim import Simulator
from .host import Host

__all__ = ["BackgroundLoad", "PeriodicDaemon"]


class BackgroundLoad:
    """Poisson bursts of daemon CPU work on a host.

    ``mean_interval`` seconds between bursts (exponential), each burst
    costing ``burst_work`` work units (exponential around the mean).  The
    long-run CPU fraction stolen is roughly
    ``burst_work / (mean_interval * cpu_speed)`` when the host is loaded.
    """

    def __init__(
        self,
        host: Host,
        rng: np.random.Generator,
        mean_interval: float = 0.25,
        burst_work: Optional[float] = None,
        weight: float = 1.0,
    ):
        self.host = host
        self.rng = rng
        self.mean_interval = float(mean_interval)
        # Default: ~2% of the CPU when busy.
        self.burst_work = (
            float(burst_work)
            if burst_work is not None
            else 0.02 * host.cpu.speed * mean_interval
        )
        self.weight = float(weight)
        self.total_work_injected = 0.0
        self._stopped = False
        self.process = host.sim.process(self._run(), name=f"daemon@{host.name}")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        sim: Simulator = self.host.sim
        while not self._stopped:
            gap = self.rng.exponential(self.mean_interval)
            yield sim.timeout(gap)
            if self._stopped:
                return
            work = self.rng.exponential(self.burst_work)
            self.total_work_injected += work
            job = self.host.cpu.execute(work, weight=self.weight, owner=self)
            yield job.done


class PeriodicDaemon:
    """Deterministic periodic daemon (e.g. a timer interrupt handler)."""

    def __init__(
        self,
        host: Host,
        period: float,
        work_per_tick: float,
        weight: float = 1.0,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.host = host
        self.period = float(period)
        self.work_per_tick = float(work_per_tick)
        self.weight = float(weight)
        self.total_work_injected = 0.0
        self._stopped = False
        self.process = host.sim.process(self._run(), name=f"tick@{host.name}")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        sim = self.host.sim
        while not self._stopped:
            yield sim.timeout(self.period)
            if self._stopped:
                return
            self.total_work_injected += self.work_per_tick
            job = self.host.cpu.execute(
                self.work_per_tick, weight=self.weight, owner=self
            )
            yield job.done
