"""Disk model: fluid-shared transfer bandwidth plus per-operation seek.

The paper's sandbox "constrains application utilization (in terms of
capacity) of system resources such as the CPU, memory, **disk**, and
network"; the experiments never vary disk, but the substrate supports it
the same way as the others: concurrent operations share the disk's
transfer bandwidth fluidly (weighted, cappable), and every operation pays
a fixed seek/rotational latency up front.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Event, FluidShare, Simulator

__all__ = ["Disk"]


class Disk:
    """A host's disk: ``bandwidth`` bytes/s shared across operations."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = 20e6,
        seek_time: float = 0.008,
        name: str = "disk",
    ):
        if seek_time < 0:
            raise ValueError(f"seek_time must be non-negative, got {seek_time!r}")
        self.sim = sim
        self.name = name
        self.seek_time = float(seek_time)
        self.share = FluidShare(sim, bandwidth, name=name)
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.operations = 0

    @property
    def bandwidth(self) -> float:
        return self.share.speed

    def set_bandwidth(self, bandwidth: float) -> None:
        self.share.set_speed(bandwidth)

    def _transfer(
        self,
        nbytes: float,
        weight: float,
        cap: Optional[float],
        owner,
        kind: str,
    ) -> Event:
        if nbytes < 0:
            raise ValueError(f"size must be non-negative, got {nbytes!r}")
        done = Event(self.sim)
        self.operations += 1

        def start_transfer() -> None:
            job = self.share.submit(nbytes, weight=weight, cap=cap, owner=owner)

            def finish(event: Event) -> None:
                if not event._ok:  # pragma: no cover - cancel path
                    done.defused = True
                    done.fail(event._value)
                    return
                if kind == "read":
                    self.bytes_read += nbytes
                else:
                    self.bytes_written += nbytes
                done.succeed(self.sim.now)

            if job.done.callbacks is not None:
                job.done.callbacks.append(finish)
            else:
                finish(job.done)

        if self.seek_time > 0:
            self.sim.schedule_callback(self.seek_time, start_transfer)
        else:
            start_transfer()
        return done

    def read(
        self,
        nbytes: float,
        weight: float = 1.0,
        cap: Optional[float] = None,
        owner=None,
    ) -> Event:
        """Read ``nbytes``; the event fires when the data is in memory."""
        return self._transfer(nbytes, weight, cap, owner, "read")

    def write(
        self,
        nbytes: float,
        weight: float = 1.0,
        cap: Optional[float] = None,
        owner=None,
    ) -> Event:
        """Write ``nbytes``; the event fires when the data is durable."""
        return self._transfer(nbytes, weight, cap, owner, "write")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Disk {self.name!r} bw={self.bandwidth} seek={self.seek_time}>"
