"""Host-to-host message passing over explicit links.

The :class:`Network` keeps a directed link table between named hosts and
delivers :class:`Message` objects into per-port mailboxes on the destination
host.  Transfers contend for link bandwidth fluidly; a per-message ``cap``
implements sandbox bandwidth limits on individual flows.

Fault semantics (driven by :mod:`repro.faults`): every message passes a
*delivery gate* when its last byte arrives.  A down destination host or down
link either parks the message for redelivery at restore time (``"queue"``,
a transient partition with sender backpressure) or loses it (``"drop"``).
An installed fault controller (:attr:`Network.faults`) can additionally
drop, delay, or duplicate individual messages.  A message sent *by* a down
host is lost immediately — the sending process is notionally dead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..sim import Event, Simulator
from .link import Link

__all__ = ["Message", "Network", "NetworkError", "DeliveryVerdict"]


class NetworkError(Exception):
    """Raised on routing/registration problems."""


_msg_ids = count(1)


@dataclass
class Message:
    """One network message.

    ``size`` is the wire size in bytes; ``payload`` is arbitrary and costs
    nothing by itself.  Timing fields are filled in by the network.
    """

    src: str
    dst: str
    port: str
    payload: Any
    size: float
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    send_time: float = 0.0
    deliver_time: float = 0.0

    @property
    def transfer_duration(self) -> float:
        return self.deliver_time - self.send_time


@dataclass
class DeliveryVerdict:
    """What the delivery gate decided for one arriving message."""

    action: str = "deliver"  # "deliver" | "drop" | "park"
    extra_delay: float = 0.0
    copies: int = 1


_DELIVER = DeliveryVerdict()


class Network:
    """Topology of hosts and directed links with message delivery."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.hosts: Dict[str, "Host"] = {}  # noqa: F821 - forward ref
        self._links: Dict[Tuple[str, str], Link] = {}
        self.messages_delivered = 0
        #: Optional fault controller with a ``gate(msg) -> DeliveryVerdict``
        #: method (see :class:`repro.faults.FaultInjector`).
        self.faults = None
        #: Messages parked by a "queue"-mode outage, awaiting redelivery.
        self._parked: List[Tuple[Message, Event]] = []
        self.messages_lost = 0
        self.messages_delayed = 0
        self.messages_duplicated = 0
        self.messages_parked_total = 0

    # -- topology -----------------------------------------------------------
    def register(self, host) -> None:
        if host.name in self.hosts:
            raise NetworkError(f"duplicate host name {host.name!r}")
        self.hosts[host.name] = host
        host.network = self

    def connect(
        self,
        a: str,
        b: str,
        bandwidth: float,
        latency: float = 0.0,
    ) -> Tuple[Link, Link]:
        """Create a duplex link between registered hosts ``a`` and ``b``."""
        for name in (a, b):
            if name not in self.hosts:
                raise NetworkError(f"unknown host {name!r}")
        fwd = Link(self.sim, bandwidth, latency, name=f"{a}->{b}")
        rev = Link(self.sim, bandwidth, latency, name=f"{b}->{a}")
        self._links[(a, b)] = fwd
        self._links[(b, a)] = rev
        return fwd, rev

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise NetworkError(f"no link {src!r} -> {dst!r}") from None

    def links(self) -> List[Link]:
        """Every directed link, in deterministic (src, dst) order."""
        return [self._links[key] for key in sorted(self._links)]

    # -- messaging ------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        port: str,
        payload: Any,
        size: float,
        weight: float = 1.0,
        cap: Optional[float] = None,
        owner: Optional[object] = None,
    ) -> Event:
        """Transmit a message; returns an event firing at delivery.

        The event's value is the delivered :class:`Message`.  Delivery also
        enqueues the message into the destination host's mailbox for ``port``.
        """
        link = self.link(src, dst)
        msg = Message(src=src, dst=dst, port=port, payload=payload, size=size)
        msg.send_time = self.sim.now
        done = Event(self.sim)
        if not self.hosts[src].up:
            # The sending process belongs to a crashed host: the message
            # vanishes, but the (zombie) sender is unblocked immediately.
            self.messages_lost += 1
            done.succeed(msg)
            return done
        _job, arrived = link.transfer(size, weight=weight, cap=cap, owner=owner)

        def on_arrival(event: Event) -> None:
            if not event._ok:
                done.defused = True
                done.fail(event._value)
                return
            self.hosts[src].nic_stats.record_send(msg)
            self._arrive(msg, done)

        if arrived.callbacks is not None:
            arrived.callbacks.append(on_arrival)
        else:  # pragma: no cover - zero-size, zero-latency fast path
            on_arrival(arrived)
        return done

    # -- delivery gate ---------------------------------------------------------
    def _gate(self, msg: Message, use_faults: bool = True) -> DeliveryVerdict:
        """Decide the fate of a message whose last byte just arrived."""
        dst_host = self.hosts[msg.dst]
        if not dst_host.up:
            return DeliveryVerdict(
                "park" if dst_host.down_mode == "queue" else "drop"
            )
        link = self._links.get((msg.src, msg.dst))
        if link is not None and not link.up:
            return DeliveryVerdict(
                "park" if link.down_mode == "queue" else "drop"
            )
        if use_faults and self.faults is not None:
            return self.faults.gate(msg)
        return _DELIVER

    def _arrive(self, msg: Message, done: Event, use_faults: bool = True) -> None:
        verdict = self._gate(msg, use_faults=use_faults)
        if verdict.action == "drop":
            self.messages_lost += 1
            msg.deliver_time = self.sim.now
            done.succeed(msg)
            return
        if verdict.action == "park":
            self.messages_parked_total += 1
            self._parked.append((msg, done))
            return
        if verdict.extra_delay > 0:
            self.messages_delayed += 1
            self.sim.schedule_callback(
                verdict.extra_delay,
                lambda: self._deliver(msg, done, copies=verdict.copies),
            )
            return
        self._deliver(msg, done, copies=verdict.copies)

    def _deliver(self, msg: Message, done: Event, copies: int = 1) -> None:
        msg.deliver_time = self.sim.now
        dst_host = self.hosts[msg.dst]
        for _ in range(max(1, copies)):
            self.messages_delivered += 1
            dst_host.mailbox(msg.port).put(msg)
            dst_host.nic_stats.record_recv(msg)
        if copies > 1:
            self.messages_duplicated += copies - 1
        done.succeed(msg)

    def flush_parked(self) -> None:
        """Re-gate every parked message; deliver those no longer blocked.

        Random per-message faults are not re-rolled on flush — a parked
        message already 'arrived' once; only host/link liveness is checked.
        """
        parked, self._parked = self._parked, []
        for msg, done in parked:
            self._arrive(msg, done, use_faults=False)

    # -- fault control surface ---------------------------------------------------
    def fail_host(self, name: str, mode: str = "queue",
                  clear_mailboxes: bool = False) -> None:
        self.hosts[name].crash(mode=mode, clear_mailboxes=clear_mailboxes)

    def restore_host(self, name: str) -> None:
        self.hosts[name].restore()

    def fail_link(self, a: str, b: str, mode: str = "queue",
                  both: bool = True) -> None:
        """Take the a->b link down (and b->a with ``both``)."""
        self.link(a, b).fail(mode)
        if both and (b, a) in self._links:
            self.link(b, a).fail(mode)

    def restore_link(self, a: str, b: str, both: bool = True) -> None:
        self.link(a, b).restore()
        if both and (b, a) in self._links:
            self.link(b, a).restore()
        self.flush_parked()

    def partition(self, group_a: Iterable[str], group_b: Iterable[str],
                  mode: str = "queue") -> None:
        """Fail every link crossing the two host groups (both directions)."""
        for a in group_a:
            for b in group_b:
                for key in ((a, b), (b, a)):
                    link = self._links.get(key)
                    if link is not None:
                        link.fail(mode)

    def heal_partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        for a in group_a:
            for b in group_b:
                for key in ((a, b), (b, a)):
                    link = self._links.get(key)
                    if link is not None:
                        link.restore()
        self.flush_parked()


class NICStats:
    """Per-host traffic counters used by the monitoring agent."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        self.sends = 0
        self.recvs = 0
        #: (deliver_time, size, duration) of recent receptions.
        self.recv_log: list = []
        self.recv_log_limit = 4096

    def record_send(self, msg: Message) -> None:
        self.bytes_sent += msg.size
        self.sends += 1

    def record_recv(self, msg: Message) -> None:
        self.bytes_received += msg.size
        self.recvs += 1
        self.recv_log.append((msg.deliver_time, msg.size, msg.transfer_duration))
        if len(self.recv_log) > self.recv_log_limit:
            del self.recv_log[: self.recv_log_limit // 2]
