"""Host-to-host message passing over explicit links.

The :class:`Network` keeps a directed link table between named hosts and
delivers :class:`Message` objects into per-port mailboxes on the destination
host.  Transfers contend for link bandwidth fluidly; a per-message ``cap``
implements sandbox bandwidth limits on individual flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Optional, Tuple

from ..sim import Event, Simulator
from .link import Link

__all__ = ["Message", "Network", "NetworkError"]


class NetworkError(Exception):
    """Raised on routing/registration problems."""


_msg_ids = count(1)


@dataclass
class Message:
    """One network message.

    ``size`` is the wire size in bytes; ``payload`` is arbitrary and costs
    nothing by itself.  Timing fields are filled in by the network.
    """

    src: str
    dst: str
    port: str
    payload: Any
    size: float
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    send_time: float = 0.0
    deliver_time: float = 0.0

    @property
    def transfer_duration(self) -> float:
        return self.deliver_time - self.send_time


class Network:
    """Topology of hosts and directed links with message delivery."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.hosts: Dict[str, "Host"] = {}  # noqa: F821 - forward ref
        self._links: Dict[Tuple[str, str], Link] = {}
        self.messages_delivered = 0

    # -- topology -----------------------------------------------------------
    def register(self, host) -> None:
        if host.name in self.hosts:
            raise NetworkError(f"duplicate host name {host.name!r}")
        self.hosts[host.name] = host
        host.network = self

    def connect(
        self,
        a: str,
        b: str,
        bandwidth: float,
        latency: float = 0.0,
    ) -> Tuple[Link, Link]:
        """Create a duplex link between registered hosts ``a`` and ``b``."""
        for name in (a, b):
            if name not in self.hosts:
                raise NetworkError(f"unknown host {name!r}")
        fwd = Link(self.sim, bandwidth, latency, name=f"{a}->{b}")
        rev = Link(self.sim, bandwidth, latency, name=f"{b}->{a}")
        self._links[(a, b)] = fwd
        self._links[(b, a)] = rev
        return fwd, rev

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise NetworkError(f"no link {src!r} -> {dst!r}") from None

    # -- messaging ------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        port: str,
        payload: Any,
        size: float,
        weight: float = 1.0,
        cap: Optional[float] = None,
        owner: Optional[object] = None,
    ) -> Event:
        """Transmit a message; returns an event firing at delivery.

        The event's value is the delivered :class:`Message`.  Delivery also
        enqueues the message into the destination host's mailbox for ``port``.
        """
        link = self.link(src, dst)
        msg = Message(src=src, dst=dst, port=port, payload=payload, size=size)
        msg.send_time = self.sim.now
        _job, arrived = link.transfer(size, weight=weight, cap=cap, owner=owner)
        done = Event(self.sim)

        def on_arrival(event: Event) -> None:
            if not event._ok:
                done.defused = True
                done.fail(event._value)
                return
            msg.deliver_time = self.sim.now
            self.messages_delivered += 1
            dst_host = self.hosts[dst]
            dst_host.mailbox(port).put(msg)
            dst_host.nic_stats.record_recv(msg)
            self.hosts[src].nic_stats.record_send(msg)
            done.succeed(msg)

        if arrived.callbacks is not None:
            arrived.callbacks.append(on_arrival)
        else:  # pragma: no cover - zero-size, zero-latency fast path
            on_arrival(arrived)
        return done


class NICStats:
    """Per-host traffic counters used by the monitoring agent."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        self.sends = 0
        self.recvs = 0
        #: (deliver_time, size, duration) of recent receptions.
        self.recv_log: list = []
        self.recv_log_limit = 4096

    def record_send(self, msg: Message) -> None:
        self.bytes_sent += msg.size
        self.sends += 1

    def record_recv(self, msg: Message) -> None:
        self.bytes_received += msg.size
        self.recvs += 1
        self.recv_log.append((msg.deliver_time, msg.size, msg.transfer_duration))
        if len(self.recv_log) > self.recv_log_limit:
            del self.recv_log[: self.recv_log_limit // 2]
