"""Background cross-traffic on network links.

The dual of :class:`~repro.cluster.background.BackgroundLoad` for the
network: competing flows that contend with the application for link
bandwidth.  Used to test the monitoring agent against *competition-induced*
bandwidth changes (as opposed to sandbox-enforced ones), the scenario the
paper's shared-environment motivation describes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim import Simulator
from .link import Link

__all__ = ["CrossTraffic"]


class CrossTraffic:
    """Poisson bursts of bulk transfers injected on a link.

    ``mean_interval`` seconds between bursts; each burst transfers
    ``burst_bytes`` (exponential around the mean) at fair share with weight
    ``weight``.  The long-run fraction of the link consumed is roughly
    ``burst_bytes / (mean_interval * bandwidth)`` while active.
    """

    def __init__(
        self,
        link: Link,
        rng: np.random.Generator,
        mean_interval: float = 1.0,
        burst_bytes: Optional[float] = None,
        weight: float = 1.0,
    ):
        if mean_interval <= 0:
            raise ValueError(f"mean_interval must be positive, got {mean_interval!r}")
        self.link = link
        self.rng = rng
        self.mean_interval = float(mean_interval)
        self.burst_bytes = (
            float(burst_bytes)
            if burst_bytes is not None
            else 0.5 * link.bandwidth * mean_interval
        )
        self.weight = float(weight)
        self.bytes_injected = 0.0
        self._stopped = False
        self.process = link.sim.process(self._run(), name=f"xtraffic@{link.name}")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        sim: Simulator = self.link.sim
        while not self._stopped:
            gap = self.rng.exponential(self.mean_interval)
            yield sim.timeout(gap)
            if self._stopped:
                return
            size = self.rng.exponential(self.burst_bytes)
            self.bytes_injected += size
            _job, delivered = self.link.transfer(size, weight=self.weight, owner=self)
            yield delivered
