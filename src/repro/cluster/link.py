"""Network link model: fluid-shared bandwidth plus propagation latency.

A :class:`Link` is unidirectional; :func:`duplex` builds the usual pair.
Concurrent transfers share the bandwidth fluidly (weighted, cappable), so a
sandboxed flow can be rate-limited without affecting other traffic —
exactly the "delaying sending and receiving of messages" control of the
paper's virtual execution environment.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..sim import Event, FluidJob, FluidShare, Simulator

__all__ = ["Link", "duplex"]


class Link:
    """Unidirectional link with fluid-shared bandwidth (bytes/second)."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "link",
    ):
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency!r}")
        self.sim = sim
        self.name = name
        self.latency = float(latency)
        self.share = FluidShare(sim, bandwidth, name=name)
        self.bytes_carried = 0.0
        #: Liveness flag consulted by the network's delivery gate.
        self.up = True
        #: While down: "queue" parks arriving messages until :meth:`restore`
        #: (a transient partition), "drop" loses them (a lossy outage).
        self.down_mode = "queue"
        #: (fail_time, restore_time or None) history of outages.
        self.outages: list = []

    @property
    def bandwidth(self) -> float:
        return self.share.speed

    def set_bandwidth(self, bandwidth: float) -> None:
        self.share.set_speed(bandwidth)

    def fail(self, mode: str = "queue") -> None:
        """Take the link down.  In-flight bytes keep draining; the delivery
        gate decides their fate when they arrive."""
        if mode not in ("queue", "drop"):
            raise ValueError(f"unknown link-down mode {mode!r}")
        if not self.up:
            return
        self.up = False
        self.down_mode = mode
        self.outages.append((self.sim.now, None))

    def restore(self) -> None:
        if self.up:
            return
        self.up = True
        if self.outages and self.outages[-1][1] is None:
            self.outages[-1] = (self.outages[-1][0], self.sim.now)

    def transfer(
        self,
        size: float,
        weight: float = 1.0,
        cap: Optional[float] = None,
        owner: Optional[object] = None,
    ) -> Tuple[FluidJob, Event]:
        """Start a transfer of ``size`` bytes.

        Returns ``(job, delivered)``: the fluid job draining the bytes onto
        the wire, and an event firing when the last byte *arrives* (transfer
        completion + propagation latency).
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size!r}")
        job = self.share.submit(size, weight=weight, cap=cap, owner=owner)
        delivered = Event(self.sim)

        def on_drained(done_event: Event) -> None:
            if not done_event._ok:
                delivered.defused = True
                delivered.fail(done_event._value)
                return
            self.bytes_carried += size
            if self.latency > 0:
                self.sim.schedule_callback(
                    self.latency, lambda: delivered.succeed(self.sim.now)
                )
            else:
                delivered.succeed(self.sim.now)

        if job.done.callbacks is not None:
            job.done.callbacks.append(on_drained)
        else:  # zero-size transfer already completed
            on_drained(job.done)
        return job, delivered

    def snapshot(self) -> tuple:
        return self.share.snapshot()

    def utilization_since(self, t0: float, served0: float) -> float:
        return self.share.utilization_since(t0, served0)

    def install_usage_tap(self, tap) -> None:
        """Route drained-byte deltas to ``tap(owner, amount)`` (or None)."""
        self.share.usage_tap = tap

    def served_now(self) -> float:
        """Cumulative bytes drained, projected to now without mutation."""
        return self.share.served_now()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name!r} bw={self.bandwidth} lat={self.latency}>"


def duplex(
    sim: Simulator,
    bandwidth: float,
    latency: float = 0.0,
    name: str = "link",
) -> Tuple[Link, Link]:
    """A pair of independent unidirectional links (forward, reverse)."""
    return (
        Link(sim, bandwidth, latency, name=f"{name}:fwd"),
        Link(sim, bandwidth, latency, name=f"{name}:rev"),
    )
