"""Profiling measurements as engine jobs.

:func:`measure_cell` is the job function behind parallel profiling: it
rebuilds the application *inside the worker process* from an
:class:`AppSpec` (a pure, JSON-able description naming a module-level
factory), runs one controlled execution, and returns the measurement
record as a dict.  Because the cell derives its run seed exactly the way
:meth:`repro.profiling.ProfilingDriver.measure` does, the records — and
therefore the performance database — are byte-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from .job import JobSpecError, resolve_job

__all__ = ["AppSpec", "measure_cell"]


@dataclass(frozen=True)
class AppSpec:
    """Pure description of how to (re)build a tunable app in a worker.

    ``factory`` / ``workload`` are dotted paths (``"pkg.module:fn"``) to
    module-level callables: the factory returns the
    :class:`~repro.tunable.TunableApp`; the optional workload factory is
    called as ``fn(config, point, run_seed, **workload_kwargs)`` for
    every measurement.  Keyword arguments must be JSON-able — they are
    part of the cache key.
    """

    factory: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    workload: Optional[str] = None
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kwargs", dict(self.kwargs))
        object.__setattr__(self, "workload_kwargs", dict(self.workload_kwargs))

    def build(self):
        return resolve_job(self.factory)(**self.kwargs)

    def build_workload_factory(self) -> Optional[Callable]:
        if self.workload is None:
            return None
        fn = resolve_job(self.workload)
        if not self.workload_kwargs:
            return fn
        extra = dict(self.workload_kwargs)

        def factory(config, point, run_seed):
            return fn(config, point, run_seed, **extra)

        return factory

    def to_dict(self) -> dict:
        return {
            "factory": self.factory,
            "kwargs": self.kwargs,
            "workload": self.workload,
            "workload_kwargs": self.workload_kwargs,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AppSpec":
        return cls(
            factory=data["factory"],
            kwargs=dict(data.get("kwargs") or {}),
            workload=data.get("workload"),
            workload_kwargs=dict(data.get("workload_kwargs") or {}),
        )


def measure_cell(payload: Mapping, seed: int) -> dict:
    """One profiling measurement, reconstructed from pure data.

    Payload: ``app`` (an :class:`AppSpec` dict), ``config``, ``point``,
    ``mode``, ``max_run_time``, and optional ``with_usage``.  ``seed`` is
    the *driver root seed*; the per-run seed is derived inside
    :meth:`ProfilingDriver.measure` from the (config, point) labels,
    exactly as in the serial path.

    With ``with_usage`` the measurement runs under a
    :class:`repro.obs.UsageAccountant` and its summary is shipped back
    through :func:`repro.exec.runner.publish_usage` — landing on
    :attr:`JobResult.usage` and, when a result store is configured, in
    the cached entry.  Accounting is passive, so the returned record is
    byte-identical either way.
    """
    # Imported here so that spawned workers running non-profiling jobs
    # never pay the numpy/scipy import behind the profiling package.
    from ..profiling import ProfilingDriver, ResourcePoint
    from ..tunable import Configuration

    app_spec = AppSpec.from_dict(payload["app"])
    app = app_spec.build()
    usage = None
    if payload.get("with_usage"):
        from ..obs import UsageAccountant

        usage = UsageAccountant()
    driver = ProfilingDriver(
        app,
        dims=[],
        workload_factory=app_spec.build_workload_factory(),
        mode=payload.get("mode", "ideal"),
        seed=seed,
        max_run_time=float(payload.get("max_run_time", 3600.0)),
        usage=usage,
    )
    record = driver.measure(
        Configuration(payload["config"]), ResourcePoint(payload["point"])
    )
    if usage is not None:
        from .runner import publish_usage

        publish_usage(usage.summary())
    return record.to_dict()


def app_spec_payload(
    app_spec: AppSpec,
    config: Mapping,
    point: Mapping,
    mode: str,
    max_run_time: float,
) -> dict:
    """The :func:`measure_cell` payload for one (config, point) cell."""
    if not isinstance(app_spec, AppSpec):
        raise JobSpecError(
            f"parallel profiling needs an AppSpec, got {type(app_spec).__name__}"
        )
    return {
        "app": app_spec.to_dict(),
        "config": dict(config),
        "point": dict(point),
        "mode": mode,
        "max_run_time": max_run_time,
    }


__all__.append("app_spec_payload")
