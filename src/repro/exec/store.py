"""Persistent content-addressed result cache.

One entry per executed job, addressed by :func:`repro.exec.job.cache_key`
— a hash of (source fingerprint, canonical job spec, seed).  Entries are
single JSON files in a two-level directory layout (``ab/ab…cd.json``),
written atomically (temp file + rename) so a killed sweep never leaves a
torn entry behind.

Staleness is handled twice over: the source fingerprint is part of the
key (changed code simply misses), and every entry also *records* the
fingerprint it was produced under, so :meth:`ResultStore.get` discards
mismatched entries defensively and :meth:`ResultStore.prune_stale`
garbage-collects everything an old source tree left behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional

__all__ = ["ResultStore", "StoreError"]


class StoreError(Exception):
    """Raised on unusable store roots."""


class ResultStore:
    """Directory-backed map from cache key to job result."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create result store at {self.root}: {exc}") from exc
        self.hits = 0
        self.misses = 0
        self.stale = 0

    # -- addressing -----------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read -----------------------------------------------------------
    def get(self, key: str, source: str) -> Optional[dict]:
        """Entry for ``key`` produced under ``source``, else ``None``.

        Entries recorded under a different source fingerprint, and
        unreadable/corrupt files, are deleted on sight and count as
        misses — a cache must never be louder than a recomputation.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._discard(path)
            self.misses += 1
            return None
        if entry.get("source") != source or entry.get("key") != key:
            self._discard(path)
            self.stale += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    # -- write ----------------------------------------------------------
    def put(
        self, key: str, source: str, spec: dict, value, wall: float = 0.0,
        usage=None,
    ) -> None:
        """Record ``value`` for ``key``; atomic against concurrent readers.

        ``usage`` is the optional usage summary the job published (see
        :func:`repro.exec.runner.publish_usage`); persisting it next to
        the value lets cache hits restore the full account.
        """
        entry = {
            "key": key,
            "source": source,
            "spec": spec,
            "value": value,
            "wall": float(wall),
        }
        if usage is not None:
            entry["usage"] = usage
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
        os.replace(tmp, path)

    # -- maintenance ----------------------------------------------------
    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def prune_stale(self, source: str) -> int:
        """Delete every entry not produced under ``source``; returns count."""
        removed = 0
        for path in self._iter_files():
            try:
                entry = json.loads(path.read_text())
                keep = entry.get("source") == source
            except (OSError, json.JSONDecodeError):
                keep = False
            if not keep:
                self._discard(path)
                removed += 1
        return removed

    def _iter_files(self) -> List[Path]:
        return sorted(self.root.rglob("*.json"))

    def keys(self) -> List[str]:
        return sorted(p.stem for p in self._iter_files())

    def __len__(self) -> int:
        return len(self._iter_files())

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()
