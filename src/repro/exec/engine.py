"""The sweep engine: cache lookup, parallel dispatch, deterministic merge.

:class:`SweepEngine` is the one entry point callers use.  For every
:class:`~repro.exec.job.JobSpec` it first consults the
:class:`~repro.exec.store.ResultStore` (keyed by source fingerprint +
canonical spec), dispatches only the misses to a
:class:`~repro.exec.runner.ParallelRunner`, writes fresh results back,
and returns a :class:`SweepReport` whose outcomes are ordered by job
key — *never* by completion order — so a parallel sweep is
byte-identical to the serial one.

Instrumentation lands in a :class:`repro.obs.MetricsRegistry`:
``exec.jobs.run`` / ``.cached`` / ``.retried`` / ``.failed`` /
``.crashed`` / ``.timeout`` counters, an ``exec.workers`` gauge, an
``exec.worker.utilization`` gauge, and ``exec.wall.saved`` — the wall
seconds the cache avoided re-simulating.

A process-wide *default engine* can be installed (the CLI does this for
``--jobs``/``--no-cache``) so experiment code routed through
:func:`sweep_cells` picks up parallelism and caching without threading
an engine argument through every call site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..obs import MetricsRegistry
from .fingerprint import source_fingerprint
from .job import JobSpec, cache_key
from .runner import JobResult, ParallelRunner
from .store import ResultStore

__all__ = [
    "SweepEngine",
    "SweepError",
    "SweepReport",
    "default_engine",
    "set_default_engine",
    "sweep_cells",
]


class SweepError(Exception):
    """Raised when a strict sweep has terminally failed jobs."""


@dataclass
class SweepReport:
    """All outcomes of one sweep, ordered by job key."""

    outcomes: List[JobResult] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.outcomes = sorted(self.outcomes, key=lambda r: r.key)
        self._by_key = {r.key: r for r in self.outcomes}

    def value(self, key: str) -> Any:
        result = self._by_key[key]
        if not result.ok:
            raise SweepError(f"job {key!r} failed:\n{result.error}")
        return result.value

    def values(self) -> List[Any]:
        """Successful values in job-key order."""
        return [self.value(r.key) for r in self.outcomes]

    @property
    def failures(self) -> List[JobResult]:
        return [r for r in self.outcomes if not r.ok]


class SweepEngine:
    """Executes job specs through cache + worker pool."""

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        timeout: float = 600.0,
        retries: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        source: Optional[str] = None,
    ) -> None:
        self.store = store
        self.runner = ParallelRunner(jobs=jobs, timeout=timeout, retries=retries)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Source fingerprint override (tests inject synthetic ones to
        #: exercise invalidation); ``None`` means the live tree's.
        self._source = source

    @property
    def jobs(self) -> int:
        return self.runner.jobs

    def source(self) -> str:
        if self._source is None:
            self._source = source_fingerprint()
        return self._source

    def run(self, specs: Sequence[JobSpec], strict: bool = True) -> SweepReport:
        """Execute every spec (cache first); merge in job-key order.

        With ``strict`` (the default), terminal failures raise
        :class:`SweepError` naming every failed job; pass ``strict=False``
        to inspect failures on the report instead.
        """
        specs = list(specs)
        keys = [s.key for s in specs]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise SweepError(f"duplicate job keys in sweep: {dupes}")

        outcomes: Dict[str, JobResult] = {}
        misses: List[JobSpec] = []
        wall_saved = 0.0
        source = self.source() if self.store is not None else ""
        for spec in specs:
            entry = (
                self.store.get(cache_key(spec, source), source)
                if self.store is not None
                else None
            )
            if entry is not None:
                outcomes[spec.key] = JobResult(
                    key=spec.key, ok=True, value=entry["value"],
                    wall=entry.get("wall", 0.0), attempts=0, cached=True,
                    usage=entry.get("usage"),
                )
                wall_saved += float(entry.get("wall", 0.0))
            else:
                misses.append(spec)

        if misses:
            fresh = self.runner.run(misses)
            for spec in misses:
                result = fresh[spec.key]
                outcomes[spec.key] = result
                if result.ok and self.store is not None:
                    self.store.put(
                        cache_key(spec, source), source, spec.to_dict(),
                        result.value, wall=result.wall, usage=result.usage,
                    )

        failed = [r for r in outcomes.values() if not r.ok]
        self._record_metrics(
            ran=len(misses), cached=len(specs) - len(misses),
            failed=len(failed), wall_saved=wall_saved,
        )
        report = SweepReport(
            outcomes=list(outcomes.values()),
            stats={
                "total": len(specs),
                "ran": len(misses),
                "cached": len(specs) - len(misses),
                "failed": len(failed),
                "retried": self.runner.retried,
                "crashes": self.runner.crashes,
                "timeouts": self.runner.timeouts,
                "hit_rate": (len(specs) - len(misses)) / len(specs) if specs else 0.0,
                "wall_saved": wall_saved,
                "workers": self.jobs,
                "utilization": self.runner.utilization,
            },
        )
        if strict and report.failures:
            summary = "\n".join(
                f"  {r.key}: {r.error.strip().splitlines()[-1] if r.error else 'failed'}"
                for r in report.failures
            )
            raise SweepError(
                f"{len(report.failures)} job(s) failed terminally:\n{summary}"
            )
        return report

    def _record_metrics(
        self, ran: int, cached: int, failed: int, wall_saved: float
    ) -> None:
        m = self.metrics
        m.counter("exec.jobs.run").inc(ran)
        m.counter("exec.jobs.cached").inc(cached)
        m.counter("exec.jobs.retried").inc(self.runner.retried)
        m.counter("exec.jobs.failed").inc(failed)
        m.counter("exec.jobs.crashed").inc(self.runner.crashes)
        m.counter("exec.jobs.timeout").inc(self.runner.timeouts)
        m.counter("exec.wall.saved").inc(wall_saved)
        m.gauge("exec.workers").set(self.jobs)
        m.gauge("exec.worker.utilization").set(self.runner.utilization)


# -- process-wide default engine ----------------------------------------

_default: Optional[SweepEngine] = None
_fallback: Optional[SweepEngine] = None


def set_default_engine(engine: Optional[SweepEngine]) -> Optional[SweepEngine]:
    """Install the engine :func:`sweep_cells` uses when none is passed.

    Returns the previously installed engine so callers (the CLI) can
    restore it.  ``None`` uninstalls.
    """
    global _default
    previous = _default
    _default = engine
    return previous


def default_engine() -> SweepEngine:
    """The installed default engine, else a shared serial/no-cache one."""
    global _fallback
    if _default is not None:
        return _default
    if _fallback is None:
        _fallback = SweepEngine(jobs=1, store=None)
    return _fallback


def sweep_cells(
    kind: str,
    payloads: Sequence[Mapping],
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> List[Any]:
    """Run one job per payload; values in payload order.

    The rewiring point for experiment grid loops: serial semantics (and
    bytes) are preserved because results are merged by key, and keys are
    the payload indices.
    """
    engine = engine if engine is not None else default_engine()
    width = max(4, len(str(max(len(payloads) - 1, 0))))
    specs = [
        JobSpec(kind=kind, payload=dict(p), seed=seed, key=f"{i:0{width}d}")
        for i, p in enumerate(payloads)
    ]
    report = engine.run(specs)
    return [report.value(s.key) for s in specs]
