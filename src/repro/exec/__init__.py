"""``repro.exec`` — deterministic parallel sweep engine with result cache.

The measurement workload of the paper's performance database (profile
every configuration at every resource point) and of every experiment
grid is embarrassingly parallel: each cell is a pure, seeded simulation.
This package turns one cell into a :class:`JobSpec`, shards specs across
spawned worker processes (:class:`ParallelRunner`), memoizes results in
a content-addressed :class:`ResultStore` keyed by (source fingerprint,
spec, seed), and merges everything back in deterministic job-key order —
so a parallel or cached sweep is byte-identical to the serial loop it
replaced.  See ``docs/parallel.md``.
"""

from .engine import (
    SweepEngine,
    SweepError,
    SweepReport,
    default_engine,
    set_default_engine,
    sweep_cells,
)
from .fingerprint import clear_fingerprint_cache, source_fingerprint
from .job import JobSpec, JobSpecError, cache_key, canonical_json, resolve_job
from .profile_jobs import AppSpec, measure_cell
from .runner import JobResult, ParallelRunner, RunnerError, publish_usage, run_job
from .store import ResultStore, StoreError

__all__ = [
    "AppSpec",
    "JobResult",
    "JobSpec",
    "JobSpecError",
    "ParallelRunner",
    "ResultStore",
    "RunnerError",
    "StoreError",
    "SweepEngine",
    "SweepError",
    "SweepReport",
    "cache_key",
    "canonical_json",
    "clear_fingerprint_cache",
    "default_engine",
    "measure_cell",
    "publish_usage",
    "resolve_job",
    "run_job",
    "set_default_engine",
    "source_fingerprint",
    "sweep_cells",
]
