"""The job abstraction: a pure, picklable description of one simulation cell.

A :class:`JobSpec` names a module-level *job function* by dotted path
(``"package.module:function"``), the JSON-able ``payload`` it receives,
and the root ``seed`` of the run.  Because the description is pure data,
the same spec can be executed inline, shipped to a worker process, or
used as a cache key — the three things the sweep engine does with it.

Identity is content-addressed: :meth:`JobSpec.canonical` renders the
spec as canonical JSON (sorted keys, no whitespace, ASCII) and
:meth:`JobSpec.fingerprint` hashes that with SHA-256, so fingerprints
are independent of dict insertion order and of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, Mapping

__all__ = [
    "JobSpec",
    "JobSpecError",
    "cache_key",
    "canonical_json",
    "resolve_job",
]


class JobSpecError(Exception):
    """Raised on malformed job specifications or unresolvable job kinds."""


_KIND_RE = re.compile(r"^[A-Za-z_][\w.]*:[A-Za-z_]\w*$")


def canonical_json(value: Any) -> str:
    """Canonical JSON text: sorted keys, compact, ASCII, no NaN.

    The canonical form is the unit of identity for job fingerprints and
    cache keys, so it must not depend on dict insertion order, hash
    randomization, or locale.  Non-JSON-able values raise
    :class:`JobSpecError` — a job payload that cannot be serialized could
    not be shipped to a worker or keyed in the cache anyway.
    """
    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"payload is not canonical-JSON-able: {exc}") from exc


def resolve_job(kind: str) -> Callable[[Mapping, int], Any]:
    """Import and return the job function named by ``kind``.

    ``kind`` has the form ``"package.module:function"``; the function must
    be module-level (so worker processes can import it after a spawn) and
    takes ``(payload, seed)``.
    """
    if not _KIND_RE.match(kind):
        raise JobSpecError(
            f"job kind must look like 'package.module:function', got {kind!r}"
        )
    module_name, _, func_name = kind.partition(":")
    try:
        module = import_module(module_name)
    except ImportError as exc:
        raise JobSpecError(f"cannot import job module {module_name!r}: {exc}") from exc
    fn = getattr(module, func_name, None)
    if not callable(fn):
        raise JobSpecError(f"{module_name!r} has no callable {func_name!r}")
    return fn


@dataclass(frozen=True)
class JobSpec:
    """One simulation cell: job function, pure inputs, and a seed.

    ``key`` orders and addresses the job inside one sweep (results are
    merged in sorted-key order regardless of completion order); it
    defaults to the content fingerprint.  Two specs in one sweep must not
    share a key.
    """

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    key: str = ""

    def __post_init__(self) -> None:
        if not _KIND_RE.match(self.kind):
            raise JobSpecError(
                f"job kind must look like 'package.module:function', "
                f"got {self.kind!r}"
            )
        object.__setattr__(self, "payload", dict(self.payload))
        if not self.key:
            object.__setattr__(self, "key", self.fingerprint())

    def canonical(self) -> str:
        """Canonical JSON of the job identity (kind, payload, seed)."""
        return canonical_json(
            {"kind": self.kind, "payload": self.payload, "seed": self.seed}
        )

    def fingerprint(self) -> str:
        """Content hash of the spec; ``PYTHONHASHSEED``-independent."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:20]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "payload": self.payload,
            "seed": self.seed,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobSpec":
        return cls(
            kind=data["kind"],
            payload=data.get("payload", {}),
            seed=int(data.get("seed", 0)),
            key=data.get("key", ""),
        )


def cache_key(spec: JobSpec, source: str) -> str:
    """Content address of a (source tree, job spec) pair.

    ``source`` is the source fingerprint of the code that will execute the
    job (see :func:`repro.exec.fingerprint.source_fingerprint`); including
    it means any code change produces fresh keys, so stale results are
    never served.
    """
    blob = f"{source}\x00{spec.canonical()}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:40]
