"""Source-tree fingerprinting for cache invalidation.

The result cache must never serve a measurement taken by *different
code*: any edit to the ``repro`` package invalidates every cached cell.
:func:`source_fingerprint` hashes the content of every Python file in
the package — discovered with the same deterministic, sorted file walk
the lint baseline uses (:func:`repro.analysis.lint.discover_files`) and
hashed with SHA-256 like the baseline's finding fingerprints, so the
result is independent of filesystem order and ``PYTHONHASHSEED``.

The fingerprint is computed once per process and memoized: a sweep may
consult it thousands of times, and the tree cannot change underneath a
running process in a way we could meaningfully track anyway.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.lint import discover_files

__all__ = ["source_fingerprint", "clear_fingerprint_cache"]

_CACHE: Dict[Tuple[str, ...], str] = {}


def _default_roots() -> Tuple[Path, ...]:
    # The installed repro package directory: everything a job can import.
    return (Path(__file__).resolve().parent.parent,)


def source_fingerprint(roots: Optional[Sequence[Path]] = None) -> str:
    """Stable hash of every ``.py`` file under ``roots``.

    Defaults to the ``repro`` package itself.  Relative paths (not
    absolute ones) enter the hash, so the fingerprint is stable across
    checkouts at different filesystem locations.
    """
    roots = tuple(Path(r).resolve() for r in (roots or _default_roots()))
    memo_key = tuple(str(r) for r in roots)
    cached = _CACHE.get(memo_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for file_path in discover_files(roots):
        resolved = file_path.resolve()
        rel = resolved.name
        for root in roots:
            try:
                rel = resolved.relative_to(root.parent).as_posix()
                break
            except ValueError:
                continue
        digest.update(rel.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(resolved.read_bytes())
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()[:16]
    _CACHE[memo_key] = fingerprint
    return fingerprint


def clear_fingerprint_cache() -> None:
    """Drop the per-process memo (tests that edit sources need this)."""
    _CACHE.clear()
