"""Process-pool execution of job specs with crash and timeout recovery.

The :class:`ParallelRunner` owns a set of spawned worker processes, each
connected by a duplex pipe.  The parent assigns one job at a time to
each worker, so it always knows exactly which job an unresponsive or
dead worker was holding — the property that makes crash recovery and
per-job timeouts possible without any cooperation from the job itself:

* **crash** — the worker process exits (or its pipe hits EOF) while a
  job is in flight: the job is retried on a fresh worker, up to
  ``retries`` extra attempts, then recorded as a terminal failure;
* **timeout** — a job exceeds ``timeout`` wall seconds: the worker is
  killed (it may be stuck inside a C extension and cannot be interrupted
  politely) and the job is retried the same way.  The clock starts when
  the worker *acknowledges* the job, not when the parent sends it, so
  interpreter startup on a loaded host is never billed to the job (a
  separate generous spawn grace bounds a worker that never comes up);
* **exception** — the job function raises: the traceback is returned as
  a terminal failure immediately.  Job functions are pure, so rerunning
  a deterministic exception would only waste a worker.

Completion order is irrelevant to callers: results are keyed by
:attr:`JobSpec.key` and the engine merges them in sorted-key order, so
parallel output is byte-identical to a serial run.

Wall-clock reads in this module time *host-side* job execution for
metrics and timeout enforcement; nothing here runs inside (or feeds) a
simulation.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as conn_wait

# Host-side timing of worker processes (timeouts, utilization); never
# enters the simulated world.
from time import perf_counter  # repro: allow[DET101] -- host-side job timing
from typing import Any, Dict, List, Optional, Sequence

from .job import JobSpec, resolve_job

__all__ = [
    "JobResult",
    "ParallelRunner",
    "RunnerError",
    "publish_usage",
    "run_job",
]

#: Worker exit codes never retried (interpreter-level misconfiguration).
_POLL_INTERVAL = 0.05

#: Extra deadline slack between job dispatch and the worker's ack,
#: covering spawned-interpreter startup on a loaded host.
_SPAWN_GRACE = 30.0


class RunnerError(Exception):
    """Raised on runner misuse (duplicate keys, bad worker counts)."""


@dataclass
class JobResult:
    """Outcome of executing one spec (possibly after retries)."""

    key: str
    ok: bool
    value: Any = None
    error: str = ""
    attempts: int = 1
    wall: float = 0.0
    cached: bool = False
    #: Usage summary the job published (see :func:`publish_usage`), or
    #: None.  Ships back over the worker pipe and persists in the result
    #: store next to the value, so cache hits restore it too.
    usage: Any = None


#: Usage summary published by the currently executing job (worker-local).
_published_usage: List[Any] = []


def publish_usage(summary: Any) -> None:
    """Attach a JSON-able usage summary to the running job's result.

    Job functions are pure value-in/value-out, which leaves no channel
    for side observations like a :class:`repro.obs.UsageAccountant`
    summary; this side-channel carries exactly one such payload per job.
    The last call wins; the runner clears it between jobs.
    """
    _published_usage.clear()
    _published_usage.append(summary)


def _take_published_usage() -> Any:
    usage = _published_usage[-1] if _published_usage else None
    _published_usage.clear()
    return usage


@dataclass
class _Worker:
    """Parent-side view of one worker process."""

    proc: mp.process.BaseProcess
    conn: Any
    current: Optional[JobSpec] = None
    attempts: int = 0
    deadline: float = 0.0
    busy_since: float = 0.0
    busy_total: float = 0.0
    spawned_at: float = field(default_factory=perf_counter)  # repro: allow[DET101] -- host-side job timing


def run_job(spec: JobSpec) -> JobResult:
    """Execute one spec in-process; exceptions become failed results."""
    t0 = perf_counter()  # repro: allow[DET101] -- host-side job timing
    _published_usage.clear()
    try:
        fn = resolve_job(spec.kind)
        value = fn(spec.payload, spec.seed)
        return JobResult(
            key=spec.key, ok=True, value=value,
            wall=perf_counter() - t0,  # repro: allow[DET101] -- host-side job timing
            usage=_take_published_usage(),
        )
    except Exception:
        _published_usage.clear()
        return JobResult(
            key=spec.key, ok=False, error=traceback.format_exc(),
            wall=perf_counter() - t0,  # repro: allow[DET101] -- host-side job timing
        )


def _worker_main(conn) -> None:
    """Worker loop: receive specs, run them, send results, until None."""
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            spec = JobSpec.from_dict(message)
            conn.send(("ack", spec.key))
            result = run_job(spec)
            conn.send(  # repro: allow[DET501] -- wall time is host-side job telemetry, not sim state
                (
                    "done", result.key, result.ok, result.value,
                    result.error, result.wall, result.usage,
                )
            )
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class ParallelRunner:
    """Shards job specs across spawned workers; survives worker death.

    ``jobs <= 1`` degenerates to inline execution in the calling process
    (no pool, no pipes, no timeout enforcement) — the reference serial
    path that parallel runs must match byte-for-byte.
    """

    def __init__(
        self,
        jobs: int = 1,
        timeout: float = 600.0,
        retries: int = 2,
    ) -> None:
        if jobs < 0:
            raise RunnerError(f"jobs must be >= 0, got {jobs}")
        if timeout <= 0:
            raise RunnerError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise RunnerError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        #: Counters of the most recent :meth:`run` (the engine reads these).
        self.retried = 0
        self.crashes = 0
        self.timeouts = 0
        self.utilization = 0.0

    # -- public ---------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> Dict[str, JobResult]:
        """Execute every spec; returns ``{spec.key: JobResult}``."""
        specs = list(specs)
        keys = [s.key for s in specs]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise RunnerError(f"duplicate job keys in sweep: {dupes}")
        self.retried = 0
        self.crashes = 0
        self.timeouts = 0
        self.utilization = 1.0
        if not specs:
            return {}
        if self.jobs <= 1:
            return {s.key: run_job(s) for s in specs}
        return self._run_pool(specs)

    # -- pool management ------------------------------------------------
    def _spawn(self, ctx) -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return _Worker(proc=proc, conn=parent_conn)

    def _retire(self, worker: _Worker, kill: bool = False) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if kill and worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        if worker.proc.is_alive():  # pragma: no cover - defensive
            worker.proc.kill()
            worker.proc.join(timeout=5.0)

    def _run_pool(self, specs: List[JobSpec]) -> Dict[str, JobResult]:
        ctx = mp.get_context("spawn")
        n_workers = min(self.jobs, len(specs))
        pending = deque((spec, 0) for spec in specs)
        results: Dict[str, JobResult] = {}
        workers: List[_Worker] = [self._spawn(ctx) for _ in range(n_workers)]
        t_start = perf_counter()  # repro: allow[DET101] -- host-side job timing
        try:
            while len(results) < len(specs):
                self._assign(workers, pending, ctx)
                busy = [w for w in workers if w.current is not None]
                if not busy:
                    raise RunnerError(
                        "sweep stalled: jobs remain but no worker holds one"
                    )
                self._collect(busy, results)
                self._expire(workers, pending, results)
            return results
        finally:
            elapsed = perf_counter() - t_start  # repro: allow[DET101] -- host-side job timing
            busy_sum = sum(w.busy_total for w in workers)
            if elapsed > 0 and workers:
                self.utilization = min(
                    1.0, busy_sum / (elapsed * len(workers))
                )
            for worker in workers:
                if worker.current is None and worker.proc.is_alive():
                    try:
                        worker.conn.send(None)
                    except (OSError, BrokenPipeError):
                        pass
                self._retire(worker, kill=worker.current is not None)

    def _assign(self, workers: List[_Worker], pending, ctx) -> None:
        """Hand queued jobs to idle live workers, respawning dead ones."""
        for i, worker in enumerate(workers):
            if not pending:
                return
            if worker.current is not None:
                continue
            if not worker.proc.is_alive():
                self._retire(worker)
                workers[i] = worker = self._spawn(ctx)
            spec, attempts = pending.popleft()
            try:
                worker.conn.send(spec.to_dict())
            except (OSError, BrokenPipeError):
                # Died between liveness check and send: requeue, respawn.
                pending.appendleft((spec, attempts))
                self._retire(worker, kill=True)
                workers[i] = self._spawn(ctx)
                continue
            now = perf_counter()  # repro: allow[DET101] -- host-side job timing
            worker.current = spec
            worker.attempts = attempts + 1
            # Provisional deadline with spawn slack; tightened to a pure
            # job deadline when the worker acks (see _collect).
            worker.deadline = now + self.timeout + _SPAWN_GRACE
            worker.busy_since = now

    def _collect(self, busy: List[_Worker], results: Dict[str, JobResult]) -> None:
        """Wait briefly for any busy worker to report, then drain it."""
        ready = conn_wait([w.conn for w in busy], timeout=_POLL_INTERVAL)
        ready_set = {id(c) for c in ready}
        for worker in busy:
            if id(worker.conn) not in ready_set:
                continue
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                # Pipe broke mid-result: treated as a crash by _expire.
                continue
            if message[0] == "ack":
                # Worker picked the job up: start the real job clock.
                worker.deadline = (
                    perf_counter() + self.timeout  # repro: allow[DET101] -- host-side job timing
                )
                continue
            _, key, ok, value, error, wall, usage = message
            spec = worker.current
            worker.busy_total += (
                perf_counter() - worker.busy_since  # repro: allow[DET101] -- host-side job timing
            )
            worker.current = None
            if spec is None or key != spec.key:  # pragma: no cover - defensive
                raise RunnerError(
                    f"worker returned result for {key!r} while holding "
                    f"{spec.key if spec else None!r}"
                )
            results[key] = JobResult(
                key=key, ok=ok, value=value, error=error,
                attempts=worker.attempts, wall=wall, usage=usage,
            )

    def _expire(
        self, workers: List[_Worker], pending, results: Dict[str, JobResult]
    ) -> None:
        """Reap crashed workers and enforce per-job deadlines."""
        now = perf_counter()  # repro: allow[DET101] -- host-side job timing
        for i, worker in enumerate(workers):
            spec = worker.current
            if spec is None:
                continue
            crashed = not worker.proc.is_alive() or worker.conn.closed
            timed_out = now > worker.deadline
            if not crashed and not timed_out:
                continue
            if spec.key in results:
                # Result arrived in the same cycle the process exited.
                worker.current = None
                continue
            if timed_out and not crashed and worker.conn.poll():
                # A message (ack or result) is already in the pipe; let
                # the next collect cycle drain it before judging.
                continue
            reason = "timeout" if timed_out and not crashed else "worker crash"
            if timed_out and not crashed:
                self.timeouts += 1
            else:
                self.crashes += 1
            worker.busy_total += max(0.0, now - worker.busy_since)
            attempts = worker.attempts
            self._retire(worker, kill=True)
            workers[i] = self._spawn(ctx=mp.get_context("spawn"))
            if attempts <= self.retries:
                self.retried += 1
                pending.appendleft((spec, attempts))
            else:
                results[spec.key] = JobResult(
                    key=spec.key, ok=False, attempts=attempts,
                    error=(
                        f"{reason} after {attempts} attempt(s) "
                        f"(timeout={self.timeout:g}s, retries={self.retries})"
                    ),
                )
