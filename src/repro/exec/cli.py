"""``repro sweep`` — run a profiling sweep through the engine directly.

A thin front end over :class:`~repro.exec.engine.SweepEngine` +
:class:`~repro.profiling.ProfilingDriver` for the bundled applications::

    python -m repro.cli sweep toy                 # serial, cached
    python -m repro.cli sweep toy --jobs 4        # 4 worker processes
    python -m repro.cli sweep viz --no-cache      # always re-simulate
    python -m repro.cli sweep toy --out toy.json  # save the database

Repeated invocations are served from the content-addressed result cache
(default ``.repro_cache``) until the source tree, the spec, or the seed
changes — the summary line reports how much simulated wall time that
saved.  See ``docs/parallel.md``.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .profile_jobs import AppSpec

__all__ = ["sweep_main", "SWEEPS"]


def _toy_sweep():
    from ..apps import make_toy_app
    from ..profiling import ResourceDimension

    app = make_toy_app()
    dims = [
        ResourceDimension("node.cpu", (0.25, 0.5, 0.75, 1.0), lo=0.01, hi=1.0)
    ]
    return app, dims, AppSpec("repro.apps:make_toy_app"), None


def _viz_sweep():
    from ..apps.visualization import make_viz_app
    from ..experiments.fig6 import exp1_workload
    from ..profiling import ResourceDimension

    app = make_viz_app()
    dims = [
        ResourceDimension("client.cpu", (0.5, 1.0), lo=0.01, hi=1.0),
        ResourceDimension("client.network", (500e3, 1e6), lo=1.0),
    ]
    app_spec = AppSpec(
        "repro.apps.visualization:make_viz_app",
        workload="repro.experiments.fig6:exp1_workload",
        workload_kwargs={"n_images": 1},
    )

    def workload(config, point, run_seed):
        return exp1_workload(config, point, run_seed, n_images=1)

    return app, dims, app_spec, workload


#: Sweepable application name -> builder of (app, dims, app_spec, workload).
SWEEPS = {"toy": _toy_sweep, "viz": _viz_sweep}


def sweep_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Profile an application grid through the parallel sweep "
        "engine and its content-addressed result cache.",
    )
    parser.add_argument("app", choices=sorted(SWEEPS), help="application to sweep")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes"
    )
    parser.add_argument("--seed", type=int, default=0, help="sweep seed")
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(".repro_cache"),
        help="result-cache directory (default: .repro_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="skip the persistent cache"
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, help="per-job timeout (s)"
    )
    parser.add_argument(
        "--retries", type=int, default=2, help="retries per crashed/stuck job"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the database as JSON"
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    from ..profiling import ProfilingDriver
    from .engine import SweepEngine
    from .store import ResultStore

    app, dims, app_spec, workload = SWEEPS[args.app]()
    store = None if args.no_cache else ResultStore(args.cache_dir)
    engine = SweepEngine(
        jobs=args.jobs, store=store, timeout=args.timeout, retries=args.retries
    )
    driver = ProfilingDriver(
        app, dims, workload_factory=workload, seed=args.seed, app_spec=app_spec
    )
    db = driver.profile(engine=engine)

    print(f"== sweep {args.app}: {len(db)} cells ==")
    for config in db.configurations():
        for record in db.records_for(config):
            metrics = "  ".join(
                f"{k}={v:.4g}" for k, v in sorted(record.metrics.items())
            )
            print(f"  {config.label()} @ {record.point.label()}: {metrics}")
    m = engine.metrics
    print(
        f"engine: {m.counter('exec.jobs.run').value:g} run, "
        f"{m.counter('exec.jobs.cached').value:g} cached, "
        f"{m.counter('exec.jobs.retried').value:g} retried, "
        f"{m.counter('exec.wall.saved').value:.2f}s saved "
        f"({engine.jobs} workers)"
    )
    if args.out is not None:
        db.save(args.out)
        print(f"database written to {args.out}")
    return 0
