"""The steering agent (Section 6.3).

Receives control messages from the resource scheduler (new control-parameter
values plus the resource conditions under which they are valid), posts them
to the application's :class:`~repro.tunable.ControlBox`, and acknowledges
once the change takes effect at a task boundary / transition point.  When a
transition guard rejects the switch, the steering agent reports failure so
the scheduler can negotiate an alternative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..tunable import AppRuntime, Configuration, PendingChange
from .scheduler import Decision

__all__ = ["SteeringAgent", "ControlMessage"]


@dataclass
class ControlMessage:
    """Scheduler -> steering agent reconfiguration request."""

    decision: Decision
    #: Called with True once applied at a safe point; False when superseded
    #: or rejected by a transition guard.
    on_applied: Optional[Callable[[bool], None]] = None


class SteeringAgent:
    """Applies configuration switches for one application instance."""

    def __init__(self, rt: AppRuntime, control_latency: float = 0.0):
        self.rt = rt
        #: Virtual-time delay before a control message reaches the agent
        #: (models the scheduler running off-host).
        self.control_latency = float(control_latency)
        #: (time_posted, config) of every message received.
        self.received: List[Tuple[float, Configuration]] = []
        #: (time_applied, config) acknowledgements.
        self.acks: List[Tuple[float, Configuration]] = []

    def deliver(self, message: ControlMessage) -> None:
        """Accept a control message; the change lands at a safe point."""
        if self.control_latency > 0:
            self.rt.sim.schedule_callback(
                self.control_latency, lambda: self._post(message)
            )
        else:
            self._post(message)

    def _post(self, message: ControlMessage) -> None:
        config = message.decision.config
        self.received.append((self.rt.sim.now, config))

        def on_applied(ok: bool) -> None:
            if ok:
                self.acks.append((self.rt.sim.now, config))
            if message.on_applied is not None:
                message.on_applied(ok)

        self.rt.controls.request(
            PendingChange(
                new_config=config,
                conditions=message.decision.conditions,
                on_applied=on_applied,
            )
        )

    @property
    def switches(self) -> List[Tuple[float, Configuration, Configuration]]:
        """(time, old, new) history of applied switches."""
        return list(self.rt.controls.history)
