"""The steering agent (Section 6.3).

Receives control messages from the resource scheduler (new control-parameter
values plus the resource conditions under which they are valid), posts them
to the application's :class:`~repro.tunable.ControlBox`, and acknowledges
once the change takes effect at a task boundary / transition point.  When a
transition guard rejects the switch, the steering agent reports failure so
the scheduler can negotiate an alternative.

Fault tolerance: with an ``ack_timeout`` configured, a control message that
is neither applied nor rejected in time (the application is stalled behind
a crash or partition and never reaches a safe point) is re-posted with
exponential backoff up to ``max_retries`` times, after which the agent
gives up: it withdraws the pending change, reports the timeout through
``ControlMessage.on_timeout``, and fires the terminal ``on_applied(False)``
so the scheduler is never left hanging on a dead handshake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..tunable import AppRuntime, Configuration, PendingChange
from .scheduler import Decision

__all__ = ["SteeringAgent", "ControlMessage"]


@dataclass
class ControlMessage:
    """Scheduler -> steering agent reconfiguration request."""

    decision: Decision
    #: Called with True once applied at a safe point; False when superseded,
    #: rejected by a transition guard, or abandoned after an ack timeout.
    on_applied: Optional[Callable[[bool], None]] = None
    #: Called (before the terminal ``on_applied(False)``) when the message
    #: is abandoned because the acknowledgement never arrived.
    on_timeout: Optional[Callable[[], None]] = None
    #: Observability: span id of the decision that issued this message
    #: (set by the sender) and of the ``steer.request`` handshake span the
    #: agent opens for it (set in :meth:`SteeringAgent._post`), so the
    #: sender's outcome callbacks can link into the same causal chain.
    cause: Optional[int] = None
    span: Optional[int] = None


class _MessageState:
    """Ack bookkeeping for one in-flight control message."""

    __slots__ = ("message", "done", "resending", "change")

    def __init__(self, message: ControlMessage):
        self.message = message
        self.done = False
        self.resending = False
        self.change: Optional[PendingChange] = None


class SteeringAgent:
    """Applies configuration switches for one application instance."""

    def __init__(
        self,
        rt: AppRuntime,
        control_latency: float = 0.0,
        ack_timeout: Optional[float] = None,
        max_retries: int = 3,
        backoff: float = 2.0,
    ):
        if ack_timeout is not None and ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be positive, got {ack_timeout!r}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff!r}")
        self.rt = rt
        #: Virtual-time delay before a control message reaches the agent
        #: (models the scheduler running off-host).
        self.control_latency = float(control_latency)
        #: None preserves the classic wait-forever handshake.
        self.ack_timeout = ack_timeout
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        #: (time_posted, config) of every message received.
        self.received: List[Tuple[float, Configuration]] = []
        #: (time_applied, config) acknowledgements.
        self.acks: List[Tuple[float, Configuration]] = []
        self.retries = 0
        self.timeouts = 0

    def deliver(self, message: ControlMessage) -> None:
        """Accept a control message; the change lands at a safe point."""
        if self.control_latency > 0:
            self.rt.sim.schedule_callback(
                self.control_latency, lambda: self._post(message)
            )
        else:
            self._post(message)

    def _post(self, message: ControlMessage) -> None:
        self.received.append((self.rt.sim.now, message.decision.config))
        obs = self.rt.sim.obs
        if obs is not None:
            message.span = obs.begin(
                "steer.request", cat="steer", parent=message.cause,
                config=message.decision.config.label(),
            )
            obs.metrics.counter("steer.requests").inc()
        state = _MessageState(message)
        self._request(state)
        if self.ack_timeout is not None:
            self._arm_timeout(state, attempt=0)

    def _request(self, state: _MessageState) -> None:
        """Post (or re-post) the pending change for one control message."""
        message = state.message
        config = message.decision.config
        # Switch-history length before this post: lets the ack callback
        # tell a real switch (history grew; its entry carries the safe-point
        # time) from a no-op change (acked without touching history).
        history_before = len(self.rt.controls.history)

        def on_applied(ok: bool) -> None:
            # A re-post supersedes our own previous PendingChange, which
            # reports failure synchronously — ignore that echo.
            if state.done or (not ok and state.resending):
                return
            state.done = True
            # A retry may have re-posted this message after the application
            # had already popped an earlier copy at a safe point; withdraw
            # the duplicate so it cannot apply a second time.
            if self.rt.controls.pending is state.change:
                self.rt.controls.pending = None
            history = self.rt.controls.history
            switched = ok and len(history) > history_before
            if ok:
                self.acks.append((self.rt.sim.now, config))
            if switched and self.rt.sim.usage is not None:
                # Attribute work served after the safe point to the new
                # configuration (same exact timestamp as the trace instant).
                self.rt.sim.usage.set_config(config.label(), t=history[-1][0])
            obs = self.rt.sim.obs
            if obs is not None and message.span is not None:
                if ok:
                    if switched:
                        # Timestamp the switch at the safe point where the
                        # application applied it (the transition handlers
                        # may take further simulated time before this ack
                        # callback runs).
                        obs.instant(
                            "config.switch", cat="steer", parent=message.span,
                            t=history[-1][0], config=config.label(),
                        )
                    obs.metrics.counter("steer.acks").inc()
                obs.end(message.span, outcome="ack" if ok else "rejected")
            if message.on_applied is not None:
                message.on_applied(ok)

        change = PendingChange(
            new_config=config,
            conditions=message.decision.conditions,
            on_applied=on_applied,
        )
        state.resending = state.change is not None
        state.change = change
        try:
            self.rt.controls.request(change)
        finally:
            state.resending = False

    def _arm_timeout(self, state: _MessageState, attempt: int) -> None:
        delay = self.ack_timeout * (self.backoff ** attempt)

        def check() -> None:
            if state.done:
                return
            message = state.message
            obs = self.rt.sim.obs
            if attempt < self.max_retries:
                self.retries += 1
                if obs is not None:
                    obs.instant(
                        "steer.retry", cat="steer", parent=message.span,
                        attempt=attempt + 1,
                    )
                    obs.metrics.counter("steer.retries").inc()
                self._request(state)
                self._arm_timeout(state, attempt + 1)
                return
            # Terminal: withdraw the stale change so the application cannot
            # silently apply a switch the scheduler already gave up on.
            state.done = True
            self.timeouts += 1
            if self.rt.controls.pending is state.change:
                self.rt.controls.pending = None
            if obs is not None:
                obs.instant(
                    "steer.withdrawal", cat="steer", parent=message.span,
                    attempts=attempt,
                )
                obs.metrics.counter("steer.timeouts").inc()
                if message.span is not None:
                    obs.end(message.span, outcome="timeout")
            if message.on_timeout is not None:
                message.on_timeout()
            if message.on_applied is not None:
                message.on_applied(False)

        self.rt.sim.schedule_callback(delay, check)

    @property
    def switches(self) -> List[Tuple[float, Configuration, Configuration]]:
        """(time, old, new) history of applied switches."""
        return list(self.rt.controls.history)
