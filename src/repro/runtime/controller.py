"""The adaptation controller: monitor -> scheduler -> steering glue.

"Run-time adaptation is triggered whenever the [monitoring agent] detects
that the currently active application configuration no longer meets user
preferences of application quality, and is guided by the [performance
database]."

The controller owns one application instance's adaptation loop:

1. ``select_initial`` picks the starting configuration for the measured
   resource characteristics (automatic configuration in diverse
   environments);
2. once the app is running, ``attach``/``start`` arms the monitoring agent
   with the decision's validity region;
3. a violation re-invokes the scheduler at the *measured* resource point;
   a new decision goes to the steering agent and, after the switch is
   acknowledged, the monitor is retargeted to the new configuration;
4. a guard-rejected switch triggers negotiation: the scheduler re-selects
   with the rejected configuration excluded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..profiling import ResourcePoint
from ..tunable import AppRuntime, Configuration, MonitoringPlan
from .monitor import MonitoringAgent
from .scheduler import Decision, ResourceScheduler
from .steering import ControlMessage, SteeringAgent

__all__ = ["AdaptationController", "AdaptationEvent"]


@dataclass
class AdaptationEvent:
    """One entry in the controller's event log."""

    time: float
    kind: str  # "initial" | "trigger" | "decision" | "applied" | "rejected" | "no-candidate"
    config: Optional[Configuration] = None
    estimates: Dict[str, float] = field(default_factory=dict)


class AdaptationController:
    """Wires the run-time components together for one application."""

    def __init__(
        self,
        scheduler: ResourceScheduler,
        monitoring_plan: Optional[MonitoringPlan] = None,
        control_latency: float = 0.001,
        monitor_kwargs: Optional[dict] = None,
        settle_delay: Optional[float] = None,
    ):
        self.scheduler = scheduler
        self.monitoring_plan = monitoring_plan
        self.control_latency = float(control_latency)
        self.monitor_kwargs = dict(monitor_kwargs or {})
        #: After a violation, wait this long before re-reading estimates and
        #: deciding, so the monitoring window fully covers the post-change
        #: regime instead of a transient mix.  Defaults to the monitor's
        #: history window.
        self.settle_delay = settle_delay
        self._settling = False
        self.rt: Optional[AppRuntime] = None
        self.monitor: Optional[MonitoringAgent] = None
        self.steering: Optional[SteeringAgent] = None
        self.current_decision: Optional[Decision] = None
        self.events: List[AdaptationEvent] = []
        self._reconfiguring = False

    # -- phase 1: initial configuration ------------------------------------
    def select_initial(self, point: ResourcePoint) -> Decision:
        """Choose the starting configuration for the measured resources."""
        decision = self.scheduler.select(point)
        if decision is None:
            raise RuntimeError(
                f"no configuration satisfies any preference at {point.label()}"
            )
        self.current_decision = decision
        self.events.append(
            AdaptationEvent(time=0.0, kind="initial", config=decision.config)
        )
        return decision

    # -- phase 2: run-time loop -----------------------------------------------
    def attach(self, rt: AppRuntime) -> "AdaptationController":
        """Bind to a running application instance and start monitoring."""
        if self.current_decision is None:
            raise RuntimeError("call select_initial() before attach()")
        self.rt = rt
        self.steering = SteeringAgent(rt, control_latency=self.control_latency)
        watch = self._watch_list(self.current_decision.config)
        self.monitor = MonitoringAgent(
            rt,
            watch=watch,
            on_violation=self._on_violation,
            **self.monitor_kwargs,
        )
        self.monitor.retarget(conditions=self.current_decision.conditions)
        self.monitor.start()
        return self

    def _watch_list(self, config: Configuration) -> List[str]:
        if self.monitoring_plan is not None:
            resources = self.monitoring_plan.resources_for(config)
            if resources:
                return resources
        return list(self.scheduler.db.resource_dims)

    # -- violation handling -------------------------------------------------
    def _on_violation(self, estimates: Dict[str, float]) -> None:
        assert self.rt is not None and self.monitor is not None
        now = self.rt.sim.now
        self.events.append(
            AdaptationEvent(time=now, kind="trigger", estimates=dict(estimates))
        )
        delay = (
            self.settle_delay
            if self.settle_delay is not None
            else self.monitor.window
        )
        if delay <= 0:
            self._reschedule(estimates, exclude=set())
            return
        if self._settling:
            return
        self._settling = True

        def decide() -> None:
            self._settling = False
            fresh = self.monitor.estimates()
            fresh = {**estimates, **fresh}
            self._reschedule(fresh, exclude=set())

        self.rt.sim.schedule_callback(delay, decide)

    def _measured_point(self, estimates: Dict[str, float]) -> ResourcePoint:
        """Fill unmeasured dimensions from the last decision's point."""
        base = dict(self.current_decision.point) if self.current_decision else {}
        base.update(estimates)
        return ResourcePoint(
            {d: base[d] for d in self.scheduler.db.resource_dims if d in base}
        )

    def _reschedule(
        self, estimates: Dict[str, float], exclude: Set[Configuration]
    ) -> None:
        assert self.rt is not None and self.steering is not None
        now = self.rt.sim.now
        point = self._measured_point(estimates)
        decision = self.scheduler.select(point, exclude=exclude)
        if decision is None:
            self.events.append(AdaptationEvent(time=now, kind="no-candidate"))
            return
        self.events.append(
            AdaptationEvent(time=now, kind="decision", config=decision.config)
        )
        if decision.config == self.rt.controls.current:
            # Same configuration remains best; just refresh the validity
            # region so the monitor re-arms around the new conditions.
            self.current_decision = decision
            self.monitor.retarget(conditions=decision.conditions)
            return

        def on_applied(ok: bool, decision=decision, exclude=exclude) -> None:
            t = self.rt.sim.now
            if ok:
                self.current_decision = decision
                self.events.append(
                    AdaptationEvent(time=t, kind="applied", config=decision.config)
                )
                self.monitor.retarget(
                    watch=self._watch_list(decision.config),
                    conditions=decision.conditions,
                )
            else:
                self.events.append(
                    AdaptationEvent(time=t, kind="rejected", config=decision.config)
                )
                # Negotiation: ask for the next best configuration.
                self._reschedule(
                    dict(decision.point), exclude=exclude | {decision.config}
                )

        self.steering.deliver(ControlMessage(decision=decision, on_applied=on_applied))

    # -- introspection ---------------------------------------------------------
    @property
    def switch_times(self) -> List[Tuple[float, Configuration]]:
        return [(e.time, e.config) for e in self.events if e.kind == "applied"]
