"""The adaptation controller: monitor -> scheduler -> steering glue.

"Run-time adaptation is triggered whenever the [monitoring agent] detects
that the currently active application configuration no longer meets user
preferences of application quality, and is guided by the [performance
database]."

The controller owns one application instance's adaptation loop:

1. ``select_initial`` picks the starting configuration for the measured
   resource characteristics (automatic configuration in diverse
   environments);
2. once the app is running, ``attach``/``start`` arms the monitoring agent
   with the decision's validity region;
3. a violation re-invokes the scheduler at the *measured* resource point;
   a new decision goes to the steering agent and, after the switch is
   acknowledged, the monitor is retargeted to the new configuration;
4. a guard-rejected switch triggers negotiation: the scheduler re-selects
   with the rejected configuration excluded (bounded by
   ``max_negotiation_depth`` so a pathological database cannot walk the
   whole configuration space on one violation).

Fault tolerance: when attached together with a :class:`MonitorExchange`,
a liveness watchdog turns missing peer heartbeats into adaptation events —
a silent peer is declared lost (``"peer-lost"``), selection re-runs over
the degraded resource point (crashed host => zero availability,
``"degraded"``), and resumed heartbeats trigger a ``"peer-recovered"``
re-selection.  A steering handshake that never completes is abandoned by
the steering agent's ack timeout and recorded as ``"steering-timeout"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..obs import TraceRecorder
from ..profiling import ResourcePoint
from ..sim import URGENT
from ..tunable import AppRuntime, Configuration, MonitoringPlan
from .exchange import MonitorExchange
from .monitor import MonitoringAgent
from .scheduler import Decision, ResourceScheduler
from .steering import ControlMessage, SteeringAgent

__all__ = ["AdaptationController", "AdaptationEvent"]


@dataclass
class AdaptationEvent:
    """One entry in the controller's event log.

    ``kind`` is one of: "initial", "trigger", "decision", "applied",
    "rejected", "no-candidate", "peer-lost", "peer-recovered",
    "steering-timeout", "degraded", "brownout-enter", "brownout-exit".
    """

    time: float
    kind: str
    config: Optional[Configuration] = None
    estimates: Dict[str, float] = field(default_factory=dict)


class AdaptationController:
    """Wires the run-time components together for one application."""

    def __init__(
        self,
        scheduler: ResourceScheduler,
        monitoring_plan: Optional[MonitoringPlan] = None,
        control_latency: float = 0.001,
        monitor_kwargs: Optional[dict] = None,
        settle_delay: Optional[float] = None,
        max_negotiation_depth: int = 8,
        steering_kwargs: Optional[dict] = None,
        watchdog_period: float = 1.0,
        peer_timeout: Optional[float] = None,
        recorder: Optional[TraceRecorder] = None,
    ):
        if max_negotiation_depth < 1:
            raise ValueError(
                f"max_negotiation_depth must be >= 1, got {max_negotiation_depth!r}"
            )
        self.scheduler = scheduler
        self.monitoring_plan = monitoring_plan
        self.control_latency = float(control_latency)
        self.monitor_kwargs = dict(monitor_kwargs or {})
        #: Extra arguments for the steering agent (e.g. ``ack_timeout``).
        self.steering_kwargs = dict(steering_kwargs or {})
        #: After a violation, wait this long before re-reading estimates and
        #: deciding, so the monitoring window fully covers the post-change
        #: regime instead of a transient mix.  Defaults to the monitor's
        #: history window.
        self.settle_delay = settle_delay
        #: Bound on negotiation recursion after rejected switches.
        self.max_negotiation_depth = int(max_negotiation_depth)
        #: Liveness-check period of the peer watchdog (needs an exchange).
        self.watchdog_period = float(watchdog_period)
        #: Heartbeat silence that declares a peer lost; defaults to four
        #: exchange publication periods.
        self.peer_timeout = peer_timeout
        #: Observability recorder.  Passing one explicitly lets the initial
        #: selection (which happens before any simulator exists) be traced;
        #: otherwise the recorder bound to the runtime's simulator
        #: (``sim.obs``) is discovered lazily at each instrumentation site.
        self.recorder = recorder
        self._settling = False
        self._pending_estimates: Optional[Dict[str, float]] = None
        #: Bookkeeping for the control message currently awaiting an ack,
        #: so concurrent adaptation paths (violation vs. watchdog) neither
        #: duplicate an identical request nor mistake their own supersede
        #: echo for an application rejection.
        self._inflight: Optional[Dict] = None
        self.rt: Optional[AppRuntime] = None
        self.monitor: Optional[MonitoringAgent] = None
        self.steering: Optional[SteeringAgent] = None
        self.exchange: Optional[MonitorExchange] = None
        self.current_decision: Optional[Decision] = None
        self.events: List[AdaptationEvent] = []
        self.lost_peers: Set[str] = set()
        self._watchdog_stopped = False
        self._watchdog_proc = None
        self._reconfiguring = False
        #: While pinned (brownout), monitor violations do not steer away
        #: from the forced configuration.
        self._pinned = False
        #: Monitor state from a checkpoint, applied by the next attach().
        self._pending_monitor_state: Optional[Dict] = None

    # -- observability -----------------------------------------------------
    def _obs(self) -> Optional[TraceRecorder]:
        """The active recorder: explicit, else discovered via ``sim.obs``."""
        if self.recorder is not None:
            return self.recorder
        if self.rt is not None:
            return self.rt.sim.obs
        return None

    # -- phase 1: initial configuration ------------------------------------
    def select_initial(self, point: ResourcePoint) -> Decision:
        """Choose the starting configuration for the measured resources."""
        obs = self._obs()
        if obs is not None:
            self.scheduler.obs = obs
        decision = self.scheduler.select(point)
        if decision is None:
            raise RuntimeError(
                f"no configuration satisfies any preference at {point.label()}"
            )
        self.current_decision = decision
        self.events.append(
            AdaptationEvent(time=0.0, kind="initial", config=decision.config)
        )
        if obs is not None:
            obs.instant(
                "config.initial", cat="adapt", t=0.0,
                config=decision.config.label(),
            )
        return decision

    # -- phase 2: run-time loop -----------------------------------------------
    def attach(
        self, rt: AppRuntime, exchange: Optional[MonitorExchange] = None
    ) -> "AdaptationController":
        """Bind to a running application instance and start monitoring.

        With an ``exchange``, the controller also runs the peer-liveness
        watchdog against the exchange's heartbeat record.
        """
        if self.current_decision is None:
            raise RuntimeError("call select_initial() before attach()")
        self.rt = rt
        if rt.sim.usage is not None:
            # Work served from here on belongs to the initial configuration
            # (until the steering agent records a switch at a safe point).
            rt.sim.usage.set_config(
                self.current_decision.config.label(), t=rt.sim.now
            )
        self.steering = SteeringAgent(
            rt, control_latency=self.control_latency, **self.steering_kwargs
        )
        watch = self._watch_list(self.current_decision.config)
        self.monitor = MonitoringAgent(
            rt,
            watch=watch,
            on_violation=self._on_violation,
            **self.monitor_kwargs,
        )
        if self._pending_monitor_state is not None:
            # Warm restart/failover: resume from the checkpointed monitor
            # state so estimates are available immediately instead of after
            # a full sampling window refill.
            self.monitor.restore(self._pending_monitor_state)
            self._pending_monitor_state = None
        self.monitor.retarget(conditions=self.current_decision.conditions)
        self.monitor.start()
        if exchange is not None:
            self.start_watchdog(exchange)
        return self

    def start_watchdog(self, exchange: MonitorExchange) -> None:
        """Bind an exchange and start the peer-liveness watchdog.

        Separate from :meth:`attach` because the exchange usually publishes
        the controller's own monitor — which only exists after attach.
        """
        if self.rt is None:
            raise RuntimeError("call attach() before start_watchdog()")
        self.exchange = exchange
        if exchange.peers:
            self._watchdog_stopped = False
            self._watchdog_proc = self.rt.sim.process(
                self._watchdog(), name="adaptation-watchdog"
            )
            rt = self.rt
            if rt.finished is not None and rt.finished.callbacks is not None:
                rt.finished.callbacks.append(lambda _e: self.stop_watchdog())

    def stop_watchdog(self) -> None:
        self._watchdog_stopped = True

    def _watch_list(self, config: Configuration) -> List[str]:
        if self.monitoring_plan is not None:
            resources = self.monitoring_plan.resources_for(config)
            if resources:
                return resources
        return list(self.scheduler.db.resource_dims)

    # -- peer liveness watchdog ---------------------------------------------
    def _watchdog(self):
        assert self.rt is not None and self.exchange is not None
        exchange = self.exchange
        timeout = (
            self.peer_timeout
            if self.peer_timeout is not None
            else 4.0 * exchange.period
        )
        start = self.rt.sim.now
        while not self._watchdog_stopped:
            # URGENT: the liveness check must observe peer state *before*
            # any message arriving at the same instant, so its view never
            # depends on the event queue's FIFO tiebreak (tie-order race).
            yield self.rt.sim.timeout(self.watchdog_period, priority=URGENT)
            if self._watchdog_stopped:
                return
            now = self.rt.sim.now
            exchange.expire_stale()
            for peer in exchange.peers:
                last = exchange.peer_last_seen.get(peer, start)
                alive = (now - last) <= timeout
                if not alive and peer not in self.lost_peers:
                    self.lost_peers.add(peer)
                    self.events.append(
                        AdaptationEvent(time=now, kind="peer-lost",
                                        estimates={"peer": peer})
                    )
                    obs = self._obs()
                    cause = None
                    if obs is not None:
                        cause = obs.instant(
                            "adapt.peer-lost", cat="adapt", peer=peer
                        )
                        obs.metrics.counter("adapt.peer_lost").inc()
                    self._degraded_reschedule(peer, cause=cause)
                elif alive and peer in self.lost_peers:
                    self.lost_peers.discard(peer)
                    self.events.append(
                        AdaptationEvent(time=now, kind="peer-recovered",
                                        estimates={"peer": peer})
                    )
                    obs = self._obs()
                    cause = None
                    if obs is not None:
                        cause = obs.instant(
                            "adapt.peer-recovered", cat="adapt", peer=peer
                        )
                        obs.metrics.counter("adapt.peer_recovered").inc()
                    self._reschedule(
                        self._global_estimates(), exclude=set(), cause=cause
                    )

    def _global_estimates(self) -> Dict[str, float]:
        if self.exchange is not None:
            return self.exchange.global_estimates()
        return self.monitor.estimates()

    def _degraded_reschedule(self, peer: str, cause: Optional[int] = None) -> None:
        """Re-select at the degraded point: the lost host contributes zero."""
        assert self.rt is not None and self.monitor is not None
        estimates = dict(self.monitor.estimates())
        for dim in self.scheduler.db.resource_dims:
            if dim.startswith(peer + "."):
                estimates[dim] = 0.0
        self.events.append(
            AdaptationEvent(
                time=self.rt.sim.now, kind="degraded", estimates=dict(estimates)
            )
        )
        obs = self._obs()
        if obs is not None:
            cause = obs.instant(
                "adapt.degraded", cat="adapt", parent=cause, peer=peer,
                estimates=dict(sorted(estimates.items())),
            )
        self._reschedule(estimates, exclude=set(), cause=cause)

    # -- violation handling -------------------------------------------------
    def _on_violation(self, estimates: Dict[str, float]) -> None:
        assert self.rt is not None and self.monitor is not None
        if self._pinned:
            # Brownout: the configuration is deliberately forced; violations
            # must not steer away until resume_normal() lifts the pin.
            return
        now = self.rt.sim.now
        self.events.append(
            AdaptationEvent(time=now, kind="trigger", estimates=dict(estimates))
        )
        obs = self._obs()
        cause = None
        if obs is not None:
            cause = obs.instant(
                "monitor.violation", cat="adapt",
                estimates=dict(sorted(estimates.items())),
            )
            obs.metrics.counter("adapt.violations").inc()
        delay = (
            self.settle_delay
            if self.settle_delay is not None
            else self.monitor.window
        )
        if delay <= 0:
            self._reschedule(estimates, exclude=set(), cause=cause)
            return
        if self._settling:
            # A second violation during the settling window — possibly in a
            # *different* resource dimension.  Fold its estimates into the
            # pending decision instead of dropping them on the floor.
            if self._pending_estimates is not None:
                self._pending_estimates.update(estimates)
            return
        self._settling = True
        self._pending_estimates = dict(estimates)
        settle_span = None
        if obs is not None:
            settle_span = obs.begin("adapt.settle", cat="adapt", parent=cause)

        def decide() -> None:
            self._settling = False
            pending = self._pending_estimates or {}
            self._pending_estimates = None
            fresh = self.monitor.estimates()
            fresh = {**pending, **fresh}
            obs = self._obs()
            if obs is not None and settle_span is not None:
                obs.end(settle_span)
                obs.metrics.histogram(
                    "adapt.settle_latency", edges=(0.1, 0.5, 1.0, 2.0, 5.0)
                ).observe(self.rt.sim.now - now)
            self._reschedule(fresh, exclude=set(), cause=cause)

        self.rt.sim.schedule_callback(delay, decide)

    def _measured_point(self, estimates: Dict[str, float]) -> ResourcePoint:
        """Fill unmeasured dimensions from the last decision's point."""
        base = dict(self.current_decision.point) if self.current_decision else {}
        base.update(estimates)
        return ResourcePoint(
            {d: base[d] for d in self.scheduler.db.resource_dims if d in base}
        )

    def _reschedule(
        self,
        estimates: Dict[str, float],
        exclude: Set[Configuration],
        depth: int = 0,
        cause: Optional[int] = None,
    ) -> None:
        assert self.rt is not None and self.steering is not None
        now = self.rt.sim.now
        obs = self._obs()
        if obs is not None:
            self.scheduler.obs = obs
        if depth >= self.max_negotiation_depth:
            # Negotiation exhausted: a pathological database could otherwise
            # recurse through every configuration on a single violation.
            self.events.append(AdaptationEvent(time=now, kind="no-candidate"))
            if obs is not None:
                obs.instant(
                    "sched.no-candidate", cat="adapt", parent=cause,
                    reason="negotiation-exhausted", depth=depth,
                )
            return
        point = self._measured_point(estimates)
        decision = self.scheduler.select(point, exclude=exclude)
        if decision is None:
            self.events.append(AdaptationEvent(time=now, kind="no-candidate"))
            if obs is not None:
                obs.instant(
                    "sched.no-candidate", cat="adapt", parent=cause,
                    reason="no-feasible-config", depth=depth,
                )
            return
        self.events.append(
            AdaptationEvent(time=now, kind="decision", config=decision.config)
        )
        decision_id = None
        if obs is not None:
            decision_id = obs.instant(
                "sched.decision", cat="adapt", parent=cause,
                config=decision.config.label(), depth=depth,
                point=decision.point.label(),
            )
            obs.metrics.counter("adapt.decisions").inc()
            obs.metrics.histogram(
                "adapt.negotiation_depth", edges=(0, 1, 2, 4, 8)
            ).observe(depth)
        if decision.config == self.rt.controls.current:
            # Same configuration remains best; just refresh the validity
            # region so the monitor re-arms around the new conditions.
            self.current_decision = decision
            self.monitor.retarget(conditions=decision.conditions)
            return

        inflight = self._inflight
        if inflight is not None and not inflight["done"]:
            if inflight["config"] == decision.config:
                # An identical request is already awaiting its ack;
                # re-posting it would only supersede itself.
                return
            # Replacing the in-flight request with a newer decision: its
            # failure echo must not be mistaken for an app rejection.
            inflight["superseded"] = True
        token = {"config": decision.config, "done": False, "superseded": False}
        self._inflight = token

        timed_out = [False]
        message = ControlMessage(
            decision=decision, cause=decision_id
        )

        def on_timeout(decision=decision) -> None:
            timed_out[0] = True
            self.events.append(
                AdaptationEvent(
                    time=self.rt.sim.now,
                    kind="steering-timeout",
                    config=decision.config,
                )
            )
            obs = self._obs()
            if obs is not None:
                obs.instant(
                    "adapt.steering-timeout", cat="adapt",
                    parent=message.span if message.span is not None else decision_id,
                    config=decision.config.label(),
                )

        def on_applied(ok: bool, decision=decision, exclude=exclude) -> None:
            t = self.rt.sim.now
            token["done"] = True
            obs = self._obs()
            link = message.span if message.span is not None else decision_id
            if ok:
                self.current_decision = decision
                self.events.append(
                    AdaptationEvent(time=t, kind="applied", config=decision.config)
                )
                if obs is not None:
                    obs.instant(
                        "adapt.applied", cat="adapt", parent=link,
                        config=decision.config.label(),
                    )
                    obs.metrics.counter("adapt.applied").inc()
                self.monitor.retarget(
                    watch=self._watch_list(decision.config),
                    conditions=decision.conditions,
                )
            elif timed_out[0]:
                # The application is stalled (crash/partition), not refusing
                # this particular configuration: negotiating an alternative
                # would just queue more doomed handshakes.  The watchdog or
                # the next violation re-triggers adaptation once the world
                # changes.
                return
            elif token["superseded"]:
                # We replaced this request with a newer decision ourselves;
                # the newer message's callbacks own the outcome.
                return
            else:
                self.events.append(
                    AdaptationEvent(time=t, kind="rejected", config=decision.config)
                )
                rejected_id = None
                if obs is not None:
                    rejected_id = obs.instant(
                        "adapt.rejected", cat="adapt", parent=link,
                        config=decision.config.label(),
                    )
                    obs.metrics.counter("adapt.rejected").inc()
                # Negotiation: ask for the next best configuration.
                self._reschedule(
                    dict(decision.point),
                    exclude=exclude | {decision.config},
                    depth=depth + 1,
                    cause=rejected_id,
                )

        message.on_applied = on_applied
        message.on_timeout = on_timeout
        self.steering.deliver(message)

    # -- forced steering (brownout) -------------------------------------------
    def force_config(self, config: Configuration, reason: str = "brownout-enter") -> None:
        """Steer directly to ``config``, bypassing the scheduler, and pin it.

        Used by the brownout controller: under sustained overload the best
        move is a *known cheaper* configuration, not whatever the database
        predicts from (overload-polluted) estimates.  While pinned, monitor
        violations are suppressed; :meth:`resume_normal` lifts the pin.
        """
        assert self.rt is not None and self.steering is not None
        assert self.current_decision is not None
        now = self.rt.sim.now
        self._pinned = True
        self.events.append(AdaptationEvent(time=now, kind=reason, config=config))
        obs = self._obs()
        cause = None
        if obs is not None:
            cause = obs.instant(
                f"recovery.{reason}", cat="recovery", config=config.label()
            )
            obs.metrics.counter("recovery.forced_switches").inc()
        if config == self.rt.controls.current:
            return
        base = self.current_decision
        decision = Decision(
            config=config,
            predicted={},
            constraint=base.constraint,
            constraint_index=base.constraint_index,
            point=base.point,
            conditions={},
        )
        inflight = self._inflight
        if inflight is not None and not inflight["done"]:
            inflight["superseded"] = True
        token = {"config": config, "done": False, "superseded": False}
        self._inflight = token
        message = ControlMessage(decision=decision, cause=cause)

        def on_applied(ok: bool) -> None:
            token["done"] = True
            if not ok:
                return
            self.current_decision = decision
            self.events.append(
                AdaptationEvent(
                    time=self.rt.sim.now, kind="applied", config=config
                )
            )
            obs = self._obs()
            if obs is not None:
                obs.instant(
                    "adapt.applied", cat="adapt", parent=cause,
                    config=config.label(),
                )
                obs.metrics.counter("adapt.applied").inc()
            # Empty conditions: nothing to violate while pinned.
            self.monitor.retarget(
                watch=self._watch_list(config), conditions={}
            )

        message.on_applied = on_applied
        self.steering.deliver(message)

    def resume_normal(self, reason: str = "brownout-exit") -> None:
        """Lift a forced-configuration pin and re-run normal selection."""
        assert self.rt is not None
        if not self._pinned:
            return
        self._pinned = False
        now = self.rt.sim.now
        self.events.append(AdaptationEvent(time=now, kind=reason))
        obs = self._obs()
        cause = None
        if obs is not None:
            cause = obs.instant(f"recovery.{reason}", cat="recovery")
        self._reschedule(self._global_estimates(), exclude=set(), cause=cause)

    # -- checkpoint/restore ----------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-data state for warm restart and failover replication.

        Covers the decision (reconstructable: the constraint is referenced
        by preference-list index), lost-peer set, and the monitor's state.
        The event log is observational and stays with the instance.
        """
        d = self.current_decision
        decision_state = None
        if d is not None:
            decision_state = {
                "values": dict(d.config),
                "predicted": dict(d.predicted),
                "constraint_index": d.constraint_index,
                "point": dict(d.point),
                "conditions": {r: list(b) for r, b in d.conditions.items()},
            }
        return {
            "decision": decision_state,
            "lost_peers": sorted(self.lost_peers),
            "pinned": self._pinned,
            "monitor": (
                self.monitor.snapshot() if self.monitor is not None else None
            ),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Adopt checkpointed state; call before :meth:`attach`.

        The monitor part is deferred: attach() creates the fresh
        MonitoringAgent and applies it there.
        """
        d = state.get("decision")
        if d is not None:
            constraints = list(self.scheduler.preference)
            idx = int(d["constraint_index"])
            self.current_decision = Decision(
                config=Configuration(dict(d["values"])),
                predicted=dict(d["predicted"]),
                constraint=constraints[idx],
                constraint_index=idx,
                point=ResourcePoint(dict(d["point"])),
                conditions={
                    r: (b[0], b[1]) for r, b in dict(d["conditions"]).items()
                },
            )
        self.lost_peers = set(state.get("lost_peers", ()))
        self._pinned = bool(state.get("pinned", False))
        self._pending_monitor_state = state.get("monitor")

    # -- introspection ---------------------------------------------------------
    @property
    def switch_times(self) -> List[Tuple[float, Configuration]]:
        return [(e.time, e.config) for e in self.events if e.kind == "applied"]
