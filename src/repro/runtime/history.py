"""History windows for the monitoring agent's raw-data processing.

"The monitoring agent runs periodically (every 10 ms) and processes raw
data within a history window."
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

__all__ = ["HistoryWindow", "EWMA"]


class HistoryWindow:
    """Time-windowed scalar samples with mean/min/max/last queries."""

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.window = float(window)
        self._samples: Deque[Tuple[float, float]] = deque()

    def record(self, time: float, value: float) -> None:
        if self._samples and time < self._samples[-1][0] - 1e-12:
            raise ValueError("samples must arrive in time order")
        self._samples.append((time, value))
        self._trim(time)

    def _trim(self, now: float) -> None:
        cutoff = now - self.window
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def empty(self) -> bool:
        return not self._samples

    def last(self) -> Optional[float]:
        return self._samples[-1][1] if self._samples else None

    def mean(self) -> Optional[float]:
        if not self._samples:
            return None
        return sum(v for _, v in self._samples) / len(self._samples)

    def minimum(self) -> Optional[float]:
        return min((v for _, v in self._samples), default=None)

    def maximum(self) -> Optional[float]:
        return max((v for _, v in self._samples), default=None)

    def clear(self) -> None:
        self._samples.clear()


class EWMA:
    """Exponentially weighted moving average (alpha per update)."""

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = float(alpha)
        self._value: Optional[float] = None

    def update(self, sample: float) -> float:
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.alpha * (sample - self._value)
        return self._value

    @property
    def value(self) -> Optional[float]:
        return self._value

    def reset(self) -> None:
        self._value = None
