"""Run-time application adaptation: monitoring, scheduling, steering."""

from .admission import AdmissionController, AdmissionError, Reservation
from .controller import AdaptationController, AdaptationEvent
from .exchange import EstimateUpdate, MonitorExchange
from .history import EWMA, HistoryWindow
from .monitor import MonitoringAgent, SystemMonitor
from .preferences import Constraint, Objective, UserPreference
from .scheduler import Decision, ResourceScheduler, SchedulerError
from .steering import ControlMessage, SteeringAgent
from .system_scheduler import Placement, PlacementError, SystemScheduler

__all__ = [
    "HistoryWindow",
    "EWMA",
    "MonitoringAgent",
    "SystemMonitor",
    "Objective",
    "Constraint",
    "UserPreference",
    "ResourceScheduler",
    "Decision",
    "SchedulerError",
    "AdmissionController",
    "AdmissionError",
    "Reservation",
    "SteeringAgent",
    "ControlMessage",
    "AdaptationController",
    "AdaptationEvent",
    "MonitorExchange",
    "EstimateUpdate",
    "SystemScheduler",
    "Placement",
    "PlacementError",
]
