"""The monitoring agent (Section 6.1).

Runs as a periodic process beside the application (default every 10 ms, as
in the paper), estimating the fraction of each relevant resource actually
available to the application:

- **cpu**: allotted CPU work vs. wall-clock time, *factoring in periods
  where the application is waiting* (the sandbox's runnable-time
  accounting);
- **network**: observed effective rate of recent transfers (bytes over
  transfer duration, which includes any shaping the environment applies);
- **memory**: resident-limit fraction of the sandbox's allocated pages.

The agent is configuration-specific: it watches only the resources the
active configuration's execution path uses (the preprocessor's
:class:`~repro.tunable.MonitoringPlan`), and it notifies the scheduler only
when an estimate leaves the current decision's validity region.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from ..sandbox import Sandbox
from ..sim import Process, Simulator
from ..tunable import AppRuntime
from .history import HistoryWindow

__all__ = ["SystemMonitor", "MonitoringAgent"]


class SystemMonitor:
    """System-wide resource capacity registry.

    "...relying on a system-wide monitor to provide information about
    maximum capacities of system resources (CPU speed, physical memory
    pages, network bandwidth, etc.)."
    """

    def __init__(self) -> None:
        self._capacities: Dict[str, float] = {}

    def register(self, resource: str, capacity: float) -> None:
        self._capacities[resource] = float(capacity)

    def capacity(self, resource: str) -> float:
        try:
            return self._capacities[resource]
        except KeyError:
            raise KeyError(f"no registered capacity for {resource!r}") from None

    @staticmethod
    def from_runtime(rt: AppRuntime) -> "SystemMonitor":
        """Capacities of every host the application runs on."""
        monitor = SystemMonitor()
        for host_name, sandbox in rt.sandboxes.items():
            host = sandbox.host
            monitor.register(f"{host_name}.cpu", host.cpu.speed)
            monitor.register(f"{host_name}.memory", float(host.memory.total_pages))
            monitor.register(f"{host_name}.disk", host.disk.bandwidth)
            # Network capacity: the fastest outbound link of the host.
            best_bw = 0.0
            if host.network is not None:
                for (a, _b), link in host.network._links.items():
                    if a == host_name:
                        best_bw = max(best_bw, link.bandwidth)
            monitor.register(f"{host_name}.network", best_bw)
        return monitor


class MonitoringAgent:
    """Application-specific periodic resource-availability estimation."""

    def __init__(
        self,
        rt: AppRuntime,
        watch: List[str],
        period: float = 0.010,
        window: float = 0.5,
        hysteresis: float = 0.05,
        cooldown: float = 0.5,
        on_violation: Optional[Callable[[Dict[str, float]], None]] = None,
        crowd=None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.rt = rt
        self.sim: Simulator = rt.sim
        self.watch = list(watch)
        self.period = float(period)
        self.window = float(window)
        #: Relative margin the estimate must cross beyond the validity bound
        #: before a violation fires (suppresses noise-induced thrash).
        self.hysteresis = float(hysteresis)
        #: Minimum time between violation notifications.
        self.cooldown = float(cooldown)
        self.on_violation = on_violation
        #: Messages smaller than this do not contribute bandwidth samples.
        self.min_sample_bytes = 4096.0
        #: Optional :class:`repro.crowd.CrowdSource` whose columnar tallies
        #: back ``crowd.<class>.{qos,rate,inflight}`` watch entries.
        self.crowd = crowd
        self.system = SystemMonitor.from_runtime(rt)

        #: resource -> (lo, hi) validity bounds from the current decision.
        self.conditions: Dict[str, Tuple[float, float]] = {}
        self._histories: Dict[str, HistoryWindow] = {
            r: HistoryWindow(window) for r in self.watch
        }
        self._cpu_anchor: Dict[str, Tuple[float, float]] = {}
        self._crowd_anchor: Dict[str, Tuple[float, float, float]] = {}
        self._net_seen: Dict[str, int] = {}
        self._last_trigger = -float("inf")
        self._stopped = False
        self.violations = 0
        self.process: Optional[Process] = None
        #: Cached (recorder, samples-counter) pair for the hot _run loop.
        self._obs_seen = None
        self._samples_counter = None

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "MonitoringAgent":
        self.process = self.sim.process(self._run(), name="monitoring-agent")
        if self.rt.finished is not None and self.rt.finished.callbacks is not None:
            self.rt.finished.callbacks.append(lambda _e: self.stop())
        return self

    def stop(self) -> None:
        self._stopped = True

    def retarget(
        self,
        watch: Optional[List[str]] = None,
        conditions: Optional[Dict[str, Tuple[float, float]]] = None,
    ) -> None:
        """Customize the agent to a new active configuration/decision."""
        if watch is not None:
            self.watch = list(watch)
            for r in self.watch:
                self._histories.setdefault(r, HistoryWindow(self.window))
        if conditions is not None:
            self.conditions = dict(conditions)

    # -- checkpoint/restore ----------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-data state for a warm restart (see repro.recovery).

        The histories are the valuable part: a cold agent needs several
        sample periods (and, for bandwidth, a completed large transfer)
        before ``estimates()`` says anything, while a restored agent can
        answer immediately — that gap is exactly the warm-vs-cold MTTR
        difference the recovery benchmark measures.
        """
        return {
            "watch": list(self.watch),
            "conditions": {r: list(b) for r, b in self.conditions.items()},
            "histories": {
                r: [list(s) for s in h._samples]
                for r, h in sorted(self._histories.items())
            },
            "cpu_anchor": {r: list(a) for r, a in self._cpu_anchor.items()},
            "crowd_anchor": {r: list(a) for r, a in self._crowd_anchor.items()},
            "net_seen": dict(self._net_seen),
            "last_trigger": self._last_trigger,
            "violations": self.violations,
        }

    def restore(self, state: Dict[str, object]) -> None:
        self.watch = list(state.get("watch", self.watch))
        self.conditions = {
            r: (b[0], b[1]) for r, b in dict(state.get("conditions", {})).items()
        }
        self._histories = {}
        for r, samples in dict(state.get("histories", {})).items():
            hist = HistoryWindow(self.window)
            for t, v in samples:
                hist.record(t, v)
            self._histories[r] = hist
        for r in self.watch:
            self._histories.setdefault(r, HistoryWindow(self.window))
        self._cpu_anchor = {
            r: (a[0], a[1]) for r, a in dict(state.get("cpu_anchor", {})).items()
        }
        self._crowd_anchor = {
            r: tuple(a) for r, a in dict(state.get("crowd_anchor", {})).items()
        }
        self._net_seen = dict(state.get("net_seen", {}))
        self._last_trigger = state.get("last_trigger", -float("inf"))
        self.violations = int(state.get("violations", 0))

    # -- estimation ------------------------------------------------------------
    def estimates(self) -> Dict[str, float]:
        """Latest windowed availability estimate per watched resource."""
        out = {}
        for resource in self.watch:
            hist = self._histories.get(resource)
            if hist is not None and not hist.empty:
                out[resource] = hist.mean()
        return out

    def _sample(self) -> None:
        now = self.sim.now
        crowd_stats = None
        for resource in self.watch:
            host, _, kind = resource.partition(".")
            if host == "crowd":
                if self.crowd is None:
                    continue
                if crowd_stats is None:  # one columnar snapshot per period
                    crowd_stats = self.crowd.stats()
                self._sample_crowd(resource, crowd_stats, now)
                continue
            sandbox = self.rt.sandboxes.get(host)
            if sandbox is None:
                continue
            if kind == "cpu":
                self._sample_cpu(resource, sandbox, now)
            elif kind == "network":
                self._sample_network(resource, sandbox)
            elif kind == "memory":
                self._sample_memory(resource, sandbox, now)
            elif kind == "disk":
                self._sample_disk(resource, sandbox)

    def _sample_crowd(self, resource: str, stats: Dict, now: float) -> None:
        """Estimates from a CrowdSource's cumulative per-class tallies.

        ``crowd.<class>.qos`` is the satisfaction fraction of outcomes
        resolved since the previous sample, ``crowd.<class>.rate`` the
        realized issue rate (req/s), and ``crowd.<class>.inflight`` the
        instantaneous outstanding-request count.  All three are pure
        reads of columnar state — sampling never perturbs the crowd.
        """
        cls, _, kind = resource[len("crowd."):].partition(".")
        row = stats.get(cls)
        if row is None:
            return
        if kind == "inflight":
            self._histories[resource].record(now, float(row["inflight"]))
            return
        anchor = self._crowd_anchor.get(resource)
        cur = (float(row["satisfied"]), float(row["violated"]), float(row["issued"]))
        self._crowd_anchor[resource] = cur
        if anchor is None:
            return
        if kind == "qos":
            resolved = (cur[0] - anchor[0]) + (cur[1] - anchor[1])
            if resolved <= 0:
                return  # nothing resolved this period: no signal
            self._histories[resource].record(now, (cur[0] - anchor[0]) / resolved)
        elif kind == "rate":
            self._histories[resource].record(now, (cur[2] - anchor[2]) / self.period)

    def _sample_cpu(self, resource: str, sandbox: Sandbox, now: float) -> None:
        consumed = sandbox.cpu_consumed()
        runnable = sandbox.runnable_time()
        anchor = self._cpu_anchor.get(resource)
        self._cpu_anchor[resource] = (consumed, runnable)
        if anchor is None:
            return
        d_consumed = consumed - anchor[0]
        d_runnable = runnable - anchor[1]
        if d_runnable <= 1e-9:
            return  # app was blocked the whole interval: no signal
        speed = self.system.capacity(resource)
        if speed <= 0:
            return
        share = min(1.0, d_consumed / (speed * d_runnable))
        self._histories[resource].record(now, share)

    def _sample_network(self, resource: str, sandbox: Sandbox) -> None:
        """Effective bandwidth from transfers finished since the last tick.

        Packet-train estimator: for back-to-back deliveries the meaningful
        interval is the time since the *previous* delivery (the pipe drains
        continuously), not this message's own queueing delay — otherwise
        backlog debt is double-counted and the estimate biases low.
        """
        for direction, log in (("recv", sandbox.recv_log), ("send", sandbox.send_log)):
            key = f"{resource}:{direction}"
            seen = self._net_seen.get(key, 0)
            # The sandbox trims its bounded log from the front; ``seen`` is
            # an absolute index, so re-anchor it past whatever was dropped.
            dropped = getattr(sandbox, f"{direction}_log_dropped", 0)
            start_idx = max(0, seen - dropped)
            prev_end = log[start_idx - 1][1] if start_idx > 0 else float("-inf")
            for start, end, size in log[start_idx:]:
                duration = end - max(start, prev_end)
                # Skip control-sized messages: their timing is dominated by
                # per-message latency, not bandwidth.
                if duration > 1e-9 and size >= self.min_sample_bytes:
                    self._histories[resource].record(end, size / duration)
                prev_end = end
            self._net_seen[key] = dropped + len(log)

    def _sample_disk(self, resource: str, sandbox: Sandbox) -> None:
        """Effective disk bandwidth from completed operations."""
        key = f"{resource}:ops"
        seen = self._net_seen.get(key, 0)
        log = sandbox.disk_log
        dropped = getattr(sandbox, "disk_log_dropped", 0)
        start_idx = max(0, seen - dropped)
        prev_end = log[start_idx - 1][1] if start_idx > 0 else float("-inf")
        for start, end, size in log[start_idx:]:
            duration = end - max(start, prev_end)
            if duration > 1e-9 and size >= self.min_sample_bytes:
                self._histories[resource].record(end, size / duration)
            prev_end = end
        self._net_seen[key] = dropped + len(log)

    def _sample_memory(self, resource: str, sandbox: Sandbox, now: float) -> None:
        space = sandbox.mem_space
        if space is None or space.allocated_pages == 0:
            return
        self._histories[resource].record(
            now, float(space.resident_limit)
        )

    # -- violation detection ----------------------------------------------------
    def _check_conditions(self) -> Optional[Dict[str, float]]:
        estimates = self.estimates()
        for resource, (lo, hi) in self.conditions.items():
            est = estimates.get(resource)
            if est is None:
                continue
            # True hysteresis: the estimate must cross the bound by the
            # margin before we bother the scheduler.
            lo_margin = self.hysteresis * max(abs(lo), 1e-12)
            hi_margin = self.hysteresis * max(abs(hi), 1e-12)
            if (math.isfinite(lo) and est < lo - lo_margin) or (
                math.isfinite(hi) and est > hi + hi_margin
            ):
                return estimates
        return None

    def _run(self):
        while not self._stopped:
            yield self.sim.timeout(self.period)
            if self._stopped:
                return
            self._sample()
            obs = self.sim.obs
            if obs is not None:
                # Cache the counter per bound recorder: this loop runs once
                # per monitor period, so the registry lookup is hot.
                if obs is not self._obs_seen:
                    self._obs_seen = obs
                    self._samples_counter = obs.metrics.counter("monitor.samples")
                self._samples_counter.inc()
            if self.on_violation is None or not self.conditions:
                continue
            if self.sim.now - self._last_trigger < self.cooldown:
                continue
            violation = self._check_conditions()
            if violation is not None:
                self.violations += 1
                self._last_trigger = self.sim.now
                if obs is not None:
                    obs.metrics.counter("monitor.violations").inc()
                self.on_violation(violation)
