"""The resource scheduler (Section 6.2).

Given the performance database, measured resource characteristics, and the
user preference list, the scheduler

1. prunes candidate configurations to those whose predicted quality metrics
   satisfy the active constraint's value ranges at the measured resource
   point (interpolating — or, in ``nearest`` mode, using the discrete best
   database match, which is what the paper's implementation did);
2. of the survivors, picks the one optimizing the objective;
3. on failure, falls through to the next preferred constraint;
4. computes the *validity region* — the range of each monitored resource
   within which the decision stands (constraints keep holding and the
   choice stays near-optimal).  The monitoring agent triggers the scheduler
   again exactly when measurements leave this region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..profiling import PerformanceDatabase, ResourcePoint
from ..tunable import Configuration
from .preferences import Constraint, UserPreference

__all__ = ["Decision", "ResourceScheduler", "SchedulerError"]


class SchedulerError(Exception):
    """Raised on scheduler misconfiguration."""


@dataclass
class Decision:
    """Outcome of one scheduling pass."""

    config: Configuration
    predicted: Dict[str, float]
    constraint: Constraint
    constraint_index: int
    point: ResourcePoint
    #: dim name -> (lo, hi): the region in which this decision stays valid.
    conditions: Dict[str, Tuple[float, float]] = field(default_factory=dict)


class ResourceScheduler:
    """Configuration selection against the performance database."""

    def __init__(
        self,
        db: PerformanceDatabase,
        preference: UserPreference,
        mode: str = "interpolate",
        optimality_slack: float = 0.1,
        candidates: Optional[Sequence[Configuration]] = None,
    ):
        if mode not in ("interpolate", "nearest"):
            raise SchedulerError(f"mode must be interpolate/nearest, got {mode!r}")
        self.db = db
        self.preference = preference
        self.mode = mode
        #: Relative slack on "still optimal" when computing validity regions
        #: (prevents thrash between near-tied configurations).
        self.optimality_slack = float(optimality_slack)
        self.candidates: List[Configuration] = (
            list(candidates) if candidates is not None else db.configurations()
        )
        if not self.candidates:
            raise SchedulerError("no candidate configurations")
        #: Log of every decision made (experiment introspection).
        self.decisions: List[Decision] = []
        #: Observability hook: a :class:`repro.obs.TraceRecorder`, or None.
        #: The scheduler is simulator-free, so it cannot discover the
        #: recorder through ``sim.obs`` itself — the adaptation controller
        #: (or experiment harness) injects it here.
        self.obs = None

    # -- prediction ---------------------------------------------------------
    def predict(self, config: Configuration, point: ResourcePoint) -> Dict[str, float]:
        if self.mode == "interpolate":
            return self.db.predict(config, point)
        return dict(self.db.lookup_nearest(config, point).metrics)

    # -- selection -----------------------------------------------------------
    def select(
        self,
        point: ResourcePoint,
        exclude: Set[Configuration] = frozenset(),
    ) -> Optional[Decision]:
        """Pick the best feasible configuration at ``point``.

        Walks the preference list in order; returns None when no candidate
        satisfies any constraint level (caller decides the fallback).
        """
        if self.obs is not None:
            self.obs.metrics.counter("sched.selects").inc()
        for idx, constraint in enumerate(self.preference):
            best: Optional[Tuple[float, Configuration, Dict[str, float]]] = None
            for config in self.candidates:
                if config in exclude:
                    continue
                predicted = self.predict(config, point)
                if not constraint.satisfied_by(predicted):
                    continue
                value = predicted.get(constraint.objective.metric)
                if value is None:
                    continue
                score = constraint.objective.score(value)
                if best is None or score > best[0]:
                    best = (score, config, predicted)
            if best is not None:
                _, config, predicted = best
                decision = Decision(
                    config=config,
                    predicted=predicted,
                    constraint=constraint,
                    constraint_index=idx,
                    point=point,
                    conditions=self._validity_region(config, constraint, point, exclude),
                )
                self.decisions.append(decision)
                if self.obs is not None:
                    self.obs.instant(
                        "sched.select", cat="sched",
                        config=config.label(), point=point.label(),
                        constraint=idx, excluded=len(exclude),
                    )
                return decision
        if self.obs is not None:
            self.obs.instant(
                "sched.select", cat="sched", config=None,
                point=point.label(), excluded=len(exclude),
            )
        return None

    # -- validity regions -------------------------------------------------------
    def _candidate_levels(self, dim: str) -> List[float]:
        levels: Set[float] = set()
        for config in self.candidates:
            for p in self.db.points_for(config):
                levels.add(p[dim])
        return sorted(levels)

    def _acceptable_at(
        self,
        config: Configuration,
        constraint: Constraint,
        point: ResourcePoint,
        exclude: Set[Configuration],
    ) -> bool:
        """Constraints hold AND config is within slack of the best choice."""
        predicted = self.predict(config, point)
        if not constraint.satisfied_by(predicted):
            return False
        value = predicted.get(constraint.objective.metric)
        if value is None:
            return False
        best_value: Optional[float] = None
        for other in self.candidates:
            if other in exclude:
                continue
            other_pred = self.predict(other, point)
            if not constraint.satisfied_by(other_pred):
                continue
            other_value = other_pred.get(constraint.objective.metric)
            if other_value is None:
                continue
            if best_value is None or constraint.objective.better(other_value, best_value):
                best_value = other_value
        if best_value is None:
            return False
        slack = self.optimality_slack * max(abs(best_value), 1e-12)
        if constraint.objective.direction == "minimize":
            return value <= best_value + slack
        return value >= best_value - slack

    def _validity_region(
        self,
        config: Configuration,
        constraint: Constraint,
        point: ResourcePoint,
        exclude: Set[Configuration],
    ) -> Dict[str, Tuple[float, float]]:
        """Per-dimension interval around ``point`` where the choice stands.

        Scans the database's sampled levels of each dimension (others pinned
        at the measured point) outward from the current value until the
        configuration stops being acceptable; the bound is placed at the
        midpoint between the last acceptable and first unacceptable level —
        the natural decision boundary between the two samples.
        """
        region: Dict[str, Tuple[float, float]] = {}
        for dim in self.db.resource_dims:
            current = point[dim]
            levels = self._candidate_levels(dim)
            if not levels:
                region[dim] = (-np.inf, np.inf)
                continue
            lo, hi = -np.inf, np.inf
            below = [v for v in levels if v < current]
            above = [v for v in levels if v > current]
            last_ok = current
            for v in reversed(below):
                if self._acceptable_at(
                    config, constraint, point.with_(**{dim: v}), exclude
                ):
                    last_ok = v
                    continue
                lo = 0.5 * (last_ok + v)
                break
            last_ok = current
            for v in above:
                if self._acceptable_at(
                    config, constraint, point.with_(**{dim: v}), exclude
                ):
                    last_ok = v
                    continue
                hi = 0.5 * (last_ok + v)
                break
            region[dim] = (lo, hi)
        return region
