"""Distributed monitoring: estimate exchange between application instances.

Section 6.1: the monitoring agent's resource-availability estimate "is
supplied to the resource scheduler *and other monitoring agents in remote
instances of this application*", and notifications go out "only when
resource availability falls out of a range".

A :class:`MonitorExchange` wires the monitoring agents of an application's
hosts together over the simulated network: each agent publishes its local
estimates to its peers when they change materially, so the scheduler (which
runs beside one of the agents) sees a global resource picture — e.g. the
client-side scheduler learns the server host's available CPU without
measuring it across the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..tunable import AppRuntime
from .monitor import MonitoringAgent

__all__ = ["MonitorExchange", "EstimateUpdate"]

_PORT = "monitor.exchange"


@dataclass(frozen=True)
class EstimateUpdate:
    """One published estimate: (origin host, resource, value, time)."""

    origin: str
    resource: str
    value: float
    time: float


class MonitorExchange:
    """Publishes one host's monitoring estimates to the app's other hosts.

    ``significance`` is the relative change that warrants a publication —
    the paper's "only when resource availability falls out of a range"
    filtering, applied to peer updates.
    """

    def __init__(
        self,
        rt: AppRuntime,
        agent: MonitoringAgent,
        host_name: str,
        peers: List[str],
        period: float = 0.25,
        significance: float = 0.10,
        message_bytes: float = 64.0,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.rt = rt
        self.agent = agent
        self.host_name = host_name
        self.peers = [p for p in peers if p != host_name]
        self.period = float(period)
        self.significance = float(significance)
        self.message_bytes = float(message_bytes)
        #: resource -> last published value.
        self._published: Dict[str, float] = {}
        #: estimates received from remote agents: resource -> (value, time).
        self.remote_estimates: Dict[str, Tuple[float, float]] = {}
        self.updates_sent = 0
        self.updates_received = 0
        self._stopped = False
        self.sim = rt.sim

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "MonitorExchange":
        self.sim.process(self._publisher(), name=f"exchange-pub@{self.host_name}")
        self.sim.process(self._receiver(), name=f"exchange-recv@{self.host_name}")
        if self.rt.finished is not None and self.rt.finished.callbacks is not None:
            self.rt.finished.callbacks.append(lambda _e: self.stop())
        return self

    def stop(self) -> None:
        self._stopped = True

    # -- global view ------------------------------------------------------------
    def global_estimates(self) -> Dict[str, float]:
        """Local estimates merged with the freshest remote ones."""
        merged = {r: v for r, (v, _t) in self.remote_estimates.items()}
        merged.update(self.agent.estimates())
        return merged

    # -- internals ------------------------------------------------------------
    def _significant(self, resource: str, value: float) -> bool:
        last = self._published.get(resource)
        if last is None:
            return True
        scale = max(abs(last), 1e-12)
        return abs(value - last) / scale >= self.significance

    def _publisher(self):
        sandbox = self.rt.sandboxes.get(self.host_name)
        if sandbox is None:
            return
        while not self._stopped:
            yield self.sim.timeout(self.period)
            if self._stopped:
                return
            estimates = self.agent.estimates()
            changed = {
                r: v for r, v in estimates.items() if self._significant(r, v)
            }
            if not changed:
                continue
            for r, v in changed.items():
                self._published[r] = v
            updates = [
                EstimateUpdate(self.host_name, r, v, self.sim.now)
                for r, v in changed.items()
            ]
            for peer in self.peers:
                self.updates_sent += 1
                yield sandbox.send(
                    peer, _PORT, updates, size=self.message_bytes * len(updates)
                )

    def _receiver(self):
        sandbox = self.rt.sandboxes.get(self.host_name)
        if sandbox is None:
            return
        while not self._stopped:
            msg = yield sandbox.host.mailbox(_PORT).get()
            if self._stopped:
                return
            for update in msg.payload:
                self.updates_received += 1
                self.remote_estimates[update.resource] = (update.value, update.time)
