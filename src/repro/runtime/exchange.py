"""Distributed monitoring: estimate exchange between application instances.

Section 6.1: the monitoring agent's resource-availability estimate "is
supplied to the resource scheduler *and other monitoring agents in remote
instances of this application*", and notifications go out "only when
resource availability falls out of a range".

A :class:`MonitorExchange` wires the monitoring agents of an application's
hosts together over the simulated network: each agent publishes its local
estimates to its peers when they change materially, so the scheduler (which
runs beside one of the agents) sees a global resource picture — e.g. the
client-side scheduler learns the server host's available CPU without
measuring it across the network.

Partition tolerance: remote estimates age.  With ``stale_after`` set, an
estimate older than that TTL is excluded from :meth:`global_estimates`, so
during a partition the exchange degrades to a conservative local-only view
instead of steering decisions off a frozen snapshot of the peer.  Per-peer
last-contact times (:attr:`peer_last_seen`) feed the adaptation
controller's liveness watchdog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim import Interrupt, Process, StoreGet
from ..tunable import AppRuntime
from .monitor import MonitoringAgent

__all__ = ["MonitorExchange", "EstimateUpdate"]

_PORT = "monitor.exchange"


@dataclass(frozen=True)
class EstimateUpdate:
    """One published estimate: (origin host, resource, value, time)."""

    origin: str
    resource: str
    value: float
    time: float


class MonitorExchange:
    """Publishes one host's monitoring estimates to the app's other hosts.

    ``significance`` is the relative change that warrants a publication —
    the paper's "only when resource availability falls out of a range"
    filtering, applied to peer updates.  ``stale_after`` is the TTL beyond
    which a remote estimate no longer contributes to the global view.
    """

    def __init__(
        self,
        rt: AppRuntime,
        agent: MonitoringAgent,
        host_name: str,
        peers: List[str],
        period: float = 0.25,
        significance: float = 0.10,
        message_bytes: float = 64.0,
        stale_after: Optional[float] = None,
        heartbeat_every: Optional[float] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if stale_after is not None and stale_after <= 0:
            raise ValueError(f"stale_after must be positive, got {stale_after!r}")
        if heartbeat_every is not None and heartbeat_every <= 0:
            raise ValueError(
                f"heartbeat_every must be positive, got {heartbeat_every!r}"
            )
        self.rt = rt
        self.agent = agent
        self.host_name = host_name
        self.peers = [p for p in peers if p != host_name]
        self.period = float(period)
        self.significance = float(significance)
        self.message_bytes = float(message_bytes)
        self.stale_after = stale_after
        #: With a value set, publish the full estimate vector at least this
        #: often even without significant change — a keepalive that lets
        #: peers (and the controller's watchdog) distinguish "nothing
        #: changed" from "host is dead".  None keeps the paper's pure
        #: publish-on-significant-change behavior.
        self.heartbeat_every = heartbeat_every
        #: resource -> last published value.
        self._published: Dict[str, float] = {}
        #: estimates received from remote agents: resource -> (value, time),
        #: where time is the *local receive* time used for TTL aging.
        self.remote_estimates: Dict[str, Tuple[float, float]] = {}
        #: origin host -> local time of the last update received from it.
        self.peer_last_seen: Dict[str, float] = {}
        self.updates_sent = 0
        self.updates_received = 0
        self.expired = 0
        self._stopped = False
        #: Set when our host comes back from a crash: the next publisher
        #: tick re-announces the full estimate vector regardless of the
        #: significance filter, so peers learn of the recovery exactly one
        #: period after restore — not whenever the next significant change
        #: or keepalive happens to land (which depended on process creation
        #: order).  See Host.restore_hooks.
        self._force_full = False
        self._recv_proc: Optional[Process] = None
        self._pub_proc: Optional[Process] = None
        self.sim = rt.sim

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "MonitorExchange":
        self._pub_proc = self.sim.process(
            self._publisher(), name=f"exchange-pub@{self.host_name}"
        )
        self._recv_proc = self.sim.process(
            self._receiver(), name=f"exchange-recv@{self.host_name}"
        )
        sandbox = self.rt.sandboxes.get(self.host_name)
        if sandbox is not None:
            sandbox.host.restore_hooks[f"exchange/{self.host_name}"] = (
                self._on_host_restore
            )
        if self.rt.finished is not None and self.rt.finished.callbacks is not None:
            self.rt.finished.callbacks.append(lambda _e: self.stop())
        return self

    def _on_host_restore(self) -> None:
        self._force_full = True

    def stop(self) -> None:
        """Stop publishing and *terminate* the receiver.

        The receiver is normally parked on ``mailbox.get()``; merely setting
        a flag would leave that process (and its mailbox waiter) alive
        forever — a leak that also swallows messages destined for any later
        exchange on the same port.  Interrupt the process and withdraw its
        pending get instead.
        """
        if self._stopped:
            return
        self._stopped = True
        sandbox = self.rt.sandboxes.get(self.host_name)
        if sandbox is not None:
            sandbox.host.restore_hooks.pop(f"exchange/{self.host_name}", None)
        for proc in (self._recv_proc, self._pub_proc):
            if (
                proc is None
                or not proc.is_alive
                or proc is self.sim.active_process
            ):
                continue
            target = proc.target
            proc.interrupt("exchange-stop")
            if isinstance(target, StoreGet):
                sandbox = self.rt.sandboxes.get(self.host_name)
                if sandbox is not None:
                    sandbox.host.mailbox(_PORT).cancel(target)

    # -- checkpoint/restore ----------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-data state for a warm restart (see repro.recovery)."""
        return {
            "published": dict(self._published),
            "remote": {r: list(v) for r, v in self.remote_estimates.items()},
            "peer_last_seen": dict(self.peer_last_seen),
        }

    def restore(self, state: Dict[str, object]) -> None:
        self._published = dict(state.get("published", {}))
        self.remote_estimates = {
            r: (v[0], v[1]) for r, v in dict(state.get("remote", {})).items()
        }
        self.peer_last_seen = dict(state.get("peer_last_seen", {}))

    # -- global view ------------------------------------------------------------
    def fresh_remote_estimates(self) -> Dict[str, float]:
        """Remote estimates younger than the TTL (all, when no TTL set)."""
        now = self.sim.now
        fresh = {}
        for resource, (value, received_at) in self.remote_estimates.items():
            if self.stale_after is not None and now - received_at > self.stale_after:
                continue
            fresh[resource] = value
        return fresh

    def global_estimates(self) -> Dict[str, float]:
        """Local estimates merged with the freshest (non-stale) remote ones.

        During a partition every remote entry eventually expires and this
        degrades to the local-only view — conservative by construction.
        """
        merged = self.fresh_remote_estimates()
        merged.update(self.agent.estimates())
        return merged

    def expire_stale(self) -> int:
        """Drop remote estimates older than the TTL; returns how many."""
        if self.stale_after is None:
            return 0
        now = self.sim.now
        stale = [
            r
            for r, (_v, received_at) in self.remote_estimates.items()
            if now - received_at > self.stale_after
        ]
        for r in stale:
            del self.remote_estimates[r]
        self.expired += len(stale)
        if stale:
            obs = self.sim.obs
            if obs is not None:
                obs.metrics.counter("exchange.expired").inc(len(stale))
        return len(stale)

    # -- internals ------------------------------------------------------------
    def _significant(self, resource: str, value: float) -> bool:
        last = self._published.get(resource)
        if last is None:
            return True
        scale = max(abs(last), 1e-12)
        return abs(value - last) / scale >= self.significance

    def _publisher(self):
        sandbox = self.rt.sandboxes.get(self.host_name)
        if sandbox is None:
            return
        last_sent = self.sim.now
        try:
            while not self._stopped:
                yield self.sim.timeout(self.period)
                if self._stopped:
                    return
                estimates = self.agent.estimates()
                changed = {
                    r: v for r, v in estimates.items() if self._significant(r, v)
                }
                heartbeat_due = (
                    self.heartbeat_every is not None
                    and self.sim.now - last_sent >= self.heartbeat_every
                )
                force_full = self._force_full
                if force_full:
                    # Post-crash re-arm: announce the full vector now (an
                    # empty vector still proves liveness to the peer).
                    self._force_full = False
                    changed = dict(estimates)
                elif not changed and not heartbeat_due:
                    continue
                elif heartbeat_due and not changed:
                    changed = dict(estimates)  # keepalive: resend everything
                for r, v in changed.items():
                    self._published[r] = v
                last_sent = self.sim.now
                # Canonical wire order: the payload (and therefore the
                # receiver's table insertion order) must not depend on how
                # `changed` happened to be built.
                updates = [
                    EstimateUpdate(self.host_name, r, v, self.sim.now)
                    for r, v in sorted(changed.items())
                ]
                obs = self.sim.obs
                for peer in self.peers:
                    self.updates_sent += 1
                    if obs is not None:
                        obs.metrics.counter("exchange.updates_sent").inc()
                    yield sandbox.send(
                        peer, _PORT, updates,
                        size=max(self.message_bytes,
                                 self.message_bytes * len(updates)),
                    )
        except Interrupt:
            return

    def _receiver(self):
        sandbox = self.rt.sandboxes.get(self.host_name)
        if sandbox is None:
            return
        mailbox = sandbox.host.mailbox(_PORT)
        try:
            while not self._stopped:
                msg = yield mailbox.get()
                if self._stopped:
                    return
                # Even an empty heartbeat proves the sender is alive.
                self.peer_last_seen[msg.src] = self.sim.now
                obs = self.sim.obs
                if obs is not None:
                    obs.metrics.counter("exchange.updates_received").inc(
                        len(msg.payload)
                    )
                    # Depth *after* the pop: messages still backlogged
                    # behind this one (partition drain-out shows up here).
                    obs.metrics.histogram(
                        "exchange.mailbox_depth", edges=(0, 1, 2, 4, 8, 16)
                    ).observe(len(mailbox))
                for update in msg.payload:
                    self.updates_received += 1
                    self.remote_estimates[update.resource] = (
                        update.value,
                        self.sim.now,
                    )
        except Interrupt:
            return
