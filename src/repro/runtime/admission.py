"""Admission control and resource reservation (Section 6.2).

"...we can reserve a specific CPU share (as well as network bandwidth and
amount of physical memory) with simple admission control.  For example, the
application can be admitted if the total request for CPU share across all
applications is less than a certain threshold.  Once admitted, the
resource-constrained execution environment monitors and controls
application progress, assuring applications the required resource capacity
and sandboxing them so that they do not overuse resources."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..cluster import Host
from ..sandbox import ResourceLimits, Sandbox

__all__ = ["AdmissionController", "Reservation", "AdmissionError"]


class AdmissionError(Exception):
    """Raised when a reservation cannot be granted."""


@dataclass
class Reservation:
    """A granted allocation on one host, realized as a sandbox."""

    host: Host
    limits: ResourceLimits
    sandbox: Sandbox
    active: bool = True


class AdmissionController:
    """Threshold admission over CPU share, bandwidth, and memory per host."""

    def __init__(
        self,
        cpu_threshold: float = 0.95,
        bw_capacity: Optional[Mapping[str, float]] = None,
    ):
        if not 0.0 < cpu_threshold <= 1.0:
            raise ValueError(f"cpu_threshold must be in (0, 1], got {cpu_threshold!r}")
        self.cpu_threshold = float(cpu_threshold)
        #: Optional per-host outbound bandwidth capacity (bytes/s).
        self.bw_capacity: Dict[str, float] = dict(bw_capacity or {})
        self.reservations: List[Reservation] = []
        self.rejections = 0

    # -- accounting ------------------------------------------------------------
    def cpu_reserved(self, host: Host) -> float:
        return sum(
            r.limits.cpu_share or 0.0
            for r in self.reservations
            if r.active and r.host is host
        )

    def bw_reserved(self, host: Host) -> float:
        return sum(
            r.limits.net_bw or 0.0
            for r in self.reservations
            if r.active and r.host is host
        )

    def can_admit(self, host: Host, limits: ResourceLimits) -> bool:
        if limits.cpu_share is not None:
            if self.cpu_reserved(host) + limits.cpu_share > self.cpu_threshold + 1e-12:
                return False
        if limits.net_bw is not None and host.name in self.bw_capacity:
            if self.bw_reserved(host) + limits.net_bw > self.bw_capacity[host.name] + 1e-9:
                return False
        if limits.mem_pages is not None:
            if limits.mem_pages > host.memory.free_pages:
                return False
        return True

    # -- admission -----------------------------------------------------------
    def admit(
        self,
        host: Host,
        limits: ResourceLimits,
        name: str = "reserved",
        **sandbox_kwargs,
    ) -> Reservation:
        """Admit a request, creating the enforcing sandbox; raise if over
        threshold."""
        if not self.can_admit(host, limits):
            self.rejections += 1
            raise AdmissionError(
                f"host {host.name!r} cannot admit {limits} "
                f"(cpu reserved {self.cpu_reserved(host):.2f}, "
                f"threshold {self.cpu_threshold})"
            )
        sandbox = Sandbox(host, limits, name=name, **sandbox_kwargs)
        reservation = Reservation(host=host, limits=limits, sandbox=sandbox)
        self.reservations.append(reservation)
        return reservation

    def release(self, reservation: Reservation) -> None:
        if reservation.active:
            reservation.active = False
            reservation.sandbox.close()
