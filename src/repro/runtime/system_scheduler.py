"""System-wide scheduling of multiple competing tunable applications.

Section 6.2: "Scheduling distributed applications requires placing a set
of competing applications, each with multiple distributed instances, on a
collection of interconnected machines with the purpose of optimizing
application and system performance.  Scheduling tunable applications adds
another dimension ... the availability of multiple application
configurations increases the likelihood that application user preference
constraints will be satisfied over a range of resource situations."

The :class:`SystemScheduler` realizes the paper's approach for co-located
applications: every arriving application asks its per-app
:class:`~repro.runtime.ResourceScheduler` for configurations in preference
order, translates each candidate's resource needs into a reservation
request, and admits the first one that passes admission control.  Admitted
applications run inside enforcing sandboxes, so they cannot use more than
their share ("policing"); tunability lets later arrivals degrade to
configurations that still fit the leftover capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..cluster import Host
from ..profiling import ResourcePoint
from ..sandbox import ResourceLimits
from ..tunable import Configuration
from .admission import AdmissionController, AdmissionError, Reservation
from .scheduler import Decision, ResourceScheduler

__all__ = ["Placement", "SystemScheduler", "PlacementError"]


class PlacementError(Exception):
    """No configuration of the application fits the remaining capacity."""


@dataclass
class Placement:
    """An admitted application: its decision and its reservations."""

    app_name: str
    decision: Decision
    reservations: Dict[str, Reservation] = field(default_factory=dict)

    @property
    def config(self) -> Configuration:
        return self.decision.config

    def limits(self) -> Dict[str, ResourceLimits]:
        return {host: r.limits for host, r in self.reservations.items()}


class SystemScheduler:
    """Admission-controlled placement of tunable applications on hosts."""

    def __init__(
        self,
        hosts: Dict[str, Host],
        cpu_threshold: float = 0.95,
        bw_capacity: Optional[Dict[str, float]] = None,
    ):
        self.hosts = dict(hosts)
        self.admission = AdmissionController(
            cpu_threshold=cpu_threshold, bw_capacity=bw_capacity
        )
        self.placements: List[Placement] = []

    # -- capacity view ------------------------------------------------------
    def free_cpu(self, host_name: str) -> float:
        host = self.hosts[host_name]
        return self.admission.cpu_threshold - self.admission.cpu_reserved(host)

    def available_point(self, dims: List[str]) -> ResourcePoint:
        """Resource point describing what a new arrival could get.

        cpu dimensions report the unreserved share; network dimensions the
        unreserved bandwidth (when capacities are declared) or the fastest
        outbound link.
        """
        values = {}
        for dim in dims:
            host_name, _, kind = dim.partition(".")
            host = self.hosts[host_name]
            if kind == "cpu":
                values[dim] = max(0.01, self.free_cpu(host_name))
            elif kind == "network":
                cap = self.admission.bw_capacity.get(host_name)
                if cap is not None:
                    values[dim] = max(1.0, cap - self.admission.bw_reserved(host))
                else:
                    best = 0.0
                    if host.network is not None:
                        for (a, _b), link in host.network._links.items():
                            if a == host_name:
                                best = max(best, link.bandwidth)
                    values[dim] = best
            elif kind == "memory":
                values[dim] = float(host.memory.free_pages)
            elif kind == "disk":
                values[dim] = host.disk.bandwidth
        return ResourcePoint(values)

    # -- placement --------------------------------------------------------------
    def place(
        self,
        app_name: str,
        scheduler: ResourceScheduler,
        needs: Callable[[Decision], Dict[str, ResourceLimits]],
        sandbox_names: Optional[Dict[str, str]] = None,
    ) -> Placement:
        """Admit ``app_name`` with the best configuration that fits.

        ``needs(decision)`` translates a scheduling decision into per-host
        resource limits (how much the configuration must reserve).  The
        scheduler is consulted at the *currently available* resource point;
        configurations whose reservations fail admission are excluded and
        the scheduler is asked again — the negotiation loop of Section 6.3,
        driven by capacity rather than transition guards.
        """
        exclude = set()
        dims = scheduler.db.resource_dims
        while True:
            point = self.available_point(list(dims))
            decision = scheduler.select(point, exclude=exclude)
            if decision is None:
                raise PlacementError(
                    f"no configuration of {app_name!r} fits the remaining "
                    f"capacity at {point.label()}"
                )
            requested = needs(decision)
            granted: Dict[str, Reservation] = {}
            try:
                for host_name, limits in requested.items():
                    granted[host_name] = self.admission.admit(
                        self.hosts[host_name],
                        limits,
                        name=(sandbox_names or {}).get(
                            host_name, f"{app_name}.{host_name}"
                        ),
                    )
            except AdmissionError:
                for reservation in granted.values():
                    self.admission.release(reservation)
                exclude.add(decision.config)
                continue
            placement = Placement(
                app_name=app_name, decision=decision, reservations=granted
            )
            self.placements.append(placement)
            return placement

    def release(self, placement: Placement) -> None:
        for reservation in placement.reservations.values():
            self.admission.release(reservation)
        if placement in self.placements:
            self.placements.remove(placement)
