"""User preference constraints (Section 6).

"Each user preference constraint is expressed as value ranges on a subset
of output quality metrics and is accompanied with an objective function to
be optimized. ... Multiple user preference constraints can be specified.
The system examines them in decreasing order of preference."

Like the paper, the objective is restricted to maximizing or minimizing a
single quality metric (footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..tunable import MetricRange

__all__ = ["Objective", "Constraint", "UserPreference"]


@dataclass(frozen=True)
class Objective:
    """Optimize one metric in one direction."""

    metric: str
    direction: str = "minimize"

    def __post_init__(self) -> None:
        if self.direction not in ("minimize", "maximize"):
            raise ValueError(
                f"direction must be minimize/maximize, got {self.direction!r}"
            )

    def better(self, a: float, b: float) -> bool:
        """Is objective value ``a`` strictly better than ``b``?"""
        return a < b if self.direction == "minimize" else a > b

    def score(self, value: float) -> float:
        """Higher-is-better scalarization (for sorting)."""
        return -value if self.direction == "minimize" else value


@dataclass(frozen=True)
class Constraint:
    """One preference level: metric ranges + an objective."""

    objective: Objective
    ranges: Tuple[MetricRange, ...] = ()
    name: str = ""

    def satisfied_by(self, metrics: Dict[str, float]) -> bool:
        """Do predicted/observed ``metrics`` fall inside every range?"""
        for rng in self.ranges:
            value = metrics.get(rng.metric)
            if value is None or not rng.contains(value):
                return False
        return True


class UserPreference:
    """Ordered list of constraints, most preferred first."""

    def __init__(self, constraints: Sequence[Constraint]):
        if not constraints:
            raise ValueError("need at least one constraint")
        self.constraints: List[Constraint] = list(constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    @property
    def primary(self) -> Constraint:
        return self.constraints[0]

    @staticmethod
    def single(
        objective: Objective, ranges: Sequence[MetricRange] = (), name: str = ""
    ) -> "UserPreference":
        """Convenience constructor for the common one-level case."""
        return UserPreference([Constraint(objective, tuple(ranges), name)])
