"""A tunable video-streaming application (bonus workload).

The paper's introduction motivates adaptation with "a distributed
application conveying a video stream from a server to a client machine
[that] can respond to network bandwidth reduction by compressing the
stream or selectively dropping frames".  This app realizes that example
through the same framework as the visualization application, demonstrating
generality: control parameters are frame rate, quality (bytes per frame),
and compression; QoS metrics are delivered frame rate, mean frame lag, and
quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..codecs import get_codec
from ..tunable import (
    ConfigSpace,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    LinkComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TransitionSpec,
    TunableApp,
)

__all__ = [
    "make_streaming_app",
    "stream_server_session",
    "stream_client_session",
    "StreamWorkload",
    "QUALITY_BYTES",
]

FRAME_PORT = "stream.frames"
CTL_PORT = "stream.ctl"

#: Raw bytes per frame at each quality setting (QCIF-to-CIF-ish at 1 B/px).
QUALITY_BYTES = {"low": 25_000.0, "medium": 100_000.0, "high": 400_000.0}

#: Effective wire-compression ratios per codec for video frames.
_STREAM_RATIOS = {"none": 1.0, "lzw": 1.8, "bzip2": 3.0}


@dataclass
class StreamWorkload:
    """Inputs and outputs of one streaming session."""

    duration: float = 30.0
    decode_cost: float = 2e-5  # client work units per raw byte
    encode_cost: float = 1e-5  # server work units per raw byte
    #: (send_time, deliver_time, frame_id) for every displayed frame.
    frame_log: List[Tuple[float, float, int]] = field(default_factory=list)


@dataclass(frozen=True)
class _Frame:
    frame_id: int
    sent_at: float
    raw_bytes: float


def _notify_stream_params(rt, old, new):
    """Transition: tell the server about new rate/quality/codec settings."""
    if (old["fps"], old["quality"], old["c"]) != (new["fps"], new["quality"], new["c"]):
        yield rt.sandbox("client").send(
            "server", CTL_PORT, dict(new), size=48.0
        )


def stream_server_session(rt, workload: StreamWorkload):
    """The server half of one streaming session (module-level, reusable)."""
    sandbox = rt.sandbox("server")
    sim = rt.sim
    params = dict(rt.config)
    frame_id = 0
    t_end = sim.now + workload.duration
    next_deadline = sim.now
    while sim.now < t_end:
        # Pick up any control updates that have arrived.
        while True:
            update = sandbox.host.mailbox(CTL_PORT).try_get()
            if update is None:
                break
            params = dict(update.payload)
        period = 1.0 / float(params["fps"])
        raw = QUALITY_BYTES[params["quality"]]
        codec = get_codec(params["c"])
        yield sandbox.compute(
            workload.encode_cost * raw + codec.compress_work(raw)
        )
        wire = raw / _STREAM_RATIOS[params["c"]]
        frame = _Frame(frame_id=frame_id, sent_at=sim.now, raw_bytes=raw)
        yield sandbox.send("client", FRAME_PORT, frame, size=wire)
        frame_id += 1
        # Deadline pacing: encode/transfer time counts against the
        # frame period instead of stretching it.
        next_deadline += period
        if sim.now < next_deadline:
            yield sandbox.sleep(next_deadline - sim.now)
        else:
            next_deadline = sim.now  # fell behind: resynchronize
    yield sandbox.send("client", FRAME_PORT, None, size=16.0)  # EOS


def stream_client_session(rt, workload: StreamWorkload):
    """The client half of one streaming session (module-level, reusable).

    The same generator runs as the launcher's ``stream-client`` process or
    as a :class:`repro.crowd.CrowdSource` session — the crowd equivalence
    fixture asserts both drives produce an identical ``frame_log``.
    """
    sandbox = rt.sandbox("client")
    sim = rt.sim
    start = sim.now
    displayed = 0
    lag_sum = 0.0
    quality_sum = 0.0
    while True:
        yield from rt.controls.apply(rt, sim.now)
        msg = yield sandbox.recv(FRAME_PORT)
        frame = msg.payload
        if frame is None:
            break
        codec = get_codec(rt.config.c)
        yield sandbox.compute(
            codec.decompress_work(frame.raw_bytes)
            + workload.decode_cost * frame.raw_bytes
        )
        displayed += 1
        lag_sum += sim.now - frame.sent_at
        quality_sum += frame.raw_bytes
        workload.frame_log.append((frame.sent_at, sim.now, frame.frame_id))
    elapsed = max(sim.now - start, 1e-9)
    rt.qos.update("fps_delivered", displayed / elapsed, time=sim.now)
    rt.qos.update(
        "frame_lag", lag_sum / displayed if displayed else float("inf"),
        time=sim.now,
    )
    rt.qos.update(
        "quality_bytes", quality_sum / displayed if displayed else 0.0,
        time=sim.now,
    )


def make_streaming_app(
    fps_domain=(10, 15, 30),
    quality_domain=("low", "medium", "high"),
    codec_domain=("none", "lzw"),
    client_speed: float = 450.0,
    server_speed: float = 450.0,
    link_bandwidth: float = 100e6 / 8,
    link_latency: float = 0.002,
    client_session=None,
) -> TunableApp:
    """Build the tunable streaming application.

    ``client_session`` overrides the client half of the session: a
    ``(rt, workload) -> generator`` callable, or one returning ``None``
    to skip spawning a client entirely (the session is driven externally,
    e.g. by a :class:`repro.crowd.CrowdSource`) — the launcher then
    returns the server process as the runtime's ``finished`` anchor.
    """
    space = ConfigSpace(
        [
            ControlParameter("fps", tuple(fps_domain), "frames per second"),
            ControlParameter("quality", tuple(quality_domain), "frame quality"),
            ControlParameter("c", tuple(codec_domain), "frame compression"),
        ]
    )
    env = ExecutionEnv(
        [
            HostComponent("client", cpu_speed=client_speed),
            HostComponent("server", cpu_speed=server_speed),
        ],
        [LinkComponent("client", "server", bandwidth=link_bandwidth, latency=link_latency)],
    )
    metrics = [
        QoSMetric("fps_delivered", better="higher", unit="frames/s"),
        QoSMetric("frame_lag", better="lower", unit="s",
                  description="mean send-to-display latency"),
        QoSMetric("quality_bytes", better="higher", unit="bytes/frame"),
    ]
    tasks = TaskGraph(
        [
            TaskSpec(
                "stream",
                params=("fps", "quality", "c"),
                resources=(
                    "client.cpu",
                    "client.network",
                    "server.cpu",
                    "server.network",
                ),
                metrics=("fps_delivered", "frame_lag", "quality_bytes"),
            )
        ]
    )
    transitions = (TransitionSpec(handler=_notify_stream_params, name="notify-stream"),)

    def launcher(rt):
        workload: StreamWorkload = rt.workload or StreamWorkload()
        rt.workload = workload

        server_proc = rt.sim.process(
            stream_server_session(rt, workload), name="stream-server"
        )
        session = client_session or stream_client_session
        gen = session(rt, workload)
        if gen is None:
            return server_proc
        return rt.sim.process(gen, name="stream-client")

    return TunableApp(
        name="streaming",
        space=space,
        env=env,
        metrics=metrics,
        tasks=tasks,
        transitions=transitions,
        launcher=launcher,
    )
