"""A memory-bound tunable application (extension workload).

The paper's experiments "restrict ... attention to variations in CPU and
network resources, keeping memory resources at a fixed level" — but its
sandbox explicitly supports physical-memory limits (switching protection
bits of mapped pages).  This application exercises that third resource
kind end-to-end: an iterative grid computation whose ``tile`` control
parameter picks the working-set size.  Small tiles recompute more (extra
CPU passes); large tiles fault when the sandbox's resident limit is below
the working set.  Adaptation trades recomputation for residency, exactly
the "raising demand for resources of another type" form of tunability
from Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..tunable import (
    ConfigSpace,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)

__all__ = ["make_membound_app", "MemWorkload"]


@dataclass
class MemWorkload:
    """Inputs/outputs of one run of the grid computation."""

    #: Total data pages the computation must process per sweep.
    data_pages: int = 512
    #: Number of sweeps over the data.
    sweeps: int = 4
    #: CPU work per page visit.
    work_per_page: float = 0.05
    #: Extra passes required per sweep when tiling (recomputation factor):
    #: passes = 1 + recompute_factor * (data_pages / tile - 1) / data_pages.
    recompute_overhead: float = 0.15
    #: (sweep, faults) observed per sweep.
    fault_log: List[Tuple[int, int]] = field(default_factory=list)


def make_membound_app(cpu_speed: float = 450.0) -> TunableApp:
    """Grid computation with a working-set ("tile") knob.

    tile = pages processed per pass; the resident working set is
    ``tile + halo``.  Larger tiles mean fewer redundant halo visits (less
    CPU) but a bigger resident set (more faults under a memory limit).
    """
    space = ConfigSpace(
        [ControlParameter("tile", (32, 128, 512), "working-set pages per pass")]
    )
    env = ExecutionEnv([HostComponent("node", cpu_speed=cpu_speed, mem_pages=4096)])
    metrics = [
        QoSMetric("elapsed", better="lower", unit="s"),
        QoSMetric("faults", better="lower"),
    ]
    tasks = TaskGraph(
        [
            TaskSpec(
                "sweep",
                params=("tile",),
                resources=("node.cpu", "node.memory"),
                metrics=("elapsed", "faults"),
            )
        ]
    )

    def launcher(rt):
        workload: MemWorkload = rt.workload or MemWorkload()
        rt.workload = workload

        def main():
            sandbox = rt.sandbox("node")
            pages = sandbox.alloc_pages(workload.data_pages)
            start = rt.sim.now
            total_faults = 0
            for sweep in range(workload.sweeps):
                yield from rt.controls.apply(rt, rt.sim.now)
                tile = rt.config.tile
                n_tiles = max(1, workload.data_pages // tile)
                # Redundant halo work grows with the number of tiles.
                overhead = 1.0 + workload.recompute_overhead * (n_tiles - 1)
                sweep_faults = 0
                for t in range(n_tiles):
                    tile_pages = list(pages[t * tile : (t + 1) * tile])
                    # Each tile is visited twice within a pass (stencil
                    # read + write), touching pages in order.
                    faults = yield sandbox.touch_pages(tile_pages * 2)
                    sweep_faults += faults
                    yield sandbox.compute(
                        workload.work_per_page * tile * overhead
                    )
                total_faults += sweep_faults
                workload.fault_log.append((sweep, sweep_faults))
            rt.qos.update("elapsed", rt.sim.now - start, time=rt.sim.now)
            rt.qos.update("faults", float(total_faults), time=rt.sim.now)

        return rt.sim.process(main(), name="membound-main")

    return TunableApp(
        name="membound",
        space=space,
        env=env,
        metrics=metrics,
        tasks=tasks,
        launcher=launcher,
    )
