"""Evaluation applications: toy loop, active visualization, streaming."""

from .membound import MemWorkload, make_membound_app
from .streaming import QUALITY_BYTES, StreamWorkload, make_streaming_app
from .toy import TOY_HOST, make_toy_app

__all__ = [
    "make_toy_app",
    "TOY_HOST",
    "make_streaming_app",
    "make_membound_app",
    "MemWorkload",
    "StreamWorkload",
    "QUALITY_BYTES",
]
