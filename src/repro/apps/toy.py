"""The "simple toy application" of Section 5.1 (Figs. 3 and 4a).

A tight compute loop "running out of registers": pure CPU work in small
rounds, with no network or memory activity.  Its execution time scales
exactly with clock rate, which is why the paper emulates slower machines
for it with clock-ratio CPU shares.
"""

from __future__ import annotations

from ..tunable import (
    ConfigSpace,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)

__all__ = ["make_toy_app", "TOY_HOST"]

TOY_HOST = "node"


def make_toy_app(
    cpu_speed: float = 450.0,
    total_work: float = 4500.0,
    round_work: float = 4.5,
) -> TunableApp:
    """Tight-loop app: ``total_work`` units in rounds of ``round_work``.

    On an unconstrained host of speed 450 the default runs 10 s.  The small
    rounds let the sandbox's quantum controller interleave suspensions, as
    priority manipulation does to a real spinning thread.
    """
    space = ConfigSpace([ControlParameter("scale", (1.0, 2.0, 4.0))])
    env = ExecutionEnv([HostComponent(TOY_HOST, cpu_speed=cpu_speed)])
    metrics = [QoSMetric("elapsed", better="lower", unit="s")]
    tasks = TaskGraph(
        [
            TaskSpec(
                "spin",
                params=("scale",),
                resources=(f"{TOY_HOST}.cpu",),
                metrics=("elapsed",),
            )
        ]
    )

    def launcher(rt):
        def main():
            sandbox = rt.sandbox(TOY_HOST)
            work = total_work * float(rt.config.scale)
            t0 = rt.sim.now
            remaining = work
            while remaining > 0:
                chunk = min(round_work, remaining)
                yield sandbox.compute(chunk)
                remaining -= chunk
            rt.qos.update("elapsed", rt.sim.now - t0, time=rt.sim.now)

        return rt.sim.process(main(), name="toy-main")

    return TunableApp(
        name="toy",
        space=space,
        env=env,
        metrics=metrics,
        tasks=tasks,
        launcher=launcher,
    )
