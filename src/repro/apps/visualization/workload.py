"""Workload and cost-model description for one visualization run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple, Union

from .images import AnalyticImageModel, RealImageModel

__all__ = ["VizCosts", "VizWorkload"]


@dataclass(frozen=True)
class VizCosts:
    """Client/server CPU cost coefficients (work units; 450 units/s = PII-450).

    The experiments in the paper were run with per-experiment application
    settings; the two knobs that differ across them are the rendering cost
    per byte (``display_cost``) and the codec cost scale.  DESIGN.md §5
    records the calibration.
    """

    #: Client rendering work per raw byte displayed.
    display_cost: float = 3e-5
    #: Server work per raw byte extracted from the pyramid.
    server_encode_cost: float = 1e-5
    #: Fixed client work per round (request preparation, display setup).
    client_round_overhead: float = 2.0
    #: Fixed server work per request (parsing, pyramid lookup).
    server_round_overhead: float = 2.0
    #: Multiplier on the codec compress/decompress cost coefficients.
    codec_cost_scale: float = 1.0


@dataclass
class VizWorkload:
    """One run's inputs and collected outputs."""

    n_images: int = 10
    image_side: int = 2048
    levels: int = 4
    costs: VizCosts = field(default_factory=VizCosts)
    #: "analytic" (calibrated byte counts) or "real" (actual pyramid+codecs).
    fidelity: str = "analytic"
    #: Optional fovea-motion hook: (image_id, round_seq, x, y) -> (x, y) or
    #: None to leave the fovea alone.  A move restarts progressive
    #: transmission around the new centre.
    interaction: Optional[Callable[[int, int, int, int], Optional[Tuple[int, int]]]] = None
    #: Pause between images (user "think time").
    inter_image_delay: float = 0.0
    #: When True, the server reads raw pyramid bytes from its disk before
    #: encoding ("large images stored in the server", Section 2.1) instead
    #: of assuming an in-memory pyramid.
    server_disk: bool = False
    seed: int = 0
    #: Client pause before retrying a round the server shed (overload
    #: backoff); 0 retries immediately.
    shed_retry_delay: float = 0.1
    #: Optional :class:`repro.recovery.OverloadGuard` the server consults
    #: per request (None = never shed, the historical behavior).
    overload: Optional[Any] = None
    #: Optional mutable dict holding warm-restart server state (negotiated
    #: codec); supervised restarts pass the checkpointed copy back in.
    server_state: Optional[dict] = None

    # -- outputs -------------------------------------------------------------
    #: (completion_time, duration) per downloaded image.
    image_times: List[Tuple[float, float]] = field(default_factory=list)
    #: (completion_time, duration) per request round.
    round_times: List[Tuple[float, float]] = field(default_factory=list)
    #: Times at which the interactive client had a round shed (overload).
    shed_rounds: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.fidelity not in ("analytic", "real"):
            raise ValueError(f"fidelity must be analytic/real, got {self.fidelity!r}")
        if self.n_images < 1:
            raise ValueError(f"n_images must be >= 1, got {self.n_images!r}")

    def build_model(self) -> Union[AnalyticImageModel, RealImageModel]:
        if self.fidelity == "real":
            return RealImageModel(self.image_side, self.levels, seed=self.seed)
        return AnalyticImageModel(self.image_side, self.levels)
