"""Tunability specification of the active visualization application.

This is Fig. 2's annotated program expressed through the framework:
control parameters (``dR``, ``c``, ``l``), a two-host execution
environment, the three QoS metrics, one tunable module covering the data
transmission task, and a transition that notifies the server when the
compression method changes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ...tunable import (
    ConfigSpace,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    LinkComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TransitionSpec,
    TunableApp,
)
from .client import client_process
from .protocol import REQ_PORT, SetCompression
from .server import SERVER_HOST, server_process
from .workload import VizWorkload

__all__ = ["make_viz_app", "DEFAULT_DR", "DEFAULT_CODECS", "DEFAULT_LEVELS"]

DEFAULT_DR: Tuple[int, ...] = (80, 160, 320)
DEFAULT_CODECS: Tuple[str, ...] = ("lzw", "bzip2")
DEFAULT_LEVELS: Tuple[int, ...] = (3, 4)


def _notify_compression(rt, old, new):
    """Fig. 2: ``if (new_control.c != control.c) notify(env.server, ...)``."""
    if new["c"] != old["c"]:
        yield rt.sandbox("client").send(
            SERVER_HOST, REQ_PORT, SetCompression(new["c"]), size=32.0
        )


def make_viz_app(
    dr_domain: Sequence[int] = DEFAULT_DR,
    codec_domain: Sequence[str] = DEFAULT_CODECS,
    level_domain: Sequence[int] = DEFAULT_LEVELS,
    client_speed: float = 450.0,
    server_speed: float = 450.0,
    link_bandwidth: float = 100e6 / 8,
    link_latency: float = 0.0005,
    default_workload: Optional[VizWorkload] = None,
) -> TunableApp:
    """Build the tunable active-visualization application."""
    space = ConfigSpace(
        [
            ControlParameter("dR", tuple(dr_domain), "incremental fovea size"),
            ControlParameter("c", tuple(codec_domain), "compression type"),
            ControlParameter("l", tuple(level_domain), "level of image resolution"),
        ]
    )
    env = ExecutionEnv(
        [
            HostComponent("client", cpu_speed=client_speed),
            HostComponent(SERVER_HOST, cpu_speed=server_speed),
        ],
        [
            LinkComponent(
                "client", SERVER_HOST, bandwidth=link_bandwidth, latency=link_latency
            )
        ],
    )
    metrics = [
        QoSMetric("transmit_time", better="lower", unit="s",
                  description="total image transmission time (per-image avg)"),
        QoSMetric("response_time", better="lower", unit="s",
                  description="average response time of a single round"),
        QoSMetric("resolution", better="higher",
                  description="the resolution of the image"),
    ]
    tasks = TaskGraph(
        [
            TaskSpec(
                "module",
                params=("l", "dR", "c"),
                resources=("client.cpu", "client.network"),
                metrics=("transmit_time", "response_time", "resolution"),
            )
        ]
    )
    transitions = (TransitionSpec(handler=_notify_compression, name="notify-server"),)

    def launcher(rt):
        workload = rt.workload if rt.workload is not None else (
            default_workload if default_workload is not None else VizWorkload()
        )
        rt.workload = workload
        model = workload.build_model()
        server = rt.sim.process(
            server_process(rt, workload, model,
                           overload=workload.overload,
                           codec_state=workload.server_state),
            name="viz-server",
        )
        client = rt.sim.process(
            client_process(rt, workload, model), name="viz-client"
        )
        # Expose the pieces recovery harnesses need: the app model (so a
        # supervised restart can re-spawn the server against the same
        # pyramids) and the launched processes by name.
        rt.app_model = model
        rt.processes = {"viz-server": server, "viz-client": client}
        return client

    return TunableApp(
        name="active-visualization",
        space=space,
        env=env,
        metrics=metrics,
        tasks=tasks,
        transitions=transitions,
        launcher=launcher,
    )
