"""Wire protocol of the active visualization application."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FovealRequest",
    "FovealReply",
    "SetCompression",
    "CloseConnection",
    "REQ_PORT",
    "DATA_PORT",
    "CTL_PORT",
    "REQUEST_WIRE_BYTES",
    "REPLY_HEADER_BYTES",
]

#: Mailbox ports (server side receives on REQ/CTL; client on DATA).
REQ_PORT = "viz.req"
DATA_PORT = "viz.data"
CTL_PORT = "viz.ctl"

#: Wire size of a foveal request message.
REQUEST_WIRE_BYTES = 64.0
#: Fixed header on each data reply.
REPLY_HEADER_BYTES = 32.0


@dataclass(frozen=True)
class FovealRequest:
    """Client -> server: send the ring [r0, r1) around (x, y) up to level l."""

    image_id: int
    x: int
    y: int
    r0: int
    r1: int
    level: int
    seq: int
    #: QoS class for overload shedding: under soft overload the server
    #: sheds requests below its guard's keep_priority (default keeps the
    #: interactive session's priority-1 traffic; flash-crowd load uses 0).
    priority: int = 1
    #: Where to send the reply; None means the shared DATA_PORT (the
    #: interactive client's filtered receive).  Crowd users get private
    #: reply ports so their traffic never perturbs the primary session.
    reply_port: Optional[str] = None


@dataclass(frozen=True)
class FovealReply:
    """Server -> client: the (compressed) pyramid data for one ring."""

    image_id: int
    seq: int
    raw_bytes: float
    compressed_bytes: float
    codec: str
    #: True when the server shed this request instead of serving it
    #: (overload protection): no payload, back off and retry.
    shed: bool = False


@dataclass(frozen=True)
class SetCompression:
    """Client -> server control: switch the compression method.

    This is what Fig. 2's transition construct sends:
    ``if (new_control.c != control.c) notify(env.server, new_control.c);``
    """

    codec: str


@dataclass(frozen=True)
class CloseConnection:
    """Client -> server control: end of session."""
