"""The visualization server process.

Treated as in the paper: "a black-box whose behavior is entirely
determined by the control messages sent to it from the client."  It holds
the image pyramids, answers foveal ring requests with (optionally
compressed) pyramid data, and obeys ``SetCompression`` control messages —
the server-side effect of the client's transition construct.

Robustness extensions (ISSUE 6), both default-off:

- ``overload``: an :class:`repro.recovery.OverloadGuard` consulted per
  request with the current mailbox backlog; shed requests get a tiny
  ``shed=True`` reply so closed-loop clients back off instead of hanging.
- ``codec_state``: a mutable dict mirroring the negotiated codec, so a
  supervised restart can resume *warm* (checkpointed codec) instead of
  re-reading the static launch configuration; the process also requeues
  its in-flight request when killed, giving fail-stop semantics over the
  durable request queue (no request is silently lost to a kill).

Replies go to the request's source host on ``req.reply_port`` (falling
back to the shared DATA_PORT), which lets flash-crowd users on the client
host use private reply ports without perturbing the interactive session.
"""

from __future__ import annotations

from ...codecs import get_codec
from ...sim import Interrupt
from ...tunable import AppRuntime
from .images import RealImageModel
from .protocol import (
    DATA_PORT,
    REPLY_HEADER_BYTES,
    REQ_PORT,
    CloseConnection,
    FovealReply,
    FovealRequest,
    SetCompression,
)
from .workload import VizWorkload

__all__ = ["server_process", "CLIENT_HOST", "SERVER_HOST"]

CLIENT_HOST = "client"
SERVER_HOST = "server"


def server_process(rt: AppRuntime, workload: VizWorkload, model,
                   overload=None, codec_state=None):
    """Generator: the server's request loop (run until CloseConnection)."""
    sandbox = rt.sandbox(SERVER_HOST)
    if codec_state is not None and codec_state.get("codec"):
        codec = get_codec(codec_state["codec"])  # warm restart
    else:
        codec = get_codec(rt.config.c)
    scale = workload.costs.codec_cost_scale
    inflight = None
    try:
        while True:
            inflight = None
            msg = yield sandbox.recv(REQ_PORT)
            inflight = msg
            payload = msg.payload
            if isinstance(payload, CloseConnection):
                return
            if isinstance(payload, SetCompression):
                codec = get_codec(payload.codec)
                if codec_state is not None:
                    codec_state["codec"] = payload.codec
                continue
            if not isinstance(payload, FovealRequest):  # pragma: no cover
                continue
            req = payload
            reply_to = getattr(msg, "src", None) or CLIENT_HOST
            reply_port = req.reply_port or DATA_PORT
            if overload is not None and not overload.admit(
                req, len(sandbox.host.mailbox(REQ_PORT))
            ):
                # Shed: answer with an empty reply so the client backs off
                # rather than blocking forever on a filtered receive.
                yield sandbox.send(
                    reply_to,
                    reply_port,
                    FovealReply(
                        image_id=req.image_id, seq=req.seq, raw_bytes=0.0,
                        compressed_bytes=0.0, codec=codec.name, shed=True,
                    ),
                    size=REPLY_HEADER_BYTES,
                )
                continue
            raw = model.ring_raw_bytes(req.level, req.x, req.y, req.r0, req.r1)
            if workload.server_disk and raw > 0:
                # Fetch the stored coefficients from disk before encoding.
                yield sandbox.disk_read(raw)
            work = (
                workload.costs.server_round_overhead
                + workload.costs.server_encode_cost * raw
                + codec.compress_work(raw) * scale
            )
            yield sandbox.compute(work)
            if isinstance(model, RealImageModel) and raw > 0:
                compressed = model.compressed_bytes(
                    codec.name,
                    raw,
                    level=req.level,
                    x=req.x,
                    y=req.y,
                    r0=req.r0,
                    r1=req.r1,
                )
            else:
                compressed = model.compressed_bytes(codec.name, raw)
            reply = FovealReply(
                image_id=req.image_id,
                seq=req.seq,
                raw_bytes=raw,
                compressed_bytes=compressed,
                codec=codec.name,
            )
            yield sandbox.send(
                reply_to, reply_port, reply, size=compressed + REPLY_HEADER_BYTES
            )
    except Interrupt:
        # Fail-stop under supervision: requeue the request we had already
        # popped so the restarted incarnation serves it from the durable
        # queue instead of losing it mid-computation or mid-reply.  (If the
        # original reply did get out, the re-served duplicate is inert: the
        # client's receive filters on (image_id, seq).)
        if inflight is not None:
            sandbox.host.mailbox(REQ_PORT).items.appendleft(inflight)
        return
