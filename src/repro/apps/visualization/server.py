"""The visualization server process.

Treated as in the paper: "a black-box whose behavior is entirely
determined by the control messages sent to it from the client."  It holds
the image pyramids, answers foveal ring requests with (optionally
compressed) pyramid data, and obeys ``SetCompression`` control messages —
the server-side effect of the client's transition construct.
"""

from __future__ import annotations

from ...codecs import get_codec
from ...tunable import AppRuntime
from .images import RealImageModel
from .protocol import (
    DATA_PORT,
    REPLY_HEADER_BYTES,
    REQ_PORT,
    CloseConnection,
    FovealReply,
    FovealRequest,
    SetCompression,
)
from .workload import VizWorkload

__all__ = ["server_process", "CLIENT_HOST", "SERVER_HOST"]

CLIENT_HOST = "client"
SERVER_HOST = "server"


def server_process(rt: AppRuntime, workload: VizWorkload, model):
    """Generator: the server's request loop (run until CloseConnection)."""
    sandbox = rt.sandbox(SERVER_HOST)
    codec = get_codec(rt.config.c)
    scale = workload.costs.codec_cost_scale
    while True:
        msg = yield sandbox.recv(REQ_PORT)
        payload = msg.payload
        if isinstance(payload, CloseConnection):
            return
        if isinstance(payload, SetCompression):
            codec = get_codec(payload.codec)
            continue
        if not isinstance(payload, FovealRequest):  # pragma: no cover
            continue
        req = payload
        raw = model.ring_raw_bytes(req.level, req.x, req.y, req.r0, req.r1)
        if workload.server_disk and raw > 0:
            # Fetch the stored coefficients from disk before encoding.
            yield sandbox.disk_read(raw)
        work = (
            workload.costs.server_round_overhead
            + workload.costs.server_encode_cost * raw
            + codec.compress_work(raw) * scale
        )
        yield sandbox.compute(work)
        if isinstance(model, RealImageModel) and raw > 0:
            compressed = model.compressed_bytes(
                codec.name,
                raw,
                level=req.level,
                x=req.x,
                y=req.y,
                r0=req.r0,
                r1=req.r1,
            )
        else:
            compressed = model.compressed_bytes(codec.name, raw)
        reply = FovealReply(
            image_id=req.image_id,
            seq=req.seq,
            raw_bytes=raw,
            compressed_bytes=compressed,
            codec=codec.name,
        )
        yield sandbox.send(
            CLIENT_HOST, DATA_PORT, reply, size=compressed + REPLY_HEADER_BYTES
        )
