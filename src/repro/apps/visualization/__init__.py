"""The active visualization application (Section 2.1 / Fig. 2)."""

from .app import DEFAULT_CODECS, DEFAULT_DR, DEFAULT_LEVELS, make_viz_app
from .interaction import random_walk_user, scripted_moves, static_user
from .images import AnalyticImageModel, RealImageModel, measured_codec_ratios
from .protocol import (
    CTL_PORT,
    DATA_PORT,
    REQ_PORT,
    CloseConnection,
    FovealReply,
    FovealRequest,
    SetCompression,
)
from .server import CLIENT_HOST, SERVER_HOST
from .workload import VizCosts, VizWorkload

__all__ = [
    "make_viz_app",
    "VizWorkload",
    "VizCosts",
    "static_user",
    "scripted_moves",
    "random_walk_user",
    "AnalyticImageModel",
    "RealImageModel",
    "measured_codec_ratios",
    "FovealRequest",
    "FovealReply",
    "SetCompression",
    "CloseConnection",
    "REQ_PORT",
    "DATA_PORT",
    "CTL_PORT",
    "CLIENT_HOST",
    "SERVER_HOST",
    "DEFAULT_DR",
    "DEFAULT_CODECS",
    "DEFAULT_LEVELS",
]
