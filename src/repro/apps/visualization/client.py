"""The visualization client process — the tunable loop of Fig. 2.

Pseudocode from the paper, with the tunability hooks realized through the
framework objects:

- ``control.dR / control.c / control.l`` -> ``rt.controls.current``,
  re-read every round so steering changes take effect at round boundaries;
- the ``transition (new_control)`` construct -> ``rt.controls.apply`` at
  the top of each round (a transition handler notifies the server of
  compression changes);
- the ``QoS_monitor`` blocks -> ``rt.qos`` updates of ``response_time``,
  ``transmit_time``, and ``resolution``.
"""

from __future__ import annotations

from ...codecs import get_codec
from ...tunable import AppRuntime
from .protocol import (
    DATA_PORT,
    REQ_PORT,
    REQUEST_WIRE_BYTES,
    CloseConnection,
    FovealRequest,
    SetCompression,
)
from .server import SERVER_HOST
from .workload import VizWorkload

__all__ = ["client_process"]


def client_process(rt: AppRuntime, workload: VizWorkload, model):
    """Generator: download ``workload.n_images`` images progressively."""
    sandbox = rt.sandbox("client")
    sim = rt.sim
    qos = rt.qos
    controls = rt.controls

    # establish_connection(); notify_server_compression_type(control.c);
    yield sandbox.send(
        SERVER_HOST, REQ_PORT, SetCompression(controls.current.c), size=32.0
    )

    for image_id in range(workload.n_images):
        image_start = sim.now
        level = controls.current.l
        side = model.level_side(level)
        x = y = side // 2
        r = 0
        seq = 0
        while r < (side + 1) // 2:
            # Transition point: apply any pending reconfiguration before
            # reading the control parameters for this round.
            yield from controls.apply(rt, sim.now)
            level = controls.current.l
            d_r = controls.current.dR
            codec = get_codec(controls.current.c)
            side = model.level_side(level)
            x, y = min(x, side - 1), min(y, side - 1)
            r_max = (side + 1) // 2

            t0 = sim.now
            r0, r = r, min(r + d_r, r_max)
            yield sandbox.compute(workload.costs.client_round_overhead)
            yield sandbox.send(
                SERVER_HOST,
                REQ_PORT,
                FovealRequest(
                    image_id=image_id, x=x, y=y, r0=r0, r1=r, level=level, seq=seq
                ),
                size=REQUEST_WIRE_BYTES,
            )
            # Match (image_id, seq) so a duplicate reply from a supervised
            # server restart (requeued in-flight request whose original
            # reply did arrive) can never be consumed by a later round.
            reply_msg = yield sandbox.recv(
                DATA_PORT,
                filter=lambda m, i=image_id, s=seq: (
                    m.payload.image_id == i and m.payload.seq == s
                ),
            )
            reply = reply_msg.payload
            if getattr(reply, "shed", False):
                # Overload backoff: the server refused this ring.  Rewind
                # to the same radius and retry the same seq after a short
                # pause; controls.apply at the loop top lets a brownout
                # configuration switch take effect on the retry.
                workload.shed_rounds.append(sim.now)
                r = r0
                if workload.shed_retry_delay > 0:
                    yield sandbox.sleep(workload.shed_retry_delay)
                continue
            # decompress(control.c, &data); update_display(...)
            yield sandbox.compute(
                get_codec(reply.codec).decompress_work(reply.raw_bytes)
                * workload.costs.codec_cost_scale
                + workload.costs.display_cost * reply.raw_bytes
            )
            # QoS_monitor: response/transmit accounting.
            dt = sim.now - t0
            qos.running_avg("response_time", dt, time=sim.now)
            workload.round_times.append((sim.now, dt))
            seq += 1
            # check_for_user_interaction(&x, &y, &r, &dR);
            if workload.interaction is not None:
                moved = workload.interaction(image_id, seq, x, y)
                if moved is not None:
                    x, y = moved
                    r = 0  # progressive transmission restarts at a new fovea
        image_time = sim.now - image_start
        workload.image_times.append((sim.now, image_time))
        qos.running_avg("transmit_time", image_time, time=sim.now)
        qos.update("resolution", float(level), time=sim.now)
        if workload.inter_image_delay > 0 and image_id + 1 < workload.n_images:
            yield sandbox.sleep(workload.inter_image_delay)

    # ... close_connection();
    yield sandbox.send(SERVER_HOST, REQ_PORT, CloseConnection(), size=16.0)
