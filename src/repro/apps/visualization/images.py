"""Image models for the visualization server.

Two fidelity levels share one interface:

- :class:`RealImageModel` stores an actual Haar wavelet pyramid of a
  synthetic image and compresses actual region bytes with the real codecs —
  ground truth, used in tests and examples on small images.
- :class:`AnalyticImageModel` tracks only byte *counts*: region sizes come
  from clipped-rectangle geometry and compressed sizes from per-codec
  ratios **measured once on real pyramid data** (so the analytic model is
  calibrated by the real one).  This keeps the big profiling sweeps fast
  while preserving genuine codec behaviour.

Geometry conventions: the fovea is a square of half-width ``r`` centred at
``(x, y)`` in level-``levels`` (full-resolution) coordinates.  A request for
ring ``[r0, r1)`` carries the pyramid data of that ring at *every* level up
to the preferred one, scaled by 4 per level step — progressive
transmission from coarse to fine.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional

import numpy as np

from ...codecs import CODECS, WaveletPyramid, get_codec, synthetic_image

__all__ = [
    "measured_codec_ratios",
    "AnalyticImageModel",
    "RealImageModel",
]


@lru_cache(maxsize=8)
def measured_codec_ratios(side: int = 256, seed: int = 0) -> Dict[str, float]:
    """Compression ratios of every registered codec on real pyramid bytes.

    Measured on the quantized full-resolution bytes of a synthetic image —
    the same data the real model ships — and cached per (side, seed).
    """
    pyramid = WaveletPyramid(synthetic_image(side, seed=seed), levels=3)
    data = pyramid.region_bytes(3, 0, 0, side, side)
    return {name: codec.ratio(data) for name, codec in CODECS.items()}


def _clipped_box_area(side: int, x: int, y: int, r: int) -> float:
    """Area of the square of half-width r at (x, y), clipped to the image."""
    if r <= 0:
        return 0.0
    x0, x1 = max(0, x - r), min(side, x + r)
    y0, y1 = max(0, y - r), min(side, y + r)
    if x0 >= x1 or y0 >= y1:
        return 0.0
    return float((x1 - x0) * (y1 - y0))


class AnalyticImageModel:
    """Byte-count model of one stored image (fast path).

    ``side`` is the full-resolution side; ``levels`` the pyramid depth.
    """

    def __init__(
        self,
        side: int,
        levels: int,
        ratios: Optional[Dict[str, float]] = None,
        bytes_per_pixel: float = 1.0,
    ):
        if side <= 0 or levels < 1:
            raise ValueError(f"bad image geometry side={side!r} levels={levels!r}")
        self.side = int(side)
        self.levels = int(levels)
        self.bytes_per_pixel = float(bytes_per_pixel)
        self.ratios = dict(ratios) if ratios is not None else measured_codec_ratios()

    def level_side(self, level: int) -> int:
        if not 0 <= level <= self.levels:
            raise ValueError(f"level must be in [0, {self.levels}], got {level!r}")
        return self.side >> (self.levels - level)

    def ring_raw_bytes(self, level: int, x: int, y: int, r0: int, r1: int) -> float:
        """Pyramid payload bytes for ring [r0, r1) up to ``level``.

        Sums the clipped ring area at every level 0..level, each in its own
        scale (area shrinks 4x per level step down).
        """
        side_l = self.level_side(level)
        outer = _clipped_box_area(side_l, x, y, min(r1, side_l))
        inner = _clipped_box_area(side_l, x, y, min(r0, side_l))
        ring_at_l = max(0.0, outer - inner)
        total_pixels = ring_at_l * sum(
            0.25**k for k in range(0, level + 1)
        )
        return total_pixels * self.bytes_per_pixel

    def image_raw_bytes(self, level: int) -> float:
        """Whole-image pyramid payload up to ``level``."""
        side_l = self.level_side(level)
        return self.ring_raw_bytes(level, side_l // 2, side_l // 2, 0, side_l)

    def compressed_bytes(self, codec_name: str, raw_bytes: float) -> float:
        ratio = self.ratios.get(codec_name)
        if ratio is None:
            raise KeyError(f"no ratio calibrated for codec {codec_name!r}")
        return raw_bytes / ratio


class RealImageModel:
    """Actual wavelet pyramid + actual codecs (ground-truth path)."""

    def __init__(self, side: int, levels: int, seed: int = 0):
        self.side = int(side)
        self.levels = int(levels)
        self.pyramid = WaveletPyramid(synthetic_image(side, seed=seed), levels=levels)

    def level_side(self, level: int) -> int:
        if not 0 <= level <= self.levels:
            raise ValueError(f"level must be in [0, {self.levels}], got {level!r}")
        return self.side >> (self.levels - level)

    def _ring_bytes(self, level: int, x: int, y: int, r0: int, r1: int) -> bytes:
        chunks = []
        for lev in range(0, level + 1):
            scale = 2 ** (level - lev)
            sx, sy = x // scale, y // scale
            s_r0, s_r1 = r0 // scale, r1 // scale
            outer = self.pyramid.region_bytes(
                lev, sx - s_r1, sy - s_r1, sx + s_r1, sy + s_r1
            )
            inner = self.pyramid.region_bytes(
                lev, sx - s_r0, sy - s_r0, sx + s_r0, sy + s_r0
            )
            # Ship the outer box minus the inner box; as a byte-stream model
            # we ship outer and subtract inner's length (the simulator only
            # needs sizes, but the bytes are real pyramid content).
            chunks.append(outer[len(inner):])
        return b"".join(chunks)

    def ring_raw_bytes(self, level: int, x: int, y: int, r0: int, r1: int) -> float:
        return float(len(self._ring_bytes(level, x, y, r0, r1)))

    def image_raw_bytes(self, level: int) -> float:
        side_l = self.level_side(level)
        return self.ring_raw_bytes(level, side_l // 2, side_l // 2, 0, side_l)

    def compressed_bytes(self, codec_name: str, raw_bytes: float, **geometry) -> float:
        """Compress the actual ring bytes; ``geometry`` locates the ring."""
        if geometry:
            data = self._ring_bytes(
                geometry["level"],
                geometry["x"],
                geometry["y"],
                geometry["r0"],
                geometry["r1"],
            )
        else:
            # Fall back to a representative stream of the requested length.
            full = self.pyramid.region_bytes(self.levels, 0, 0, self.side, self.side)
            reps = int(np.ceil(raw_bytes / max(1, len(full))))
            data = (full * reps)[: int(raw_bytes)]
        return float(len(get_codec(codec_name).compress(data)))
