"""User-interaction traces for the visualization client.

``check_for_user_interaction`` in the paper's client loop lets the user
move the fovea mid-download, restarting progressive transmission around
the new centre.  The experiments keep the fovea static; these traces make
the responsiveness scenarios realistic and are used by the interactive
example and responsiveness tests.

A trace is a callable ``(image_id, round_seq, x, y) -> (x, y) | None``
compatible with :attr:`VizWorkload.interaction`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ...sim import stream

__all__ = ["static_user", "scripted_moves", "random_walk_user"]

Interaction = Callable[[int, int, int, int], Optional[Tuple[int, int]]]


def static_user() -> Interaction:
    """The experiments' user: never moves the fovea."""

    def interact(image_id: int, seq: int, x: int, y: int):
        return None

    return interact


def scripted_moves(moves: List[Tuple[int, int, int, int]]) -> Interaction:
    """Replay exact moves: (image_id, round_seq, new_x, new_y)."""
    table = {(img, seq): (x, y) for img, seq, x, y in moves}

    def interact(image_id: int, seq: int, x: int, y: int):
        return table.get((image_id, seq))

    return interact


def random_walk_user(
    side: int,
    seed: int = 0,
    move_probability: float = 0.15,
    max_step: int = 256,
    max_moves_per_image: int = 2,
) -> Interaction:
    """A seeded impatient user who occasionally drags the fovea.

    Moves happen with ``move_probability`` per round, bounded per image so
    downloads still finish; steps are uniform within ``max_step`` of the
    current fovea, clipped to the image.
    """
    if not 0.0 <= move_probability <= 1.0:
        raise ValueError(f"move_probability must be in [0,1], got {move_probability!r}")
    rng = stream(seed, "viz.interaction")
    moves_used = {}

    def interact(image_id: int, seq: int, x: int, y: int):
        if moves_used.get(image_id, 0) >= max_moves_per_image:
            return None
        if rng.random() >= move_probability:
            return None
        moves_used[image_id] = moves_used.get(image_id, 0) + 1
        nx = int(min(side - 1, max(0, x + rng.integers(-max_step, max_step + 1))))
        ny = int(min(side - 1, max(0, y + rng.integers(-max_step, max_step + 1))))
        return (nx, ny)

    return interact
