"""Interpolation over sampled performance data.

"Interpolation of these data gives reasonable prediction of application
performance under different run-time conditions."  Given scattered or
gridded samples of one metric over the resource space, an
:class:`Interpolator` predicts the metric at arbitrary query points:

- 1-D: piecewise-linear with linear extrapolation at the ends;
- N-D on a full rectangular grid: multilinear
  (:class:`scipy.interpolate.RegularGridInterpolator`), clipped to the
  grid's bounding box for out-of-range queries;
- N-D scattered: linear barycentric (``scipy.interpolate.griddata``) with
  nearest-neighbour fallback outside the convex hull.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy.interpolate import LinearNDInterpolator, NearestNDInterpolator, RegularGridInterpolator

__all__ = ["Interpolator", "InterpolationError"]


class InterpolationError(Exception):
    """Raised for unusable sample sets."""


def _detect_grid(X: np.ndarray) -> Optional[List[np.ndarray]]:
    """Return per-dimension sorted unique values if X is a full grid."""
    axes = [np.unique(X[:, j]) for j in range(X.shape[1])]
    expected = int(np.prod([len(a) for a in axes]))
    if expected != X.shape[0]:
        return None
    # Verify every grid point is present (unique rows == expected).
    if len({tuple(row) for row in X}) != expected:
        return None
    return axes


class Interpolator:
    """Predicts one scalar quantity from samples over R^d."""

    def __init__(self, X: Sequence[Sequence[float]], y: Sequence[float]):
        Xa = np.asarray(X, dtype=np.float64)
        ya = np.asarray(y, dtype=np.float64)
        if Xa.ndim != 2 or Xa.shape[0] != ya.shape[0] or Xa.shape[0] == 0:
            raise InterpolationError(
                f"bad sample shapes X={Xa.shape} y={ya.shape}"
            )
        # Deduplicate identical sample locations (keep the mean response).
        seen = {}
        for row, val in zip(map(tuple, Xa), ya):
            seen.setdefault(row, []).append(val)
        Xa = np.asarray(list(seen.keys()), dtype=np.float64)
        ya = np.asarray([float(np.mean(v)) for v in seen.values()])
        self.X = Xa
        self.y = ya
        self.ndim = Xa.shape[1]
        self._build()

    def _build(self) -> None:
        if len(self.y) == 1:
            const = float(self.y[0])
            self._predict = lambda q: const
            self.kind = "constant"
            return
        if self.ndim == 1:
            order = np.argsort(self.X[:, 0])
            xs = self.X[order, 0]
            ys = self.y[order]

            def predict_1d(q: np.ndarray) -> float:
                x = float(q[0])
                if x == xs[0]:
                    return float(ys[0])
                if x == xs[-1]:
                    return float(ys[-1])
                if x < xs[0]:  # linear extrapolation at the low end
                    with np.errstate(over="ignore", invalid="ignore"):
                        slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
                        value = ys[0] + slope * (x - xs[0])
                    return float(value) if np.isfinite(value) else float(ys[0])
                if x > xs[-1]:
                    with np.errstate(over="ignore", invalid="ignore"):
                        slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
                        value = ys[-1] + slope * (x - xs[-1])
                    return float(value) if np.isfinite(value) else float(ys[-1])
                return float(np.interp(x, xs, ys))

            self._predict = predict_1d
            self.kind = "linear-1d"
            return
        axes = _detect_grid(self.X)
        if axes is not None and all(len(a) >= 2 for a in axes):
            shape = tuple(len(a) for a in axes)
            values = np.empty(shape)
            index = {tuple(row): i for i, row in enumerate(map(tuple, self.X))}
            for combo_idx in np.ndindex(*shape):
                coords = tuple(axes[j][combo_idx[j]] for j in range(self.ndim))
                values[combo_idx] = self.y[index[coords]]
            rgi = RegularGridInterpolator(
                axes, values, method="linear", bounds_error=False, fill_value=None
            )
            lo = np.array([a[0] for a in axes])
            hi = np.array([a[-1] for a in axes])

            def predict_grid(q: np.ndarray) -> float:
                # Clip to the box: beyond-sampled-range queries use the edge
                # value ("or even extrapolation" in the paper is the RGI's
                # linear fill for mild overshoot; we clip to stay stable).
                clipped = np.minimum(hi, np.maximum(lo, q))
                return float(rgi(clipped)[0])

            self._predict = predict_grid
            self.kind = "multilinear-grid"
            return
        # Scattered data.
        nearest = NearestNDInterpolator(self.X, self.y)
        linear = None
        if len(self.y) > self.ndim + 1:
            try:
                linear = LinearNDInterpolator(self.X, self.y)
            except Exception:  # degenerate geometry (collinear points, ...)
                linear = None

        def predict_scattered(q: np.ndarray) -> float:
            if linear is not None:
                v = linear(q[None, :])[0]
                if not np.isnan(v):
                    return float(v)
            return float(nearest(q[None, :])[0])

        self._predict = predict_scattered
        self.kind = "scattered"

    def __call__(self, query: Sequence[float]) -> float:
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.ndim,):
            raise InterpolationError(
                f"query shape {q.shape} does not match dimensionality {self.ndim}"
            )
        return self._predict(q)
