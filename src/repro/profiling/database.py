"""The performance database (Section 5 / 5.2).

Each record maps (configuration, resource point) to the measured quality
metrics.  Queries interpolate the records of one configuration over the
resource space (:meth:`PerformanceDatabase.predict`), or return the nearest
discrete sample (:meth:`lookup_nearest` — the behaviour of the paper's
implemented scheduler, kept for the ablation study).  The database
serializes to JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..tunable import Configuration
from .interpolate import InterpolationError, Interpolator
from .resource_space import ResourcePoint

__all__ = ["Record", "PerformanceDatabase", "DatabaseError"]


class DatabaseError(Exception):
    """Raised on malformed database operations."""


@dataclass(frozen=True)
class Record:
    """One profiling measurement."""

    config: Configuration
    point: ResourcePoint
    metrics: Dict[str, float]
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-able form (ships records across process boundaries)."""
        return {
            "config": dict(self.config),
            "point": dict(self.point),
            "metrics": dict(self.metrics),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Record":
        """Inverse of :meth:`to_dict`; metric values coerce to float."""
        return cls(
            config=Configuration(data["config"]),
            point=ResourcePoint(data["point"]),
            metrics={k: float(v) for k, v in data["metrics"].items()},
            meta=dict(data.get("meta", {})),
        )


class PerformanceDatabase:
    """Profiles of application behaviour across the resource space."""

    def __init__(self, app_name: str = "", resource_dims: Sequence[str] = ()):
        self.app_name = app_name
        #: Canonical ordering of the resource-space axes.
        self.resource_dims: List[str] = sorted(resource_dims)
        self._records: Dict[tuple, Dict[tuple, Record]] = {}
        self._interp_cache: Dict[tuple, Interpolator] = {}

    # -- ingest ---------------------------------------------------------
    def add(self, record: Record) -> None:
        """Insert (or replace) the measurement at (config, point)."""
        if self.resource_dims:
            missing = set(self.resource_dims) - set(record.point)
            extra = set(record.point) - set(self.resource_dims)
            if missing or extra:
                raise DatabaseError(
                    f"point dims mismatch: missing={sorted(missing)}, "
                    f"extra={sorted(extra)}"
                )
        else:
            self.resource_dims = sorted(record.point)
        self._records.setdefault(record.config.key, {})[record.point.key] = record
        self._interp_cache.clear()

    def __len__(self) -> int:
        return sum(len(pts) for pts in self._records.values())

    # -- inspection -------------------------------------------------------
    def configurations(self) -> List[Configuration]:
        return [Configuration(dict(key)) for key in self._records]

    def points_for(self, config: Configuration) -> List[ResourcePoint]:
        return [
            ResourcePoint(dict(key))
            for key in self._records.get(config.key, {})
        ]

    def records_for(self, config: Configuration) -> List[Record]:
        return list(self._records.get(config.key, {}).values())

    def record_at(
        self, config: Configuration, point: ResourcePoint
    ) -> Optional[Record]:
        return self._records.get(config.key, {}).get(point.key)

    def metric_names(self) -> List[str]:
        names: Dict[str, None] = {}
        for pts in self._records.values():
            for rec in pts.values():
                for m in rec.metrics:
                    names.setdefault(m, None)
        return list(names)

    def remove_config(self, config: Configuration) -> None:
        self._records.pop(config.key, None)
        self._interp_cache.clear()

    # -- queries ---------------------------------------------------------
    def _point_vector(self, point: ResourcePoint) -> np.ndarray:
        try:
            return np.array([point[d] for d in self.resource_dims])
        except KeyError as exc:
            raise DatabaseError(f"query point missing dimension {exc}") from None

    def _interpolator(self, config: Configuration, metric: str) -> Interpolator:
        key = (config.key, metric)
        interp = self._interp_cache.get(key)
        if interp is None:
            records = self.records_for(config)
            samples = [
                (r.point, r.metrics[metric]) for r in records if metric in r.metrics
            ]
            if not samples:
                raise DatabaseError(
                    f"no samples of metric {metric!r} for {config.label()}"
                )
            X = [[p[d] for d in self.resource_dims] for p, _ in samples]
            y = [v for _, v in samples]
            try:
                interp = Interpolator(X, y)
            except InterpolationError as exc:  # pragma: no cover - defensive
                raise DatabaseError(str(exc)) from exc
            self._interp_cache[key] = interp
        return interp

    def predict(
        self,
        config: Configuration,
        point: ResourcePoint,
        metric: Optional[str] = None,
    ):
        """Interpolated metric value(s) for ``config`` at ``point``.

        With ``metric`` given, returns a float; otherwise a dict over all
        metrics recorded for the configuration.
        """
        if config.key not in self._records:
            raise DatabaseError(f"no records for configuration {config.label()}")
        q = self._point_vector(point)
        if metric is not None:
            return self._interpolator(config, metric)(q)
        metrics: Dict[str, float] = {}
        for rec in self.records_for(config):
            for m in rec.metrics:
                metrics.setdefault(m, 0.0)
        return {m: self._interpolator(config, m)(q) for m in metrics}

    def lookup_nearest(
        self, config: Configuration, point: ResourcePoint
    ) -> Record:
        """Discrete nearest-sample lookup (normalized Euclidean distance).

        This reproduces the paper's *implemented* scheduler, which "does not
        do any interpolation ... a new configuration is selected by examining
        discrete points in the performance database that provide the best
        match to the measured resource condition".
        """
        records = self.records_for(config)
        if not records:
            raise DatabaseError(f"no records for configuration {config.label()}")
        q = self._point_vector(point)
        X = np.array(
            [[r.point[d] for d in self.resource_dims] for r in records]
        )
        span = X.max(axis=0) - X.min(axis=0)
        span[span == 0] = 1.0
        dist = np.linalg.norm((X - q) / span, axis=1)
        return records[int(np.argmin(dist))]

    # -- persistence ----------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "app": self.app_name,
            "resource_dims": self.resource_dims,
            "records": [
                rec.to_dict()
                for pts in self._records.values()
                for rec in pts.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerformanceDatabase":
        db = cls(app_name=data.get("app", ""), resource_dims=data.get("resource_dims", ()))
        for raw in data.get("records", []):
            db.add(Record.from_dict(raw))
        return db

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True))

    @classmethod
    def load(cls, path) -> "PerformanceDatabase":
        return cls.from_dict(json.loads(Path(path).read_text()))
