"""Database post-processing: maximal subsets and similar-config merging.

Footnote 1 of the paper: the database stores "a maximal subset of the
configurations ... that outperform other configurations under at least one
resource situation.  Additionally, configurations that exhibit similar
execution behavior can be merged (with only one of them being stored)."
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..tunable import Configuration, QoSMetric
from .database import PerformanceDatabase
from .resource_space import ResourcePoint

__all__ = ["maximal_subset", "merge_similar", "prune_database"]


def _all_points(db: PerformanceDatabase) -> List[ResourcePoint]:
    points: Dict[tuple, ResourcePoint] = {}
    for config in db.configurations():
        for p in db.points_for(config):
            points.setdefault(p.key, p)
    return list(points.values())


def maximal_subset(
    db: PerformanceDatabase,
    metric: QoSMetric,
) -> List[Configuration]:
    """Configurations that win ``metric`` at >= 1 sampled resource point.

    "Winning" means being within a hair of the best predicted value at that
    point, so ties keep all co-winners.
    """
    configs = db.configurations()
    points = _all_points(db)
    if not configs or not points:
        return []
    winners: Dict[tuple, Configuration] = {}
    for point in points:
        values = []
        for config in configs:
            values.append((db.predict(config, point, metric.name), config))
        best_value = (
            min(v for v, _ in values)
            if metric.better == "lower"
            else max(v for v, _ in values)
        )
        tol = 1e-9 * max(1.0, abs(best_value))
        for value, config in values:
            if abs(value - best_value) <= tol:
                winners.setdefault(config.key, config)
    return list(winners.values())


def merge_similar(
    db: PerformanceDatabase,
    metrics: Sequence[QoSMetric],
    rtol: float = 0.05,
) -> Dict[Configuration, Configuration]:
    """Group configurations with near-identical behaviour.

    Two configurations are "similar" when every metric agrees within
    relative tolerance ``rtol`` at every common sampled point.  Returns a
    mapping from each configuration to its group representative (the first
    member encountered); representatives map to themselves.
    """
    configs = db.configurations()
    points = _all_points(db)
    vectors: Dict[tuple, np.ndarray] = {}
    for config in configs:
        vec = []
        for point in points:
            for metric in metrics:
                vec.append(db.predict(config, point, metric.name))
        vectors[config.key] = np.array(vec)

    representative: Dict[Configuration, Configuration] = {}
    reps: List[Configuration] = []
    for config in configs:
        vec = vectors[config.key]
        assigned = None
        for rep in reps:
            rv = vectors[rep.key]
            scale = np.maximum(np.abs(rv), 1e-12)
            if np.all(np.abs(vec - rv) / scale <= rtol):
                assigned = rep
                break
        if assigned is None:
            reps.append(config)
            assigned = config
        representative[config] = assigned
    return representative


def prune_database(
    db: PerformanceDatabase,
    metrics: Sequence[QoSMetric],
    merge_rtol: float = 0.05,
) -> PerformanceDatabase:
    """Maximal subset (union over all metrics) + similar-config merging.

    Returns a new database containing only representative, non-dominated
    configurations.  The original database is unchanged.
    """
    keep: Dict[tuple, Configuration] = {}
    for metric in metrics:
        for config in maximal_subset(db, metric):
            keep.setdefault(config.key, config)
    rep_map = merge_similar(db, metrics, rtol=merge_rtol)
    pruned = PerformanceDatabase(db.app_name, db.resource_dims)
    kept_reps = {rep_map[c].key for c in keep.values()}
    for config in db.configurations():
        if config.key in kept_reps and rep_map[config] == config:
            for rec in db.records_for(config):
                pruned.add(rec)
    return pruned
