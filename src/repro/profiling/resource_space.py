"""The multidimensional resource space and points within it.

Profiling samples each application configuration "at different points in a
multidimensional resource space".  A :class:`ResourceDimension` names one
axis (e.g. ``client.cpu`` as a share, ``client.network`` in bytes/s); a
:class:`ResourcePoint` is one concrete assignment, convertible to the
per-host :class:`~repro.sandbox.ResourceLimits` the testbed enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

from ..sandbox import ResourceLimits

__all__ = ["ResourceDimension", "ResourcePoint", "limits_for_point"]


@dataclass(frozen=True)
class ResourceDimension:
    """One axis of the resource space.

    ``name`` is ``host.kind`` with kind in {cpu, network, memory, disk};
    ``levels``
    are the default sampling levels (shares for cpu, bytes/s for network,
    pages for memory).  ``lo``/``hi`` bound the physically meaningful range
    (used to clip extrapolation queries).
    """

    name: str
    levels: Tuple[float, ...]
    lo: float = 0.0
    hi: float = float("inf")

    def __post_init__(self) -> None:
        host, _, kind = self.name.partition(".")
        if not host or kind not in ("cpu", "network", "memory", "disk"):
            raise ValueError(
                f"dimension name must be 'host.kind' with kind in cpu/network/"
                f"memory, got {self.name!r}"
            )
        if not self.levels:
            raise ValueError(f"dimension {self.name!r} has no levels")
        if list(self.levels) != sorted(set(self.levels)):
            raise ValueError(
                f"dimension {self.name!r} levels must be strictly increasing"
            )
        if any(not (self.lo <= v <= self.hi) for v in self.levels):
            raise ValueError(f"dimension {self.name!r} levels outside [lo, hi]")

    @property
    def host(self) -> str:
        return self.name.partition(".")[0]

    @property
    def kind(self) -> str:
        return self.name.partition(".")[2]

    def clip(self, value: float) -> float:
        return min(self.hi, max(self.lo, value))


class ResourcePoint(Mapping):
    """Immutable assignment of values to resource dimensions."""

    __slots__ = ("_values", "_key")

    def __init__(self, values: Mapping[str, float]):
        object.__setattr__(self, "_values", {k: float(v) for k, v in values.items()})
        object.__setattr__(
            self, "_key", tuple(sorted(self._values.items(), key=lambda kv: kv[0]))
        )

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other) -> bool:
        if isinstance(other, ResourcePoint):
            return self._key == other._key
        if isinstance(other, Mapping):
            return dict(self._values) == {k: float(v) for k, v in other.items()}
        return NotImplemented

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise TypeError("ResourcePoint is immutable")

    @property
    def key(self) -> tuple:
        return self._key

    def with_(self, **changes: float) -> "ResourcePoint":
        merged = dict(self._values)
        merged.update(changes)
        return ResourcePoint(merged)

    def label(self) -> str:
        return ",".join(f"{k}={v:g}" for k, v in self._key)

    def __repr__(self) -> str:
        return f"ResourcePoint({self.label()})"


def limits_for_point(point: ResourcePoint) -> Dict[str, ResourceLimits]:
    """Convert a resource point into per-host sandbox limits.

    cpu values are shares in (0, 1]; network values are bytes/second;
    memory values are resident page counts.
    """
    per_host: Dict[str, dict] = {}
    for name, value in point.items():
        host, _, kind = name.partition(".")
        slot = per_host.setdefault(host, {})
        if kind == "cpu":
            slot["cpu_share"] = value
        elif kind == "network":
            slot["net_bw"] = value
        elif kind == "memory":
            slot["mem_pages"] = int(value)
        elif kind == "disk":
            slot["disk_bw"] = value
        else:
            raise ValueError(f"unknown resource kind in {name!r}")
    return {host: ResourceLimits(**kw) for host, kw in per_host.items()}
