"""The profiling driver.

"A driver program executes each configuration repeatedly in a virtual
execution environment for different levels of allocated resources."  The
:class:`ProfilingDriver` does exactly that: for every (configuration,
resource point) pair of a sampling plan it builds a *fresh* testbed,
instantiates the application inside sandboxes configured for that point,
runs it to completion, and stores the measured QoS metrics in a
:class:`PerformanceDatabase`.  An adaptive mode closes the loop with
sensitivity analysis.

When constructed with an :class:`repro.exec.AppSpec` (a pure description
of how to rebuild the app in another process), :meth:`profile` and
:meth:`profile_adaptive` accept a :class:`repro.exec.SweepEngine` and
route every measurement through it — sharding cells across worker
processes and serving unchanged cells from the persistent result cache —
while merging records in the exact order of the serial loop, so the
resulting database is byte-identical.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..obs import TraceRecorder
from ..sandbox import LimiterMode, Testbed
from ..sim import derive_seed
from ..tunable import Configuration, TunableApp
from .database import PerformanceDatabase, Record
from .resource_space import ResourceDimension, ResourcePoint, limits_for_point
from .sampling import grid_plan
from .sensitivity import propose_refinements

__all__ = ["ProfilingDriver"]


class ProfilingDriver:
    """Populates a performance database by controlled execution."""

    def __init__(
        self,
        app: TunableApp,
        dims: Sequence[ResourceDimension],
        workload_factory: Optional[Callable[[Configuration, ResourcePoint, int], object]] = None,
        mode: str = LimiterMode.IDEAL,
        seed: int = 0,
        max_run_time: float = 3600.0,
        recorder: Optional[TraceRecorder] = None,
        app_spec=None,
        usage=None,
        profiler=None,
    ):
        names = [d.name for d in dims]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate resource dimensions: {names!r}")
        env_resources = set(app.env.resource_names())
        for d in dims:
            if d.name not in env_resources:
                raise ValueError(
                    f"dimension {d.name!r} is not a resource of app {app.name!r}"
                )
        self.app = app
        self.dims = list(dims)
        self.workload_factory = workload_factory
        self.mode = mode
        self.seed = seed
        self.max_run_time = max_run_time
        #: Observability recorder; when set, every :meth:`measure` binds it
        #: to that run's fresh testbed and wraps the run in a
        #: ``profile.measure`` span.  Virtual time restarts at zero per
        #: testbed, so successive run spans overlap on the time axis — the
        #: ``run`` attr disambiguates them.
        self.recorder = recorder
        #: Optional :class:`repro.obs.UsageAccountant`; when set, every
        #: :meth:`measure` attaches it to the fresh testbed and tracks its
        #: resources, so utilization accumulates across the whole sweep
        #: (entries rebase onto each new testbed's shares).  Not consulted
        #: on the engine path, like the recorder.
        self.usage = usage
        #: Optional :class:`repro.obs.KernelProfiler`; when set, every
        #: :meth:`measure` attaches it to the fresh testbed for the run,
        #: so kernel cost buckets accumulate across the whole sweep.  Not
        #: consulted on the engine path, like the recorder.
        self.profiler = profiler
        #: Optional :class:`repro.exec.AppSpec` enabling the engine path
        #: of :meth:`profile`/:meth:`profile_adaptive` (workers must be
        #: able to rebuild the app from pure data).
        self.app_spec = app_spec
        self.runs = 0

    def measure(self, config: Configuration, point: ResourcePoint) -> Record:
        """One controlled execution; returns the measurement record."""
        run_seed = derive_seed(self.seed, f"{config.label()}|{point.label()}")
        testbed = Testbed(
            host_specs=self.app.env.host_specs(),
            link_specs=self.app.env.link_specs(),
            mode=self.mode,
            seed=run_seed,
        )
        obs = self.recorder
        usage = self.usage
        perf = self.profiler
        span = None
        if perf is not None:
            perf.attach(testbed.sim)
        if usage is not None:
            usage.attach(testbed.sim)
            usage.track_testbed(testbed)
            usage.set_config(config.label(), t=testbed.sim.now)
        if obs is not None:
            obs.bind(testbed.sim)
            span = obs.begin(
                "profile.measure", cat="profiling",
                config=config.label(), point=point.label(),
                seed=run_seed, run=self.runs,
            )
            obs.push_parent(span)
            obs.metrics.counter("profile.runs").inc()
        try:
            workload = None
            if self.workload_factory is not None:
                workload = self.workload_factory(config, point, run_seed)
            rt = self.app.instantiate(
                testbed,
                config,
                limits=limits_for_point(point),
                workload=workload,
                seed=run_seed,
            )
            testbed.run(until=self.max_run_time)
            if not rt.finished.triggered:
                raise RuntimeError(
                    f"profiling run did not finish within {self.max_run_time}s: "
                    f"{config.label()} @ {point.label()}"
                )
            testbed.shutdown()
        finally:
            if obs is not None:
                obs.pop_parent()
                if span is not None:
                    obs.end(span, virtual_duration=testbed.sim.now)
                obs.finish()
                obs.unbind()
            if usage is not None:
                usage.finish()
                usage.detach()
            if perf is not None:
                perf.detach()
        self.runs += 1
        metrics = rt.qos.snapshot()
        if obs is not None:
            obs.metrics.histogram(
                "profile.virtual_duration",
                edges=(1.0, 10.0, 60.0, 300.0, 1800.0),
            ).observe(testbed.sim.now)
        return Record(
            config=config,
            point=point,
            metrics=metrics,
            meta={"seed": run_seed, "virtual_duration": testbed.sim.now},
        )

    def profile(
        self,
        configs: Optional[Sequence[Configuration]] = None,
        plan: Optional[Sequence[ResourcePoint]] = None,
        db: Optional[PerformanceDatabase] = None,
        engine=None,
    ) -> PerformanceDatabase:
        """Measure every configuration at every plan point.

        With ``engine`` (a :class:`repro.exec.SweepEngine`), cells run
        through the sweep engine — parallel and/or cache-served — and
        merge into the database in serial-loop order.  The recorder is
        not consulted on that path (workers carry no trace context).
        """
        if configs is None:
            configs = self.app.configurations()
        if plan is None:
            plan = grid_plan(self.dims)
        if db is None:
            db = PerformanceDatabase(
                self.app.name, [d.name for d in self.dims]
            )
        if engine is not None:
            cells = [(config, point) for config in configs for point in plan]
            self._measure_cells(cells, db, engine, prefix="g")
            return db
        for config in configs:
            for point in plan:
                db.add(self.measure(config, point))
        return db

    def _measure_cells(self, cells, db, engine, prefix: str) -> None:
        """Run (config, point) cells through the engine; add in order."""
        from ..exec import JobSpec
        from ..exec.profile_jobs import app_spec_payload

        specs = [
            JobSpec(
                kind="repro.exec.profile_jobs:measure_cell",
                payload=app_spec_payload(
                    self.app_spec, config, point, self.mode, self.max_run_time
                ),
                seed=self.seed,
                key=f"{prefix}{i:06d}",
            )
            for i, (config, point) in enumerate(cells)
        ]
        report = engine.run(specs)
        for spec in specs:
            db.add(Record.from_dict(report.value(spec.key)))
        self.runs += len(cells)

    def profile_adaptive(
        self,
        configs: Optional[Sequence[Configuration]] = None,
        initial_plan: Optional[Sequence[ResourcePoint]] = None,
        rounds: int = 2,
        per_round: int = 8,
        min_score: float = 0.02,
        engine=None,
    ) -> PerformanceDatabase:
        """Grid profiling followed by sensitivity-driven refinement rounds.

        The refinement proposals of each round depend only on the
        database contents, which the engine path reproduces exactly — so
        each round's batch can itself run through the engine.
        """
        if configs is None:
            configs = self.app.configurations()
        db = self.profile(configs=configs, plan=initial_plan, engine=engine)
        metrics = [m.name for m in self.app.metrics]
        for round_idx in range(rounds):
            proposals = propose_refinements(
                db, metrics, top_k=per_round, min_score=min_score, configs=configs
            )
            if not proposals:
                break
            if engine is not None:
                self._measure_cells(
                    [(prop.config, prop.point) for prop in proposals],
                    db, engine, prefix=f"r{round_idx:02d}-",
                )
                continue
            for prop in proposals:
                db.add(self.measure(prop.config, prop.point))
        return db
