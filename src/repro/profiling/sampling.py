"""Sampling plans over the resource space.

The paper's driver samples configuration behaviour at a set of resource
points; a separate sensitivity-analysis step decides "configurations and
regions of the resource space that require additional samples".  This
module provides the initial plans (grid, random, Latin hypercube); the
adaptive refinement loop lives in :mod:`repro.profiling.sensitivity`.
"""

from __future__ import annotations

from itertools import product
from typing import List, Sequence

import numpy as np

from ..sim import stream
from .resource_space import ResourceDimension, ResourcePoint

__all__ = ["grid_plan", "random_plan", "latin_hypercube_plan", "vary_one_plan"]


def grid_plan(dims: Sequence[ResourceDimension]) -> List[ResourcePoint]:
    """Full cartesian product of every dimension's levels."""
    if not dims:
        raise ValueError("need at least one dimension")
    names = [d.name for d in dims]
    return [
        ResourcePoint(dict(zip(names, combo)))
        for combo in product(*(d.levels for d in dims))
    ]


def vary_one_plan(
    dims: Sequence[ResourceDimension],
    vary: str,
    base: ResourcePoint,
) -> List[ResourcePoint]:
    """Sweep one dimension's levels while pinning the rest to ``base``.

    This is how the paper's figures are produced ("as CPU share varies",
    "keeping other resources at a fixed level").
    """
    target = next((d for d in dims if d.name == vary), None)
    if target is None:
        raise ValueError(f"unknown dimension {vary!r}")
    return [base.with_(**{vary: level}) for level in target.levels]


def random_plan(
    dims: Sequence[ResourceDimension],
    count: int,
    seed: int = 0,
) -> List[ResourcePoint]:
    """Uniform random points within each dimension's level range."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    rng = stream(seed, "sampling.random")
    points = []
    for _ in range(count):
        values = {}
        for d in dims:
            lo, hi = d.levels[0], d.levels[-1]
            values[d.name] = float(rng.uniform(lo, hi))
        points.append(ResourcePoint(values))
    return points


def latin_hypercube_plan(
    dims: Sequence[ResourceDimension],
    count: int,
    seed: int = 0,
) -> List[ResourcePoint]:
    """Latin hypercube: stratified coverage with ``count`` samples.

    Each dimension's range is cut into ``count`` equal strata and each
    stratum is hit exactly once, with the per-dimension orderings shuffled
    independently — much better space coverage than plain random sampling
    for the same budget.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    rng = stream(seed, "sampling.lhs")
    columns = {}
    for d in dims:
        lo, hi = d.levels[0], d.levels[-1]
        strata = (np.arange(count) + rng.uniform(0.0, 1.0, size=count)) / count
        rng.shuffle(strata)
        columns[d.name] = lo + strata * (hi - lo)
    return [
        ResourcePoint({name: float(col[i]) for name, col in columns.items()})
        for i in range(count)
    ]
