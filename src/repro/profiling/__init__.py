"""Profile-based modeling: sampling, measurement, and the performance DB."""

from .autoprofile import AutoProfileReport, autoprofile
from .database import DatabaseError, PerformanceDatabase, Record
from .driver import ProfilingDriver
from .interpolate import InterpolationError, Interpolator
from .prune import maximal_subset, merge_similar, prune_database
from .resource_space import ResourceDimension, ResourcePoint, limits_for_point
from .sampling import grid_plan, latin_hypercube_plan, random_plan, vary_one_plan
from .sensitivity import RefinementProposal, curvature_scores, propose_refinements

__all__ = [
    "ResourceDimension",
    "ResourcePoint",
    "limits_for_point",
    "grid_plan",
    "random_plan",
    "latin_hypercube_plan",
    "vary_one_plan",
    "Interpolator",
    "InterpolationError",
    "PerformanceDatabase",
    "Record",
    "DatabaseError",
    "ProfilingDriver",
    "autoprofile",
    "AutoProfileReport",
    "maximal_subset",
    "merge_similar",
    "prune_database",
    "curvature_scores",
    "propose_refinements",
    "RefinementProposal",
]
