"""One-call modeling pipeline: annotations -> pruned performance database.

Section 5 describes the full chain: the preprocessor emits configuration
files and database templates, a driver samples each configuration in the
testbed, sensitivity analysis decides where more samples are needed, and
the stored database keeps only "a maximal subset of the configurations"
with similar ones merged.  :func:`autoprofile` runs that whole chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..tunable import Configuration, Preprocessor, TunableApp
from .database import PerformanceDatabase
from .driver import ProfilingDriver
from .prune import merge_similar, prune_database
from .resource_space import ResourceDimension, ResourcePoint

__all__ = ["AutoProfileReport", "autoprofile"]


@dataclass
class AutoProfileReport:
    """Everything the modeling pipeline produced."""

    database: PerformanceDatabase
    pruned: PerformanceDatabase
    configurations_declared: int
    configurations_kept: int
    samples_total: int
    refinement_rounds: int
    #: Configuration -> its representative after similar-config merging.
    merged_into: dict = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.configurations_declared} configurations declared, "
            f"{self.configurations_kept} kept after pruning/merging; "
            f"{self.samples_total} samples "
            f"({self.refinement_rounds} refinement rounds)"
        )


def autoprofile(
    app: TunableApp,
    dims: Sequence[ResourceDimension],
    workload_factory: Optional[Callable[[Configuration, ResourcePoint, int], object]] = None,
    configs: Optional[Sequence[Configuration]] = None,
    adaptive_rounds: int = 2,
    per_round: int = 8,
    merge_rtol: float = 0.05,
    seed: int = 0,
    mode: str = "ideal",
    app_spec=None,
    engine=None,
) -> AutoProfileReport:
    """Model ``app`` over ``dims`` and return a pruned database.

    Runs the preprocessor (to enumerate configurations), grid profiling,
    ``adaptive_rounds`` of sensitivity-driven refinement, maximal-subset
    pruning, and similar-config merging.  The full database is also kept in
    the report for inspection.

    ``app_spec`` + ``engine`` (see :mod:`repro.exec`) route the sampling
    through the parallel sweep engine and its result cache; the database
    is byte-identical to the serial pipeline either way.
    """
    pre = Preprocessor(app)
    config_file = pre.config_file()
    if configs is None:
        configs = config_file.configurations
    driver = ProfilingDriver(
        app, dims, workload_factory=workload_factory, seed=seed, mode=mode,
        app_spec=app_spec,
    )
    db = driver.profile_adaptive(
        configs=configs, rounds=adaptive_rounds, per_round=per_round,
        engine=engine,
    )
    pruned = prune_database(db, app.metrics, merge_rtol=merge_rtol)
    rep_map = merge_similar(db, app.metrics, rtol=merge_rtol)
    return AutoProfileReport(
        database=db,
        pruned=pruned,
        configurations_declared=len(configs),
        configurations_kept=len(pruned.configurations()),
        samples_total=len(db),
        refinement_rounds=adaptive_rounds,
        merged_into={c: rep_map[c] for c in rep_map if rep_map[c] != c},
    )
