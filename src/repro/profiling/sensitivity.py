"""Sensitivity analysis: where does the database need more samples?

The paper describes "a separate tool [that] analyzes this performance data,
performs sensitivity analysis to determine configurations and regions of
the resource space that require additional samples" (the tool itself was
unfinished at publication — Section 7.1 — so this module also serves as
the reproduction of that missing piece; ablation A2 evaluates it).

Method: along each resource dimension, for each configuration and metric,
examine consecutive sample triples on grid lines.  The *curvature score* of
an interior sample is the absolute difference between its measured value
and the linear interpolation of its neighbours, normalized by the local
value scale.  High scores mean piecewise-linear interpolation is likely to
be wrong nearby, so the surrounding intervals' midpoints are proposed as
refinement points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tunable import Configuration
from .database import PerformanceDatabase
from .resource_space import ResourcePoint

__all__ = ["RefinementProposal", "curvature_scores", "propose_refinements"]


@dataclass(frozen=True)
class RefinementProposal:
    """A suggested additional measurement."""

    config: Configuration
    point: ResourcePoint
    score: float
    dim: str
    metric: str


def _grid_lines(
    db: PerformanceDatabase, config: Configuration, dim: str
) -> List[List[ResourcePoint]]:
    """Sampled points grouped into lines that vary only along ``dim``."""
    other_dims = [d for d in db.resource_dims if d != dim]
    lines: Dict[tuple, List[ResourcePoint]] = {}
    for point in db.points_for(config):
        key = tuple(point[d] for d in other_dims)
        lines.setdefault(key, []).append(point)
    result = []
    for pts in lines.values():
        if len(pts) >= 3:
            result.append(sorted(pts, key=lambda p: p[dim]))
    return result


def curvature_scores(
    db: PerformanceDatabase,
    config: Configuration,
    metric: str,
    dim: str,
) -> List[Tuple[ResourcePoint, float]]:
    """(interior point, normalized curvature) along ``dim`` lines."""
    scores = []
    for line in _grid_lines(db, config, dim):
        xs = np.array([p[dim] for p in line])
        ys = np.array(
            [db.record_at(config, p).metrics[metric] for p in line]
        )
        scale = max(np.max(np.abs(ys)), 1e-12)
        for i in range(1, len(line) - 1):
            frac = (xs[i] - xs[i - 1]) / (xs[i + 1] - xs[i - 1])
            linear = ys[i - 1] + frac * (ys[i + 1] - ys[i - 1])
            scores.append((line[i], float(abs(ys[i] - linear) / scale)))
    return scores


def propose_refinements(
    db: PerformanceDatabase,
    metrics: Sequence[str],
    top_k: int = 8,
    min_score: float = 0.02,
    configs: Optional[Sequence[Configuration]] = None,
) -> List[RefinementProposal]:
    """Midpoints of the intervals flanking the highest-curvature samples.

    Returns at most ``top_k`` proposals (across all configurations, metrics,
    and dimensions), each at a resource point not yet in the database.
    """
    if configs is None:
        configs = db.configurations()
    proposals: Dict[tuple, RefinementProposal] = {}
    for config in configs:
        existing = {p.key for p in db.points_for(config)}
        for metric in metrics:
            for dim in db.resource_dims:
                for line in _grid_lines(db, config, dim):
                    xs = np.array([p[dim] for p in line])
                    ys = np.array(
                        [db.record_at(config, p).metrics[metric] for p in line]
                    )
                    scale = max(np.max(np.abs(ys)), 1e-12)
                    for i in range(1, len(line) - 1):
                        frac = (xs[i] - xs[i - 1]) / (xs[i + 1] - xs[i - 1])
                        linear = ys[i - 1] + frac * (ys[i + 1] - ys[i - 1])
                        score = float(abs(ys[i] - linear) / scale)
                        if score < min_score:
                            continue
                        for lo, hi in ((i - 1, i), (i, i + 1)):
                            mid = 0.5 * (xs[lo] + xs[hi])
                            point = line[i].with_(**{dim: float(mid)})
                            if point.key in existing:
                                continue
                            key = (config.key, point.key)
                            prev = proposals.get(key)
                            if prev is None or prev.score < score:
                                proposals[key] = RefinementProposal(
                                    config=config,
                                    point=point,
                                    score=score,
                                    dim=dim,
                                    metric=metric,
                                )
    ranked = sorted(proposals.values(), key=lambda p: -p.score)
    return ranked[:top_k]
