"""The tunable application object and its run-time instantiation."""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..sandbox import ResourceLimits, Sandbox, Testbed
from ..sim import Event, Simulator
from .environment import ExecutionEnv
from .metrics import QoSMetric, QoSRecorder
from .parameters import ConfigSpace, Configuration, TunabilityError
from .tasks import TaskGraph
from .transitions import ControlBox, TransitionSpec

__all__ = ["AppRuntime", "TunableApp"]


class AppRuntime:
    """Everything one running application instance needs.

    Handed to the application launcher; also the handle the run-time
    adaptation subsystem (monitoring/steering agents) attaches to.
    """

    def __init__(
        self,
        sim: Simulator,
        sandboxes: Dict[str, Sandbox],
        controls: ControlBox,
        qos: QoSRecorder,
        workload: Any = None,
        seed: int = 0,
    ):
        self.sim = sim
        self.sandboxes = sandboxes
        self.controls = controls
        self.qos = qos
        self.workload = workload
        self.seed = seed
        #: Set by instantiate(): the event that fires when the app finishes.
        self.finished: Optional[Event] = None
        #: Optionally set by the launcher: name -> running Process, so
        #: supervision harnesses can adopt the application's processes.
        self.processes: Dict[str, Any] = {}
        #: Optionally set by the launcher: the built application model
        #: (e.g. the image pyramids), so a supervised restart can re-spawn
        #: a process against the same data.
        self.app_model: Any = None

    @property
    def config(self) -> Configuration:
        return self.controls.current

    def sandbox(self, host_name: str) -> Sandbox:
        try:
            return self.sandboxes[host_name]
        except KeyError:
            raise TunabilityError(
                f"no sandbox for host {host_name!r}; have {sorted(self.sandboxes)}"
            ) from None


class TunableApp:
    """A complete tunability specification plus an executable launcher.

    This is the post-preprocessor form of the paper's annotated program:
    control parameters (:class:`ConfigSpace`), execution environment,
    quality metrics, tunable modules (:class:`TaskGraph`), transitions, and
    the code itself (``launcher``).

    ``launcher(rt)`` must start the application's processes on ``rt.sim``
    and return an :class:`Event` that fires when the run completes.
    """

    def __init__(
        self,
        name: str,
        space: ConfigSpace,
        env: ExecutionEnv,
        metrics: Sequence[QoSMetric],
        tasks: TaskGraph,
        transitions: Sequence[TransitionSpec] = (),
        launcher: Optional[Callable[[AppRuntime], Event]] = None,
    ):
        self.name = name
        self.space = space
        self.env = env
        self.metrics: Tuple[QoSMetric, ...] = tuple(metrics)
        self.tasks = tasks
        self.transitions: Tuple[TransitionSpec, ...] = tuple(transitions)
        if launcher is None:
            raise TunabilityError(f"app {name!r} has no launcher")
        self.launcher = launcher
        # Cross-check task declarations against the other annotations.
        metric_names = {m.name for m in self.metrics}
        param_names = {p.name for p in space.parameters}
        resource_names = set(env.resource_names())
        for task in tasks.tasks.values():
            for p in task.params:
                if p not in param_names:
                    raise TunabilityError(
                        f"task {task.name!r} references unknown parameter {p!r}"
                    )
            for m in task.metrics:
                if m not in metric_names:
                    raise TunabilityError(
                        f"task {task.name!r} references unknown metric {m!r}"
                    )
            for r in task.resources:
                if r not in resource_names:
                    raise TunabilityError(
                        f"task {task.name!r} references unknown resource {r!r}"
                    )

    def configurations(self):
        return self.space.enumerate()

    def metric(self, name: str) -> QoSMetric:
        for m in self.metrics:
            if m.name == name:
                return m
        raise TunabilityError(f"unknown metric {name!r}")

    def instantiate(
        self,
        testbed: Testbed,
        config: Configuration,
        limits: Mapping[str, ResourceLimits] = (),
        workload: Any = None,
        seed: int = 0,
        sandbox_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> AppRuntime:
        """Create sandboxes and start the application on ``testbed``.

        ``limits`` maps host names to their sandbox resource limits (hosts
        not mentioned run unconstrained).  ``sandbox_kwargs`` are forwarded
        to every sandbox (e.g. ``fault_cost`` for disk-backed paging).
        Returns the :class:`AppRuntime`; ``rt.finished`` fires when the run
        completes.
        """
        self.space.validate(config)
        limits = dict(limits) if limits else {}
        sandboxes: Dict[str, Sandbox] = {}
        for host_name in self.env.hosts:
            if host_name not in testbed.hosts:
                raise TunabilityError(
                    f"testbed lacks host {host_name!r} required by app {self.name!r}"
                )
            sandboxes[host_name] = testbed.sandbox(
                host_name,
                limits.get(host_name, ResourceLimits()),
                name=f"{self.name}.{host_name}",
                **dict(sandbox_kwargs or {}),
            )
        controls = ControlBox(config, self.transitions)
        qos = QoSRecorder(self.metrics)
        rt = AppRuntime(
            sim=testbed.sim,
            sandboxes=sandboxes,
            controls=controls,
            qos=qos,
            workload=workload,
            seed=seed,
        )
        rt.finished = self.launcher(rt)
        return rt
