"""Tunable modules (the ``task`` construct) and the task DAG.

"The abstract model of a tunable application is that of a family of DAGs
built up from individual modules."  A :class:`TaskSpec` names one module
with the control parameters that affect it, the environment resources it
uses, the quality metrics it produces, and an optional guard over
configurations.  :class:`TaskGraph` holds inter-task control flow and
checks it is acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .parameters import Configuration, TunabilityError

__all__ = ["TaskSpec", "TaskGraph"]


@dataclass(frozen=True)
class TaskSpec:
    """One tunable application module.

    Mirrors Fig. 2's ``task module[l][dR][c] [client.CPU, client.network]
    [QoS.transmit_time, ...]`` header.
    """

    name: str
    params: Tuple[str, ...] = ()
    resources: Tuple[str, ...] = ()
    metrics: Tuple[str, ...] = ()
    guard: Optional[Callable[[Configuration], bool]] = None

    def instance_name(self, config: Configuration) -> str:
        """The task handle with parameters evaluated as name-value pairs.

        "The control parameters in the task name are evaluated as name-value
        pairs when the task construct is instantiated at run time."
        """
        return self.name + "".join(f"[{p}={config[p]}]" for p in self.params)

    def enabled(self, config: Configuration) -> bool:
        """Does this task participate in the execution path of ``config``?"""
        return self.guard is None or self.guard(config)


class TaskGraph:
    """DAG of tasks (inter-task control flow)."""

    def __init__(self, tasks: Sequence[TaskSpec], edges: Sequence[Tuple[str, str]] = ()):
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise TunabilityError(f"duplicate task names: {names!r}")
        self.tasks: Dict[str, TaskSpec] = {t.name: t for t in tasks}
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(names)
        for a, b in edges:
            for node in (a, b):
                if node not in self.tasks:
                    raise TunabilityError(f"edge references unknown task {node!r}")
            self.graph.add_edge(a, b)
        if not nx.is_directed_acyclic_graph(self.graph):
            cycle = nx.find_cycle(self.graph)
            raise TunabilityError(f"task graph has a cycle: {cycle!r}")

    def __contains__(self, name: str) -> bool:
        return name in self.tasks

    def task(self, name: str) -> TaskSpec:
        try:
            return self.tasks[name]
        except KeyError:
            raise TunabilityError(f"unknown task {name!r}") from None

    def execution_path(self, config: Configuration) -> List[TaskSpec]:
        """Tasks enabled under ``config``, in topological order.

        This is "the family of DAGs": each configuration selects the
        subgraph of tasks whose guards accept it.
        """
        order = list(nx.topological_sort(self.graph))
        return [self.tasks[n] for n in order if self.tasks[n].enabled(config)]

    def resources_used(self, config: Configuration) -> List[str]:
        """Union of resources used along the execution path of ``config``.

        The monitoring agent uses this to decide *which* resources to watch
        for the active configuration.
        """
        seen: Dict[str, None] = {}
        for task in self.execution_path(config):
            for r in task.resources:
                seen.setdefault(r, None)
        return list(seen)
