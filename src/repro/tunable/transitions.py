"""Configuration transitions and the run-time control box.

``TransitionSpec`` is the paper's ``transition (new_control) { ... }``
construct: application-specific code run when a reconfiguration takes
effect (e.g. notifying the server of a new compression method), with an
optional guard deciding whether a particular old→new switch is possible.

``ControlBox`` is the run-time object that makes reconfiguration *safe*:
the steering agent posts a pending configuration, and the application
applies it only at task boundaries / declared transition points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Tuple

from .parameters import Configuration

__all__ = ["TransitionSpec", "ControlBox", "PendingChange"]


@dataclass(frozen=True)
class TransitionSpec:
    """Reconfiguration hook with an optional guard.

    ``handler(ctx, old, new)`` may be a plain function or a generator
    function (when the transition must, e.g., send a control message and
    wait for it); the application drives it via ``ControlBox.apply``.
    """

    handler: Optional[Callable[[Any, Configuration, Configuration], Any]] = None
    guard: Optional[Callable[[Configuration, Configuration], bool]] = None
    name: str = "transition"

    def allows(self, old: Configuration, new: Configuration) -> bool:
        return self.guard is None or self.guard(old, new)


@dataclass
class PendingChange:
    """A reconfiguration waiting for the next safe point."""

    new_config: Configuration
    #: Opaque validity descriptor (the scheduler's resource conditions under
    #: which this configuration was selected).
    conditions: Any = None
    #: Called with (applied: bool) once the change is applied or rejected.
    on_applied: Optional[Callable[[bool], None]] = None


class ControlBox:
    """Live control-parameter state shared by the app and steering agent."""

    def __init__(
        self,
        initial: Configuration,
        transitions: Tuple[TransitionSpec, ...] = (),
    ):
        self.current = initial
        self.transitions: Tuple[TransitionSpec, ...] = tuple(transitions)
        self.pending: Optional[PendingChange] = None
        #: (time, old_config, new_config) log of applied switches.
        self.history: List[Tuple[float, Configuration, Configuration]] = []

    @property
    def has_pending(self) -> bool:
        return self.pending is not None

    def request(self, change: PendingChange) -> None:
        """Post a reconfiguration (steering agent side).

        A newer request supersedes an unapplied older one — the scheduler's
        latest decision wins.
        """
        if change.new_config == self.current:
            # No-op change: report applied immediately.
            if change.on_applied is not None:
                change.on_applied(True)
            return
        superseded = self.pending
        self.pending = change
        if superseded is not None and superseded.on_applied is not None:
            superseded.on_applied(False)

    def guards_allow(self, new_config: Configuration) -> bool:
        return all(t.allows(self.current, new_config) for t in self.transitions)

    def apply(self, ctx: Any, time: float = 0.0) -> Generator:
        """Apply any pending change at a safe point (application side).

        A generator the application yields from at task boundaries /
        transition points::

            yield from controls.apply(ctx, sim.now)

        Runs every transition handler whose guard passes; handlers that are
        generator functions are driven inline (so they can send messages).
        If any guard rejects the switch, the change is refused and the
        steering agent is informed via ``on_applied(False)`` (triggering
        renegotiation).

        Safe points are also where the recovery layer checkpoints: after
        any pending change has been applied (so snapshots always reflect
        post-switch state), an attached supervisor's ``on_safe_point`` is
        notified.  With no supervisor the extra cost is one attribute read.
        """
        try:
            change = self.pending
            if change is None:
                return None
            self.pending = None
            new = change.new_config
            if not self.guards_allow(new):
                if change.on_applied is not None:
                    change.on_applied(False)
                return None
            old = self.current
            for t in self.transitions:
                if t.handler is None:
                    continue
                result = t.handler(ctx, old, new)
                if result is not None and hasattr(result, "send"):
                    yield from result
            self.current = new
            self.history.append((time, old, new))
            if change.on_applied is not None:
                change.on_applied(True)
            return new
        finally:
            recovery = getattr(getattr(ctx, "sim", None), "recovery", None)
            if recovery is not None:
                recovery.on_safe_point(ctx, time)
