"""Control parameters and configurations.

The paper's ``control_parameters`` annotation declares the "knobs" that
select among alternate execution paths (Fig. 2: ``dR``, ``c``, ``l``).  A
:class:`Configuration` is one concrete assignment of values to all knobs —
the unit the performance database indexes and the scheduler switches
between.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = ["ControlParameter", "Configuration", "ConfigSpace", "TunabilityError"]


class TunabilityError(Exception):
    """Raised on invalid tunability specifications or configurations."""


@dataclass(frozen=True)
class ControlParameter:
    """One knob: a named, finite, ordered domain of values."""

    name: str
    domain: Tuple[Any, ...]
    description: str = ""

    def __init__(self, name: str, domain: Sequence[Any], description: str = ""):
        if not name or not name.isidentifier():
            raise TunabilityError(f"parameter name must be an identifier, got {name!r}")
        domain = tuple(domain)
        if not domain:
            raise TunabilityError(f"parameter {name!r} has an empty domain")
        if len(set(domain)) != len(domain):
            raise TunabilityError(f"parameter {name!r} has duplicate domain values")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "domain", domain)
        object.__setattr__(self, "description", description)

    def validate(self, value: Any) -> None:
        if value not in self.domain:
            raise TunabilityError(
                f"{value!r} not in domain of parameter {self.name!r}: {self.domain!r}"
            )


class Configuration(Mapping):
    """Immutable, hashable assignment of control-parameter values.

    Accessed both mapping-style (``config["dR"]``) and attribute-style
    (``config.dR``), echoing the paper's ``control.dR`` notation.
    """

    __slots__ = ("_values", "_key")

    def __init__(self, values: Mapping[str, Any]):
        object.__setattr__(self, "_values", dict(values))
        object.__setattr__(
            self, "_key", tuple(sorted(self._values.items(), key=lambda kv: kv[0]))
        )

    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __getattr__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise TunabilityError("Configuration is immutable; use with_()")

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other) -> bool:
        if isinstance(other, Configuration):
            return self._key == other._key
        if isinstance(other, Mapping):
            return dict(self._values) == dict(other)
        return NotImplemented

    @property
    def key(self) -> tuple:
        """Canonical sorted-items tuple (stable database key)."""
        return self._key

    def with_(self, **changes: Any) -> "Configuration":
        merged = dict(self._values)
        merged.update(changes)
        return Configuration(merged)

    def label(self) -> str:
        """Compact human-readable form, e.g. ``c=lzw,dR=80,l=4``."""
        return ",".join(f"{k}={v}" for k, v in self._key)

    def __repr__(self) -> str:
        return f"Configuration({self.label()})"


class ConfigSpace:
    """The guarded cartesian product of all control-parameter domains.

    ``guard`` mirrors the paper's guard expressions on tasks: assignments it
    rejects are not valid application configurations.
    """

    def __init__(
        self,
        parameters: Sequence[ControlParameter],
        guard: Optional[Callable[[Configuration], bool]] = None,
    ):
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise TunabilityError(f"duplicate parameter names in {names!r}")
        if not parameters:
            raise TunabilityError("a config space needs at least one parameter")
        self.parameters: List[ControlParameter] = list(parameters)
        self.guard = guard
        self._by_name: Dict[str, ControlParameter] = {p.name: p for p in parameters}

    def __contains__(self, config: Configuration) -> bool:
        try:
            self.validate(config)
        except TunabilityError:
            return False
        return True

    def parameter(self, name: str) -> ControlParameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise TunabilityError(f"unknown parameter {name!r}") from None

    def validate(self, config: Configuration) -> None:
        """Raise unless ``config`` assigns every knob a legal value."""
        missing = set(self._by_name) - set(config)
        extra = set(config) - set(self._by_name)
        if missing or extra:
            raise TunabilityError(
                f"configuration keys mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )
        for name, value in config.items():
            self._by_name[name].validate(value)
        if self.guard is not None and not self.guard(config):
            raise TunabilityError(f"configuration {config.label()} violates the guard")

    def enumerate(self) -> List[Configuration]:
        """All valid configurations, in deterministic domain order."""
        names = [p.name for p in self.parameters]
        configs = []
        for combo in product(*(p.domain for p in self.parameters)):
            config = Configuration(dict(zip(names, combo)))
            if self.guard is None or self.guard(config):
                configs.append(config)
        if not configs:
            raise TunabilityError("guard rejects every configuration")
        return configs

    def size(self) -> int:
        return len(self.enumerate())

    def default(self) -> Configuration:
        """First valid configuration (each knob at its first domain value)."""
        return self.enumerate()[0]
