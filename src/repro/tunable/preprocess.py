"""The preprocessor: turns a tunability specification into artifacts.

In the paper, a source-to-source preprocessor converts the annotated
program into (a) the executable application modules, (b) steering and
monitoring agents, and (c) performance-database templates.  Here the
executable form already exists (the :class:`TunableApp` launcher), so the
preprocessor's outputs are the declarative artifacts:

- :class:`ConfigFile` — the enumeration of valid configurations the
  profiling driver loops over ("a driver program ... looks up a
  configuration file listing the various application configurations");
- :class:`DatabaseTemplate` — the dimensions of the performance database
  (parameters × resources × metrics);
- :class:`MonitoringPlan` — which resources the monitoring agent should
  watch under each configuration (derived from task resource annotations).

All three serialize to plain dicts (JSON-ready).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .app import TunableApp
from .parameters import Configuration

__all__ = ["ConfigFile", "DatabaseTemplate", "MonitoringPlan", "Preprocessor"]


@dataclass
class ConfigFile:
    """Enumerated configurations of one application."""

    app_name: str
    parameters: Dict[str, Tuple[Any, ...]]
    configurations: List[Configuration]

    def to_dict(self) -> dict:
        return {
            "app": self.app_name,
            "parameters": {k: list(v) for k, v in self.parameters.items()},
            "configurations": [dict(c) for c in self.configurations],
        }


@dataclass
class DatabaseTemplate:
    """Schema of the performance database for one application."""

    app_name: str
    param_names: List[str]
    resource_dims: List[str]
    metric_names: List[str]
    metric_directions: Dict[str, str]

    def to_dict(self) -> dict:
        return {
            "app": self.app_name,
            "params": list(self.param_names),
            "resources": list(self.resource_dims),
            "metrics": list(self.metric_names),
            "directions": dict(self.metric_directions),
        }


@dataclass
class MonitoringPlan:
    """Per-configuration monitoring directives.

    "The behavior of the monitoring agent is customized to the currently
    active configuration, affecting ... which resources are monitored."
    """

    app_name: str
    #: Configuration key -> resources to monitor while it is active.
    watch: Dict[tuple, List[str]] = field(default_factory=dict)

    def resources_for(self, config: Configuration) -> List[str]:
        return self.watch.get(config.key, [])

    def to_dict(self) -> dict:
        return {
            "app": self.app_name,
            "watch": {str(dict(k)): v for k, v in self.watch.items()},
        }


class Preprocessor:
    """Generates the declarative artifacts from a :class:`TunableApp`."""

    def __init__(self, app: TunableApp):
        self.app = app

    def config_file(self) -> ConfigFile:
        return ConfigFile(
            app_name=self.app.name,
            parameters={p.name: p.domain for p in self.app.space.parameters},
            configurations=self.app.configurations(),
        )

    def database_template(self) -> DatabaseTemplate:
        return DatabaseTemplate(
            app_name=self.app.name,
            param_names=[p.name for p in self.app.space.parameters],
            resource_dims=self.app.env.resource_names(),
            metric_names=[m.name for m in self.app.metrics],
            metric_directions={m.name: m.better for m in self.app.metrics},
        )

    def monitoring_plan(self) -> MonitoringPlan:
        plan = MonitoringPlan(app_name=self.app.name)
        for config in self.app.configurations():
            plan.watch[config.key] = self.app.tasks.resources_used(config)
        return plan
