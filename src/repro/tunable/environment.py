"""Execution-environment specification (the ``execution_env`` annotation).

Declares the system components — hosts and links — an application runs on,
and which resources each encapsulates.  The profiling driver uses this to
derive the dimensions of the resource space; the testbed uses it to build
the simulated platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..sandbox.testbed import HostSpec, LinkSpec

__all__ = ["HostComponent", "LinkComponent", "ExecutionEnv", "RESOURCE_KINDS"]

#: Resource kinds a host encapsulates.  Section 4.1 characterizes a host
#: by CPU, memory, and network; Section 5.1 adds disk to what the sandbox
#: can constrain, so it is a first-class kind here too.
RESOURCE_KINDS = ("cpu", "memory", "network", "disk")


@dataclass(frozen=True)
class HostComponent:
    """One host in the execution environment.

    ``cpu_speed`` is the nominal full-capacity speed used when the testbed
    instantiates this host (work units/second; see the machine catalog).
    """

    name: str
    cpu_speed: float = 450.0
    mem_pages: int = 32768
    resources: Tuple[str, ...] = RESOURCE_KINDS

    def __post_init__(self) -> None:
        for r in self.resources:
            if r not in RESOURCE_KINDS:
                raise ValueError(f"unknown resource kind {r!r} on host {self.name!r}")

    def to_spec(self) -> HostSpec:
        return HostSpec(name=self.name, cpu_speed=self.cpu_speed, mem_pages=self.mem_pages)


@dataclass(frozen=True)
class LinkComponent:
    """A network link between two declared hosts.

    The visualization app leaves the link implicit ("link resource
    constraints can be captured in terms of constraints on host network
    resources"), but the framework supports declaring links explicitly.
    """

    a: str
    b: str
    bandwidth: float = 100e6 / 8
    latency: float = 0.0005

    def to_spec(self) -> LinkSpec:
        return LinkSpec(a=self.a, b=self.b, bandwidth=self.bandwidth, latency=self.latency)


class ExecutionEnv:
    """The set of hosts and links an application executes on."""

    def __init__(
        self,
        hosts: Sequence[HostComponent],
        links: Sequence[LinkComponent] = (),
    ):
        names = [h.name for h in hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate host names: {names!r}")
        if not hosts:
            raise ValueError("an execution environment needs at least one host")
        self.hosts: Dict[str, HostComponent] = {h.name: h for h in hosts}
        for link in links:
            for end in (link.a, link.b):
                if end not in self.hosts:
                    raise ValueError(f"link endpoint {end!r} is not a declared host")
        self.links: List[LinkComponent] = list(links)

    def host_specs(self) -> List[HostSpec]:
        return [h.to_spec() for h in self.hosts.values()]

    def link_specs(self) -> List[LinkSpec]:
        return [l.to_spec() for l in self.links]

    def resource_names(self) -> List[str]:
        """Fully qualified resource dimension names, e.g. ``client.cpu``."""
        names = []
        for host in self.hosts.values():
            for kind in host.resources:
                names.append(f"{host.name}.{kind}")
        return names

    def validate_resource(self, qualified: str) -> None:
        if qualified not in self.resource_names():
            raise ValueError(
                f"unknown resource {qualified!r}; known: {self.resource_names()}"
            )
