"""Application tunability: the paper's specification framework (Section 4)."""

from .app import AppRuntime, TunableApp
from .environment import RESOURCE_KINDS, ExecutionEnv, HostComponent, LinkComponent
from .metrics import MetricError, MetricRange, QoSMetric, QoSRecorder
from .parameters import ConfigSpace, Configuration, ControlParameter, TunabilityError
from .preprocess import ConfigFile, DatabaseTemplate, MonitoringPlan, Preprocessor
from .tasks import TaskGraph, TaskSpec
from .transitions import ControlBox, PendingChange, TransitionSpec

__all__ = [
    "ControlParameter",
    "Configuration",
    "ConfigSpace",
    "TunabilityError",
    "QoSMetric",
    "QoSRecorder",
    "MetricRange",
    "MetricError",
    "ExecutionEnv",
    "HostComponent",
    "LinkComponent",
    "RESOURCE_KINDS",
    "TaskSpec",
    "TaskGraph",
    "TransitionSpec",
    "ControlBox",
    "PendingChange",
    "TunableApp",
    "AppRuntime",
    "Preprocessor",
    "ConfigFile",
    "DatabaseTemplate",
    "MonitoringPlan",
]
