"""Application quality (QoS) metrics and their run-time recording.

Mirrors the paper's ``QoS_metric`` declaration and ``QoS_monitor`` code
blocks (Fig. 2): a metric declares *what* quality means and which direction
is better; a :class:`QoSRecorder` is the per-run object the instrumented
application updates, keeping both final values and time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["QoSMetric", "MetricRange", "QoSRecorder", "MetricError"]


class MetricError(Exception):
    """Raised on invalid metric declarations or updates."""


@dataclass(frozen=True)
class QoSMetric:
    """Declaration of one application output-quality metric.

    ``better`` is "lower" (e.g. transmission time) or "higher" (e.g.
    resolution); the paper requires that values of the same metric be
    comparable, which this encodes.
    """

    name: str
    better: str = "lower"
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.better not in ("lower", "higher"):
            raise MetricError(
                f"metric {self.name!r}: better must be 'lower' or 'higher', "
                f"got {self.better!r}"
            )

    def is_better(self, a: float, b: float) -> bool:
        """True if value ``a`` is strictly better than ``b``."""
        return a < b if self.better == "lower" else a > b

    def best(self, values: Sequence[float]) -> float:
        if not values:
            raise MetricError(f"no values for metric {self.name!r}")
        return min(values) if self.better == "lower" else max(values)


@dataclass(frozen=True)
class MetricRange:
    """User-preference value range on one metric (inclusive bounds)."""

    metric: str
    lo: float = float("-inf")
    hi: float = float("inf")

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise MetricError(f"empty range for {self.metric!r}: [{self.lo}, {self.hi}]")

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


class QoSRecorder:
    """Per-run QoS bookkeeping — the run-time form of ``QoS_monitor``.

    Records current metric values, running averages, and a timestamped
    series of every update (used to draw the Fig. 7 time plots).
    """

    def __init__(self, metrics: Sequence[QoSMetric]):
        self.metrics: Dict[str, QoSMetric] = {m.name: m for m in metrics}
        if len(self.metrics) != len(metrics):
            raise MetricError("duplicate metric names")
        self.values: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self.series: List[Tuple[float, str, float]] = []

    def _check(self, name: str) -> None:
        if name not in self.metrics:
            raise MetricError(
                f"unknown metric {name!r}; declared: {sorted(self.metrics)}"
            )

    def update(self, name: str, value: float, time: float = 0.0) -> None:
        """Set the current value of a metric."""
        self._check(name)
        self.values[name] = value
        self.series.append((time, name, value))

    def accumulate(self, name: str, delta: float, time: float = 0.0) -> None:
        """Add to a running total (e.g. ``QoS.transmit_time += t1 - t0``)."""
        self._check(name)
        self.values[name] = self.values.get(name, 0.0) + delta
        self.series.append((time, name, self.values[name]))

    def running_avg(self, name: str, sample: float, time: float = 0.0) -> None:
        """Fold a sample into a running average (``avg(response_time, ...)``)."""
        self._check(name)
        n = self._counts.get(name, 0)
        prev = self.values.get(name, 0.0)
        self.values[name] = (prev * n + sample) / (n + 1)
        self._counts[name] = n + 1
        self.series.append((time, name, self.values[name]))

    def get(self, name: str) -> Optional[float]:
        self._check(name)
        return self.values.get(name)

    def snapshot(self) -> Dict[str, float]:
        return dict(self.values)

    def series_for(self, name: str) -> List[Tuple[float, float]]:
        """(time, value) points of one metric's update history."""
        self._check(name)
        return [(t, v) for (t, m, v) in self.series if m == name]

    def satisfies(self, constraint_ranges: Sequence[MetricRange]) -> bool:
        """Do current values satisfy every range (missing metric = fail)?"""
        for rng in constraint_ranges:
            value = self.values.get(rng.metric)
            if value is None or not rng.contains(value):
                return False
        return True
