"""Fault injection: deterministic, replayable chaos for the simulated cluster.

``FaultPlan`` turns a spec dict into a typed schedule of host crashes,
link outages, partitions, and per-message loss/delay/duplication rules;
``FaultInjector`` executes it against a testbed's network using the seeded
``"faults"`` RNG stream, so every chaos run replays bit-exactly from its
``(seed, spec)`` pair.
"""

from .injector import FaultInjector
from .plan import FaultPlan, FaultPlanError, MessageFaultRule, ScheduledFault

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "ScheduledFault",
    "MessageFaultRule",
    "FaultInjector",
]
