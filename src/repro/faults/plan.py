"""Declarative, replayable fault schedules.

A :class:`FaultPlan` is the full description of everything that will go
wrong during a run: timed infrastructure faults (host crashes, link
outages, partitions) plus windowed per-message fault rules (loss, delay,
duplication).  Plans are built from plain spec dicts and round-trip back
through :meth:`FaultPlan.to_spec`, so a chaos run is replayed exactly by
re-running the same spec with the same seed (the injector draws all
randomness from the dedicated ``faults`` stream of :mod:`repro.sim.rng`).

Spec format::

    {"events": [
        {"kind": "crash", "host": "server", "at": 10.0, "until": 20.0,
         "mode": "queue", "clear": false},
        {"kind": "link-down", "between": ["client", "server"],
         "at": 30.0, "until": 40.0, "mode": "queue"},
        {"kind": "partition", "groups": [["client"], ["server"]],
         "at": 50.0, "until": 60.0, "mode": "drop"},
        {"kind": "loss", "rate": 0.2, "port": "monitor.exchange",
         "at": 0.0, "until": 100.0},
        {"kind": "delay", "extra": 0.05, "jitter": 0.02, "src": "server"},
        {"kind": "duplicate", "rate": 0.1, "dst": "client"},
    ]}

``at`` defaults to 0 and ``until`` to "forever".  Message rules may match
on any combination of ``src``, ``dst``, and ``port`` (omitted = any).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["FaultPlan", "FaultPlanError", "ScheduledFault", "MessageFaultRule"]

_INFRA_KINDS = ("crash", "link-down", "partition", "kill")
_RULE_KINDS = ("loss", "delay", "duplicate")


class FaultPlanError(Exception):
    """Raised for malformed fault specs."""


@dataclass(frozen=True)
class ScheduledFault:
    """A timed infrastructure fault with an optional recovery time."""

    kind: str  # "crash" | "link-down" | "partition" | "kill"
    at: float
    until: Optional[float] = None
    mode: str = "queue"  # "queue" (park traffic) | "drop" (lose it)
    host: Optional[str] = None  # crash
    between: Optional[Tuple[str, str]] = None  # link-down
    groups: Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]] = None  # partition
    clear_mailboxes: bool = False  # crash only
    service: Optional[str] = None  # kill: supervised-service name

    def to_spec(self) -> Dict:
        if self.kind == "kill":
            # One-shot process kill: no window, no traffic mode.
            return {"kind": self.kind, "at": self.at, "service": self.service}
        spec: Dict = {"kind": self.kind, "at": self.at, "mode": self.mode}
        if self.until is not None:
            spec["until"] = self.until
        if self.kind == "crash":
            spec["host"] = self.host
            if self.clear_mailboxes:
                spec["clear"] = True
        elif self.kind == "link-down":
            spec["between"] = list(self.between)
        elif self.kind == "partition":
            spec["groups"] = [list(g) for g in self.groups]
        return spec


@dataclass(frozen=True)
class MessageFaultRule:
    """A windowed per-message fault applied at the delivery gate."""

    kind: str  # "loss" | "delay" | "duplicate"
    at: float = 0.0
    until: float = math.inf
    rate: float = 1.0  # loss / duplicate probability
    extra: float = 0.0  # delay: fixed extra latency (s)
    jitter: float = 0.0  # delay: uniform random extra on top (s)
    copies: int = 1  # duplicate: extra copies injected
    src: Optional[str] = None
    dst: Optional[str] = None
    port: Optional[str] = None

    def active(self, now: float) -> bool:
        return self.at <= now < self.until

    def matches(self, msg) -> bool:
        return (
            (self.src is None or msg.src == self.src)
            and (self.dst is None or msg.dst == self.dst)
            and (self.port is None or msg.port == self.port)
        )

    def to_spec(self) -> Dict:
        spec: Dict = {"kind": self.kind, "at": self.at}
        if math.isfinite(self.until):
            spec["until"] = self.until
        if self.kind in ("loss", "duplicate"):
            spec["rate"] = self.rate
        if self.kind == "delay":
            spec["extra"] = self.extra
            if self.jitter:
                spec["jitter"] = self.jitter
        if self.kind == "duplicate" and self.copies != 1:
            spec["copies"] = self.copies
        for key in ("src", "dst", "port"):
            value = getattr(self, key)
            if value is not None:
                spec[key] = value
        return spec


def _window(entry: Dict, kind: str) -> Tuple[float, Optional[float]]:
    at = float(entry.get("at", 0.0))
    until = entry.get("until")
    if at < 0:
        raise FaultPlanError(f"{kind}: 'at' must be non-negative, got {at!r}")
    if until is not None:
        until = float(until)
        if until <= at:
            raise FaultPlanError(
                f"{kind}: 'until' ({until!r}) must be after 'at' ({at!r})"
            )
    return at, until


def _mode(entry: Dict, kind: str) -> str:
    mode = entry.get("mode", "queue")
    if mode not in ("queue", "drop"):
        raise FaultPlanError(f"{kind}: mode must be queue/drop, got {mode!r}")
    return mode


@dataclass
class FaultPlan:
    """Everything that will go wrong, as data."""

    schedule: List[ScheduledFault] = field(default_factory=list)
    rules: List[MessageFaultRule] = field(default_factory=list)

    @classmethod
    def from_spec(cls, spec) -> "FaultPlan":
        """Parse a spec dict (or a bare list of event entries)."""
        if isinstance(spec, dict):
            events = spec.get("events", [])
        else:
            events = list(spec)
        plan = cls()
        for entry in events:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise FaultPlanError(f"event entry needs a 'kind': {entry!r}")
            kind = entry["kind"]
            at, until = _window(entry, kind)
            if kind == "crash":
                host = entry.get("host")
                if not host:
                    raise FaultPlanError("crash: missing 'host'")
                plan.schedule.append(
                    ScheduledFault(
                        kind, at, until, _mode(entry, kind), host=host,
                        clear_mailboxes=bool(entry.get("clear", False)),
                    )
                )
            elif kind == "link-down":
                between = entry.get("between")
                if not between or len(between) != 2:
                    raise FaultPlanError("link-down: 'between' needs two hosts")
                plan.schedule.append(
                    ScheduledFault(
                        kind, at, until, _mode(entry, kind),
                        between=(str(between[0]), str(between[1])),
                    )
                )
            elif kind == "partition":
                groups = entry.get("groups")
                if not groups or len(groups) != 2 or not all(groups):
                    raise FaultPlanError(
                        "partition: 'groups' needs two non-empty host lists"
                    )
                plan.schedule.append(
                    ScheduledFault(
                        kind, at, until, _mode(entry, kind),
                        groups=(
                            tuple(str(h) for h in groups[0]),
                            tuple(str(h) for h in groups[1]),
                        ),
                    )
                )
            elif kind == "kill":
                service = entry.get("service")
                if not service:
                    raise FaultPlanError("kill: missing 'service'")
                if until is not None:
                    raise FaultPlanError(
                        "kill: is instantaneous (fail-stop + supervised "
                        "restart); 'until' makes no sense — use 'crash' for "
                        "a windowed host outage"
                    )
                plan.schedule.append(
                    ScheduledFault(kind, at, service=str(service))
                )
            elif kind in _RULE_KINDS:
                rate = float(entry.get("rate", 1.0))
                if not 0.0 <= rate <= 1.0:
                    raise FaultPlanError(f"{kind}: rate must be in [0,1], got {rate!r}")
                extra = float(entry.get("extra", 0.0))
                jitter = float(entry.get("jitter", 0.0))
                if kind == "delay" and extra <= 0 and jitter <= 0:
                    raise FaultPlanError("delay: needs positive 'extra' or 'jitter'")
                if extra < 0 or jitter < 0:
                    raise FaultPlanError(f"{kind}: extra/jitter must be non-negative")
                copies = int(entry.get("copies", 1))
                if copies < 1:
                    raise FaultPlanError(f"duplicate: copies must be >= 1, got {copies}")
                plan.rules.append(
                    MessageFaultRule(
                        kind, at, math.inf if until is None else until,
                        rate=rate, extra=extra, jitter=jitter, copies=copies,
                        src=entry.get("src"), dst=entry.get("dst"),
                        port=entry.get("port"),
                    )
                )
            else:
                raise FaultPlanError(
                    f"unknown fault kind {kind!r}; "
                    f"expected one of {_INFRA_KINDS + _RULE_KINDS}"
                )
        plan.schedule.sort(key=lambda f: f.at)
        plan.rules.sort(key=lambda r: r.at)
        plan._check_crash_overlaps()
        return plan

    def _check_crash_overlaps(self) -> None:
        """Reject overlapping crash windows on the same host.

        Overlaps would make recovery order ill-defined: the first window's
        ``until`` would restore a host that a second window still considers
        down.  Windows may touch (one's ``until`` == the next's ``at``).
        """
        by_host: Dict[str, List[ScheduledFault]] = {}
        for fault in self.schedule:
            if fault.kind == "crash":
                by_host.setdefault(fault.host, []).append(fault)
        for host, faults in by_host.items():
            prev = None
            for fault in sorted(faults, key=lambda f: f.at):
                if prev is not None:
                    prev_end = prev.until if prev.until is not None else math.inf
                    if fault.at < prev_end:
                        raise FaultPlanError(
                            f"crash: overlapping windows on host {host!r}: "
                            f"[{prev.at}, {prev_end}) overlaps "
                            f"[{fault.at}, "
                            f"{fault.until if fault.until is not None else math.inf})"
                        )
                prev = fault

    def to_spec(self) -> Dict:
        """Round-trip back to a spec dict (for logging/replay)."""
        return {
            "events": [f.to_spec() for f in self.schedule]
            + [r.to_spec() for r in self.rules]
        }

    @property
    def empty(self) -> bool:
        return not self.schedule and not self.rules

    def horizon(self) -> float:
        """Last scheduled state-change time (inf if a rule never ends)."""
        times = [f.at for f in self.schedule]
        times += [f.until for f in self.schedule if f.until is not None]
        times += [r.at for r in self.rules]
        times += [r.until for r in self.rules]
        return max(times) if times else 0.0
