"""Deterministic fault injection against a simulated cluster.

The :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to a :class:`~repro.cluster.Network`: timed infrastructure faults become
scheduled simulator callbacks, and per-message rules are evaluated at the
network's delivery gate (the injector installs itself as
``network.faults``).  All randomness comes from one seeded generator —
the ``"faults"`` stream of :func:`repro.sim.rng.stream` — so a run is
replayed bit-exactly from ``(seed, spec)``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..cluster.network import DeliveryVerdict, Network
from ..sim import stream
from .plan import FaultPlan, MessageFaultRule, ScheduledFault

__all__ = ["FaultInjector"]

_DELIVER = DeliveryVerdict()


class FaultInjector:
    """Executes a :class:`FaultPlan` against one network."""

    def __init__(
        self,
        network: Network,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.network = network
        self.sim = network.sim
        self.rng = rng if rng is not None else stream(seed, "faults")
        self.plan: Optional[FaultPlan] = None
        self.rules: List[MessageFaultRule] = []
        #: Chronological record of every infrastructure fault applied,
        #: as JSON-friendly dicts (chaos-trajectory output).
        self.log: List[dict] = []
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0

    @classmethod
    def attach(cls, testbed, plan: FaultPlan,
               seed: Optional[int] = None) -> "FaultInjector":
        """Convenience: bind a plan to a testbed (seed defaults to its)."""
        injector = cls(testbed.network,
                       seed=testbed.seed if seed is None else seed)
        injector.install(plan)
        return injector

    # -- plan installation -------------------------------------------------------
    def install(self, plan: FaultPlan) -> "FaultInjector":
        """Schedule the plan's faults relative to the current sim time."""
        if self.plan is not None:
            raise RuntimeError("injector already has an installed plan")
        self.plan = plan
        self.rules = list(plan.rules)
        self.network.faults = self
        now = self.sim.now
        for fault in plan.schedule:
            self.sim.schedule_callback(
                max(0.0, fault.at - now), lambda f=fault: self._apply(f)
            )
            if fault.until is not None:
                self.sim.schedule_callback(
                    max(0.0, fault.until - now), lambda f=fault: self._recover(f)
                )
        return self

    def inject(self, plan: FaultPlan) -> "FaultInjector":
        """Merge an additional plan fragment mid-flight.

        Unlike :meth:`install` (one plan per run, scheduled up front) this
        extends the live injector: the fragment's message rules join the
        per-message gate and its scheduled faults are armed relative to the
        current sim time.  Used by interactive interventions — the fragment
        becomes part of the run's deterministic history (same callbacks,
        same ``"faults"`` RNG stream), so replaying the same fragment at the
        same virtual time reproduces the run bit-exactly.
        """
        if self.plan is None:
            return self.install(plan)
        self.rules.extend(plan.rules)
        now = self.sim.now
        for fault in plan.schedule:
            self.sim.schedule_callback(
                max(0.0, fault.at - now), lambda f=fault: self._apply(f)
            )
            if fault.until is not None:
                self.sim.schedule_callback(
                    max(0.0, fault.until - now), lambda f=fault: self._recover(f)
                )
        return self

    def _record(self, action: str, fault: ScheduledFault) -> None:
        entry = {"t": self.sim.now, "action": action}
        if fault.host is not None:
            entry["host"] = fault.host
        if fault.between is not None:
            entry["between"] = list(fault.between)
        if fault.groups is not None:
            entry["groups"] = [list(g) for g in fault.groups]
        if fault.service is not None:
            entry["service"] = fault.service
        self.log.append(entry)
        obs = self.sim.obs
        if obs is not None:
            attrs = {k: v for k, v in sorted(entry.items()) if k not in ("t",)}
            attrs.pop("action", None)
            obs.instant(f"fault.{action}", cat="fault", **attrs)
            obs.metrics.counter("fault.injections").inc()

    def _apply(self, fault: ScheduledFault) -> None:
        if fault.kind == "crash":
            self.network.fail_host(
                fault.host, mode=fault.mode,
                clear_mailboxes=fault.clear_mailboxes,
            )
        elif fault.kind == "link-down":
            self.network.fail_link(*fault.between, mode=fault.mode)
        elif fault.kind == "partition":
            self.network.partition(*fault.groups, mode=fault.mode)
        elif fault.kind == "kill":
            supervisor = getattr(self.sim, "recovery", None)
            if supervisor is None:
                raise RuntimeError(
                    f"FaultPlan 'kill' event for service {fault.service!r} "
                    "requires an attached Supervisor (sim.recovery is None); "
                    "create repro.recovery.Supervisor(...).attach() before "
                    "installing the plan, or drop the kill event"
                )
            supervisor.kill(fault.service, reason="fault-plan")
        self._record(fault.kind, fault)

    def _recover(self, fault: ScheduledFault) -> None:
        if fault.kind == "crash":
            self.network.restore_host(fault.host)
        elif fault.kind == "link-down":
            self.network.restore_link(*fault.between)
        elif fault.kind == "partition":
            self.network.heal_partition(*fault.groups)
        self._record(f"{fault.kind}-recovered", fault)

    # -- the per-message gate ---------------------------------------------------
    def gate(self, msg) -> DeliveryVerdict:
        """Delivery-gate hook: roll each active matching rule in order."""
        now = self.sim.now
        extra_delay = 0.0
        copies = 1
        touched = False
        for rule in self.rules:
            if not rule.active(now) or not rule.matches(msg):
                continue
            if rule.kind == "loss":
                if self.rng.random() < rule.rate:
                    self.dropped += 1
                    obs = self.sim.obs
                    if obs is not None:
                        obs.instant(
                            "fault.drop", cat="fault",
                            src=msg.src, dst=msg.dst, port=msg.port,
                        )
                        obs.metrics.counter("fault.dropped").inc()
                    return DeliveryVerdict("drop")
            elif rule.kind == "delay":
                extra_delay += rule.extra + (
                    rule.jitter * self.rng.random() if rule.jitter > 0 else 0.0
                )
                touched = True
            elif rule.kind == "duplicate":
                if self.rng.random() < rule.rate:
                    copies += rule.copies
                    touched = True
        if not touched:
            return _DELIVER
        obs = self.sim.obs
        if extra_delay > 0:
            self.delayed += 1
            if obs is not None:
                obs.metrics.counter("fault.delayed").inc()
        if copies > 1:
            self.duplicated += copies - 1
            if obs is not None:
                obs.metrics.counter("fault.duplicated").inc(copies - 1)
        return DeliveryVerdict("deliver", extra_delay=extra_delay, copies=copies)
