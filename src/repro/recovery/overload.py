"""Overload protection: bounded queues, QoS-aware shedding, brownout.

Three cooperating pieces:

- :class:`OverloadPolicy` — the declarative limits: a hard queue capacity
  (beyond which *every* request is shed — backpressure) and a soft shed
  depth beyond which only low-priority requests are shed (QoS-aware
  shedding: the interactive session keeps its latency while flash-crowd
  traffic is turned away).
- :class:`OverloadGuard` — the server-side admission check.  The server
  consults it per request with the current mailbox depth; shed requests
  still get a tiny reply (``shed=True``) so closed-loop clients back off
  instead of hanging on a filtered receive.
- :class:`BrownoutController` — a periodic process watching the guard's
  shed rate.  Sustained shedding above ``enter_shed_rate`` forces the
  adaptation controller to a known-cheap configuration
  (``force_config``); once the rate stays below ``exit_shed_rate`` the
  pin is lifted (``resume_normal``) and normal scheduling resumes.

The guard itself is passive bookkeeping (no events, no RNG); only the
brownout controller schedules, and only when started.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..sim import Interrupt, Process
from ..tunable import AppRuntime, Configuration

__all__ = ["OverloadPolicy", "OverloadGuard", "BrownoutController"]


@dataclass(frozen=True)
class OverloadPolicy:
    """Bounded-queue and shedding limits for one server."""

    #: Hard bound: at this mailbox depth every request is shed.
    queue_capacity: int = 64
    #: Soft bound: beyond this depth, requests with priority below
    #: ``keep_priority`` are shed.
    shed_depth: int = 8
    #: Requests with ``priority >= keep_priority`` survive soft shedding.
    keep_priority: int = 1

    def __post_init__(self) -> None:
        if self.queue_capacity < 1 or self.shed_depth < 0:
            raise ValueError("queue_capacity must be >= 1 and shed_depth >= 0")
        if self.shed_depth > self.queue_capacity:
            raise ValueError(
                f"shed_depth {self.shed_depth} exceeds queue_capacity "
                f"{self.queue_capacity}"
            )


class OverloadGuard:
    """Per-request admission decisions + shed/served accounting."""

    def __init__(self, policy: Optional[OverloadPolicy] = None, sim: Any = None):
        self.policy = policy or OverloadPolicy()
        self.sim = sim
        self.served = 0
        self.shed = 0
        self.shed_low_priority = 0
        self.shed_hard = 0
        self.queue_peak = 0

    def admit(self, request: Any, depth: int) -> bool:
        """True to serve, False to shed. ``depth`` is the queue backlog."""
        self.queue_peak = max(self.queue_peak, depth)
        policy = self.policy
        priority = getattr(request, "priority", policy.keep_priority)
        if depth >= policy.queue_capacity:
            self.shed += 1
            self.shed_hard += 1
        elif depth >= policy.shed_depth and priority < policy.keep_priority:
            self.shed += 1
            self.shed_low_priority += 1
        else:
            self.served += 1
            return True
        if self.sim is not None:
            obs = self.sim.obs
            if obs is not None:
                obs.metrics.counter("recovery.shed").inc()
        return False

    def totals(self) -> dict:
        return {
            "served": self.served,
            "shed": self.shed,
            "shed_low_priority": self.shed_low_priority,
            "shed_hard": self.shed_hard,
            "queue_peak": self.queue_peak,
        }


class BrownoutController:
    """Turns sustained shedding into a deliberate cheap-config switch."""

    def __init__(
        self,
        rt: AppRuntime,
        controller: Any,
        guard: OverloadGuard,
        cheap_config: Configuration,
        period: float = 1.0,
        enter_shed_rate: float = 0.3,
        exit_shed_rate: float = 0.05,
        enter_after: int = 2,
        exit_after: int = 3,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if not 0.0 <= exit_shed_rate <= enter_shed_rate <= 1.0:
            raise ValueError(
                "need 0 <= exit_shed_rate <= enter_shed_rate <= 1"
            )
        if enter_after < 1 or exit_after < 1:
            raise ValueError("enter_after and exit_after must be >= 1")
        self.rt = rt
        self.sim = rt.sim
        self.controller = controller
        self.guard = guard
        self.cheap_config = cheap_config
        self.period = float(period)
        self.enter_shed_rate = float(enter_shed_rate)
        self.exit_shed_rate = float(exit_shed_rate)
        self.enter_after = int(enter_after)
        self.exit_after = int(exit_after)
        self.in_brownout = False
        #: (enter_time, exit_time or None) windows, for payload export.
        self.windows: List[Tuple[float, Optional[float]]] = []
        self._stopped = False
        self.process: Optional[Process] = None

    def start(self) -> "BrownoutController":
        self.process = self.sim.process(self._run(), name="brownout-controller")
        if self.rt.finished is not None and self.rt.finished.callbacks is not None:
            self.rt.finished.callbacks.append(lambda _e: self.stop())
        return self

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        last_served = self.guard.served
        last_shed = self.guard.shed
        above = 0
        below = 0
        try:
            while not self._stopped:
                yield self.sim.timeout(self.period)
                if self._stopped:
                    return
                d_served = self.guard.served - last_served
                d_shed = self.guard.shed - last_shed
                last_served = self.guard.served
                last_shed = self.guard.shed
                total = d_served + d_shed
                rate = (d_shed / total) if total else 0.0
                obs = self.sim.obs
                if obs is not None:
                    obs.metrics.series("recovery.shed_rate").record(
                        self.sim.now, rate
                    )
                if not self.in_brownout:
                    above = above + 1 if rate >= self.enter_shed_rate else 0
                    if above >= self.enter_after:
                        self.in_brownout = True
                        above = 0
                        self.windows.append((self.sim.now, None))
                        self.controller.force_config(
                            self.cheap_config, reason="brownout-enter"
                        )
                else:
                    below = below + 1 if rate <= self.exit_shed_rate else 0
                    if below >= self.exit_after:
                        self.in_brownout = False
                        below = 0
                        if self.windows and self.windows[-1][1] is None:
                            self.windows[-1] = (self.windows[-1][0], self.sim.now)
                        self.controller.resume_normal(reason="brownout-exit")
        except Interrupt:
            return
