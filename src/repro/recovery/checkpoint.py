"""Checkpoint storage for warm restarts and controller failover.

A checkpoint is a plain-data snapshot of one service's state, taken at a
ControlBox safe point (the only instants at which application state is
guaranteed consistent — no reconfiguration is mid-flight).  The store
keeps only the latest checkpoint per service: recovery always resumes
from the most recent safe point, and bounded memory matters more than
history (the trace recorder already keeps the timeline).

Checkpoints must stay JSON-friendly (dicts / lists / tuples / scalars):
the failover protocol replicates them inside heartbeat payloads, and
experiments export them into run payloads for replay comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One snapshot of a service's state."""

    service: str
    #: Monotonic per-service sequence number (replication freshness order).
    seq: int
    #: Simulated time the snapshot was taken.
    time: float
    #: The snapshot itself (plain data, shape owned by the service).
    state: Dict[str, Any]


class CheckpointStore:
    """Latest-wins checkpoint store keyed by service name."""

    def __init__(self) -> None:
        self._latest: Dict[str, Checkpoint] = {}
        self._seq: Dict[str, int] = {}
        #: Total snapshots accepted (observability / overhead accounting).
        self.saved = 0

    def save(self, service: str, time: float, state: Dict[str, Any]) -> Checkpoint:
        seq = self._seq.get(service, 0) + 1
        self._seq[service] = seq
        ckpt = Checkpoint(service=service, seq=seq, time=time, state=state)
        self._latest[service] = ckpt
        self.saved += 1
        return ckpt

    def latest(self, service: str) -> Optional[Checkpoint]:
        return self._latest.get(service)

    def adopt(self, ckpt: Checkpoint) -> bool:
        """Accept a replicated checkpoint if it is fresher than ours."""
        have = self._latest.get(ckpt.service)
        if have is not None and have.seq >= ckpt.seq:
            return False
        self._latest[ckpt.service] = ckpt
        self._seq[ckpt.service] = max(self._seq.get(ckpt.service, 0), ckpt.seq)
        return True

    def services(self):
        return sorted(self._latest)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump (replication / payload export)."""
        return {
            name: {"seq": c.seq, "time": c.time, "state": c.state}
            for name, c in sorted(self._latest.items())
        }
