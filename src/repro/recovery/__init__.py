"""Run-time recovery: supervision, checkpoint/restore, failover, brownout.

The self-healing half of adaptation (ISSUE 6): the paper's runtime
*detects* trouble and *re-plans*; this package *recovers state* —

- :class:`Supervisor` / :class:`RestartPolicy` — supervision trees with
  deterministic backoff, restart budgets, storm escalation, and MTTR
  accounting (binds to the simulator as ``sim.recovery``);
- :class:`CheckpointStore` — safe-point snapshots enabling warm restarts;
- :class:`FailoverMember` — deterministic-rank controller failover over
  replicated checkpoints;
- :class:`OverloadGuard` / :class:`BrownoutController` — bounded queues,
  QoS-aware shedding, and deliberate degradation under sustained load.

See docs/robustness.md for the fault model and protocol descriptions.
"""

from .checkpoint import Checkpoint, CheckpointStore
from .failover import FAILOVER_PORT, FailoverHeartbeat, FailoverMember
from .overload import BrownoutController, OverloadGuard, OverloadPolicy
from .policy import RecoveryError, RestartPolicy
from .supervisor import SupervisedService, Supervisor

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "FailoverMember",
    "FailoverHeartbeat",
    "FAILOVER_PORT",
    "OverloadPolicy",
    "OverloadGuard",
    "BrownoutController",
    "RestartPolicy",
    "RecoveryError",
    "SupervisedService",
    "Supervisor",
]
