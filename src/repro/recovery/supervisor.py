"""The supervision tree: process ownership, restart, and escalation.

A :class:`Supervisor` owns named *services* — groups of simulator
processes (a server, a monitoring agent, the controller plus its
failover heartbeats) — and brings them back when they die:

- death detection is event-driven (a callback on each process's
  completion event), so no polling loop perturbs the simulation;
- restarts follow the service's :class:`RestartPolicy`: deterministic
  exponential backoff whose jitter comes from the supervisor's dedicated
  ``"recovery"`` RNG stream (same seed ⇒ same restart instants);
- a restart storm (``max_restarts`` within ``storm_window``) trips
  escalation instead of looping forever;
- restarts are *warm* when a checkpoint exists (see
  :mod:`repro.recovery.checkpoint`): the service's ``start`` factory
  receives the last snapshot taken at a ControlBox safe point;
- MTTR (death → ready) is measured per restart and exported through
  ``repro.obs`` (histogram ``recovery.mttr``, spans on the timeline).

The supervisor binds to the simulator as ``sim.recovery`` — the same
discovery convention as ``sim.obs`` / ``sim.usage`` — which is how
ControlBox safe points reach :meth:`on_safe_point` and how FaultPlan
``kill`` events reach :meth:`kill` without explicit plumbing.  With no
supervisor attached every hook site is a single ``is None`` check, so
disabled recovery costs nothing.

Determinism: the supervisor draws randomness only for backoff jitter, in
the deterministic order of service deaths; checkpointing is pure data
copying; and a supervisor over services that never die schedules nothing
at all — which is why enabling supervision on a healthy run replays
byte-identically.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Union

from ..sim import Process, Simulator, stream
from ..sim.primitives import Request, StoreGet
from .checkpoint import Checkpoint, CheckpointStore
from .policy import RecoveryError, RestartPolicy

__all__ = ["Supervisor", "SupervisedService"]

# Service lifecycle states.
UP = "up"
DOWN = "down"
RESTARTING = "restarting"
ESCALATED = "escalated"
STOPPED = "stopped"

StartFn = Callable[[Optional[Dict[str, Any]]], Union[Process, Sequence[Process]]]

#: Bucket edges (seconds) for the ``recovery.mttr`` histogram.
MTTR_EDGES = (0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0)


class SupervisedService:
    """One supervised unit: its processes, policy, and bookkeeping."""

    def __init__(
        self,
        name: str,
        start: StartFn,
        policy: RestartPolicy,
        snapshot: Optional[Callable[[], Dict[str, Any]]] = None,
        ready: Optional[Callable[[], bool]] = None,
        on_escalate: Optional[Callable[[str], None]] = None,
        restarts: bool = True,
    ):
        self.name = name
        self.start = start
        self.policy = policy
        self.snapshot = snapshot
        self.ready = ready
        self.on_escalate = on_escalate
        #: False = bare registry entry: deaths are recorded and downtime
        #: accrues, but nothing is restarted (the unsupervised baseline).
        self.restarts = restarts
        self.processes: List[Process] = []
        self.state = UP
        #: Incarnation counter; stale death callbacks from a previous
        #: incarnation are ignored by epoch mismatch.
        self.epoch = 0
        self.registered_at = 0.0
        self.down_since: Optional[float] = None
        self.downtime = 0.0
        self.restart_count = 0
        self.recent_restarts: Deque[float] = deque()

    def alive(self) -> List[Process]:
        return [p for p in self.processes if p.is_alive]


class Supervisor:
    """Owns services, restarts them per policy, and tracks availability."""

    def __init__(
        self,
        sim: Simulator,
        seed: int = 0,
        policy: Optional[RestartPolicy] = None,
        store: Optional[CheckpointStore] = None,
        checkpoint_interval: float = 0.0,
    ):
        self.sim = sim
        self.rng = stream(seed, "recovery")
        self.default_policy = policy or RestartPolicy()
        self.store = store or CheckpointStore()
        #: Minimum simulated time between safe-point checkpoint sweeps.
        self.checkpoint_interval = float(checkpoint_interval)
        self._last_checkpoint: Optional[float] = None
        self.services: Dict[str, SupervisedService] = {}
        self._shutdown = False
        self._shutdown_at: Optional[float] = None
        # -- bookkeeping exported into experiment payloads ------------------
        self.kills = 0
        self.restarts = 0
        self.escalations = 0
        #: Per-restart MTTR records: dicts with service/down_at/ready_at/
        #: mttr/warm/attempts — JSON-friendly for payload export.
        self.mttrs: List[Dict[str, Any]] = []

    # -- discovery binding --------------------------------------------------
    def attach(self) -> "Supervisor":
        """Bind as ``sim.recovery`` so safe points and fault kills find us."""
        self.sim.recovery = self
        return self

    def detach(self) -> None:
        if getattr(self.sim, "recovery", None) is self:
            self.sim.recovery = None

    @property
    def _obs(self):
        return getattr(self.sim, "obs", None)

    # -- registration -------------------------------------------------------
    def supervise(
        self,
        name: str,
        start: StartFn,
        *,
        processes: Optional[Sequence[Process]] = None,
        policy: Optional[RestartPolicy] = None,
        snapshot: Optional[Callable[[], Dict[str, Any]]] = None,
        ready: Optional[Callable[[], bool]] = None,
        on_escalate: Optional[Callable[[str], None]] = None,
        restarts: bool = True,
    ) -> SupervisedService:
        """Register a service.

        ``start(state)`` is the (re)launch factory: ``state`` is None for a
        cold start or the latest checkpoint's state dict for a warm one; it
        returns the new process(es).  When ``processes`` is given the
        service is adopted already-running (the normal case: experiments
        launch the app first, then hand its processes to the supervisor);
        otherwise ``start(None)`` is called here.
        """
        if name in self.services:
            raise RecoveryError(f"service {name!r} already supervised")
        svc = SupervisedService(
            name,
            start,
            policy or self.default_policy,
            snapshot=snapshot,
            ready=ready,
            on_escalate=on_escalate,
            restarts=restarts,
        )
        svc.registered_at = self.sim.now
        self.services[name] = svc
        procs = list(processes) if processes is not None else None
        if procs is None:
            launched = start(None)
            procs = [launched] if isinstance(launched, Process) else list(launched)
        svc.processes = procs
        self._watch(svc)
        return svc

    def _watch(self, svc: SupervisedService) -> None:
        epoch = svc.epoch
        for proc in svc.processes:
            if proc.callbacks is None:
                continue
            proc.callbacks.append(
                lambda event, s=svc, e=epoch: self._on_exit(s, e, event)
            )

    # -- death handling -----------------------------------------------------
    def _on_exit(self, svc: SupervisedService, epoch: int, event) -> None:
        # A failed process event with a listener must be defused or the
        # kernel re-raises the exception after callbacks run.
        if not event._ok:
            event.defused = True
        if self._shutdown or epoch != svc.epoch:
            return
        if svc.state not in (UP, RESTARTING):
            return
        now = self.sim.now
        if svc.state == UP:
            svc.down_since = now
        svc.state = DOWN
        obs = self._obs
        if obs is not None:
            obs.instant("recovery.death", cat="recovery", service=svc.name)
            obs.metrics.counter("recovery.deaths").inc()
        # Tear down any sibling processes of the same incarnation so the
        # whole service restarts as a unit (one-for-all strategy).
        for proc in svc.alive():
            self._reap(proc, f"supervisor:{svc.name}:sibling-down")
        if not svc.restarts:
            return
        self._plan_restart(svc)

    def _plan_restart(self, svc: SupervisedService) -> None:
        now = self.sim.now
        window_start = now - svc.policy.storm_window
        while svc.recent_restarts and svc.recent_restarts[0] < window_start:
            svc.recent_restarts.popleft()
        if len(svc.recent_restarts) >= svc.policy.max_restarts:
            self._escalate(svc)
            return
        attempt = len(svc.recent_restarts)
        delay = svc.policy.delay(attempt, self.rng)
        epoch = svc.epoch
        self.sim.schedule_callback(
            delay, lambda s=svc, e=epoch, a=attempt: self._restart(s, e, a)
        )

    def _escalate(self, svc: SupervisedService) -> None:
        svc.state = ESCALATED
        self.escalations += 1
        obs = self._obs
        if obs is not None:
            obs.instant(
                "recovery.escalated", cat="recovery",
                service=svc.name, restarts=svc.restart_count,
            )
            obs.metrics.counter("recovery.escalations").inc()
        if svc.on_escalate is not None:
            svc.on_escalate(svc.name)

    def _restart(self, svc: SupervisedService, epoch: int, attempt: int) -> None:
        if self._shutdown or epoch != svc.epoch or svc.state != DOWN:
            return
        state: Optional[Dict[str, Any]] = None
        warm = False
        if svc.policy.warm:
            ckpt = self.store.latest(svc.name)
            if ckpt is not None:
                state = ckpt.state
                warm = True
        svc.epoch += 1
        svc.state = RESTARTING
        svc.restart_count += 1
        svc.recent_restarts.append(self.sim.now)
        self.restarts += 1
        launched = svc.start(state)
        svc.processes = [launched] if isinstance(launched, Process) else list(launched)
        self._watch(svc)
        obs = self._obs
        if obs is not None:
            obs.instant(
                "recovery.restart", cat="recovery",
                service=svc.name, attempt=attempt, warm=warm,
            )
            obs.metrics.counter("recovery.restarts").inc()
        self.sim.process(
            self._await_ready(svc, svc.epoch, warm, attempt),
            name=f"supervisor.ready.{svc.name}",
        )

    def _await_ready(self, svc: SupervisedService, epoch: int, warm: bool, attempt: int):
        deadline = self.sim.now + svc.policy.ready_timeout
        while svc.ready is not None and not svc.ready() and self.sim.now < deadline:
            yield self.sim.timeout(svc.policy.ready_poll)
            if self._shutdown or epoch != svc.epoch or svc.state != RESTARTING:
                return
        if self._shutdown or epoch != svc.epoch or svc.state != RESTARTING:
            return
        self._mark_up(svc, warm, attempt)

    def _mark_up(self, svc: SupervisedService, warm: bool, attempt: int) -> None:
        now = self.sim.now
        svc.state = UP
        if svc.down_since is not None:
            down_at = svc.down_since
            mttr = now - down_at
            svc.downtime += mttr
            svc.down_since = None
            self.mttrs.append(
                {
                    "service": svc.name,
                    "down_at": down_at,
                    "ready_at": now,
                    "mttr": mttr,
                    "warm": warm,
                    "attempts": attempt + 1,
                }
            )
            obs = self._obs
            if obs is not None:
                obs.instant(
                    "recovery.ready", cat="recovery",
                    service=svc.name, mttr=mttr, warm=warm,
                )
                obs.metrics.histogram("recovery.mttr", edges=MTTR_EDGES).observe(mttr)

    # -- kills (fault injection) --------------------------------------------
    def kill(self, name: str, reason: str = "injected") -> bool:
        """Fail-stop a service (FaultPlan ``kill`` events land here).

        Interrupts every live process of the service and unwinds whatever
        each was parked on (mailbox waiters, resource requests, nested
        sandbox helper processes) so no orphaned waiter swallows traffic
        meant for the restarted incarnation.  Messages already queued in
        host mailboxes survive — the durable-queue crash model shared with
        host crashes.
        """
        svc = self.services.get(name)
        if svc is None:
            raise RecoveryError(
                f"cannot kill unknown service {name!r}; supervised: "
                f"{sorted(self.services)}"
            )
        if svc.state != UP:
            return False
        self.kills += 1
        obs = self._obs
        if obs is not None:
            obs.instant("recovery.kill", cat="recovery", service=name, reason=reason)
            obs.metrics.counter("recovery.kills").inc()
        # The interrupts below fire the process events, which invoke
        # _on_exit — death handling and restart planning happen there.
        for proc in svc.alive():
            self._reap(proc, f"kill:{name}:{reason}")
        return True

    def _reap(self, proc: Process, reason: str) -> None:
        """Interrupt ``proc`` and unwind the event it was waiting on."""
        if not proc.is_alive or proc is self.sim.active_process:
            return
        target = proc.target
        proc.interrupt(reason)
        if isinstance(target, StoreGet):
            # Detached mailbox waiter: cancel it or it silently consumes
            # the next message addressed to the restarted service.
            target.store.cancel(target)
        elif isinstance(target, Request):
            target.resource.release(target)
        elif isinstance(target, Process) and target.is_alive:
            # Sandbox helper (recv/send wrapper): tear it down too, and
            # defuse its failure since nobody waits on it any more.
            self._reap(target, reason)
            target.defused = True

    # -- checkpointing ------------------------------------------------------
    def on_safe_point(self, ctx: Any, time: float) -> None:
        """ControlBox safe-point hook: snapshot every checkpointable service.

        Strictly passive — pure data reads into the store, no events, no
        RNG — so enabling checkpoints cannot perturb the simulation.
        """
        if self._shutdown:
            return
        if (
            self._last_checkpoint is not None
            and time - self._last_checkpoint < self.checkpoint_interval
        ):
            return
        self._last_checkpoint = time
        obs = self._obs
        for name in sorted(self.services):
            svc = self.services[name]
            if svc.snapshot is None or svc.state != UP:
                continue
            self.store.save(name, time, svc.snapshot())
            if obs is not None:
                obs.metrics.counter("recovery.checkpoints").inc()

    def checkpoint_now(self, name: str) -> Optional[Checkpoint]:
        """Snapshot one service immediately (failover replication)."""
        svc = self.services.get(name)
        if svc is None or svc.snapshot is None or svc.state != UP:
            return None
        return self.store.save(name, self.sim.now, svc.snapshot())

    # -- lifecycle / accounting ---------------------------------------------
    def shutdown(self) -> None:
        """Stop restarting: the run is over, deaths are normal teardown.

        Also the end of availability accounting: open downtime intervals
        close here, and :meth:`availability`/:meth:`summary` default their
        horizon to this instant — otherwise a service that exits a hair
        before this callback runs (the server answering the very
        CloseConnection that finishes the run) would accrue "downtime"
        until whatever padded ``until`` the experiment ran with.
        """
        if self._shutdown:
            return
        self._shutdown = True
        self._shutdown_at = self.sim.now
        for svc in self.services.values():
            if svc.down_since is not None:
                svc.downtime += max(0.0, self.sim.now - svc.down_since)
                svc.down_since = None
            svc.state = STOPPED

    @property
    def shutdown_at(self):
        """Sim time :meth:`shutdown` ran, or ``None`` if it never did."""
        return self._shutdown_at

    def _default_end(self) -> float:
        return self.sim.now if self._shutdown_at is None else self._shutdown_at

    def finalize(self, end_time: Optional[float] = None) -> None:
        """Close open downtime intervals at the end of a run."""
        end = self._default_end() if end_time is None else end_time
        for svc in self.services.values():
            if svc.down_since is not None:
                svc.downtime += max(0.0, end - svc.down_since)
                svc.down_since = None

    def availability(self, end_time: Optional[float] = None) -> Dict[str, float]:
        """Per-service fraction of time up since registration."""
        end = self._default_end() if end_time is None else end_time
        out: Dict[str, float] = {}
        for name in sorted(self.services):
            svc = self.services[name]
            total = end - svc.registered_at
            down = svc.downtime
            if svc.down_since is not None:
                down += max(0.0, end - svc.down_since)
            out[name] = 1.0 if total <= 0 else max(0.0, 1.0 - down / total)
        return out

    def summary(self, end_time: Optional[float] = None) -> Dict[str, Any]:
        """JSON-friendly run summary for experiment payloads."""
        avail = self.availability(end_time)
        return {
            "services": {
                name: {
                    "state": self.services[name].state,
                    "restarts": self.services[name].restart_count,
                    "downtime": round(self.services[name].downtime, 6),
                    "availability": round(avail[name], 6),
                }
                for name in sorted(self.services)
            },
            "kills": self.kills,
            "restarts": self.restarts,
            "escalations": self.escalations,
            "checkpoints": self.store.saved,
            "mttr": [
                {**m, "down_at": round(m["down_at"], 6),
                 "ready_at": round(m["ready_at"], 6), "mttr": round(m["mttr"], 6)}
                for m in self.mttrs
            ],
        }
