"""Declarative restart policies for supervised services.

A :class:`RestartPolicy` describes *when* and *how fast* a supervisor
brings a dead service back: deterministic exponential backoff (with a
bounded jitter term drawn from the supervisor's dedicated ``"recovery"``
RNG stream), a max-restart budget inside a sliding storm window, and the
readiness-poll cadence used to decide when a restarted service counts as
up again (the end of the MTTR interval).

Everything here is pure data + arithmetic: policies never touch the
simulator, so the same policy object can be shared between services.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RestartPolicy", "RecoveryError"]


class RecoveryError(Exception):
    """Raised on supervisor/policy misconfiguration."""


@dataclass(frozen=True)
class RestartPolicy:
    """How a supervisor restarts one service.

    ``delay(attempt)`` grows exponentially: ``base_delay * factor**attempt``
    plus a jitter term uniform in ``[0, jitter)`` (de-synchronising restarts
    of services that died at the same instant), capped at ``max_delay``.

    ``max_restarts`` restarts within a sliding ``storm_window`` trip the
    storm detector: the supervisor stops restarting the service and
    escalates instead of looping forever on a hopeless start.
    """

    base_delay: float = 0.25
    factor: float = 2.0
    jitter: float = 0.05
    max_delay: float = 30.0
    #: Restart budget within ``storm_window`` before escalation.
    max_restarts: int = 5
    storm_window: float = 60.0
    #: Cadence at which the supervisor polls a service's ``ready`` predicate
    #: after relaunching it (bounds MTTR measurement granularity).
    ready_poll: float = 0.05
    #: Give up polling readiness after this long and declare the service up
    #: anyway (a service that runs but never reports ready should not count
    #: as down forever).
    ready_timeout: float = 30.0
    #: Warm restarts resume from the latest checkpoint when one exists.
    warm: bool = True

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.jitter < 0 or self.max_delay <= 0:
            raise RecoveryError("restart delays must be non-negative")
        if self.factor < 1.0:
            raise RecoveryError(f"backoff factor must be >= 1, got {self.factor!r}")
        if self.max_restarts < 1:
            raise RecoveryError(f"max_restarts must be >= 1, got {self.max_restarts!r}")
        if self.storm_window <= 0 or self.ready_poll <= 0 or self.ready_timeout <= 0:
            raise RecoveryError("storm_window/ready_poll/ready_timeout must be positive")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before restart number ``attempt`` (0-based).

        Deterministic given the RNG state: the jitter draw is the only
        randomness, and the supervisor owns a dedicated seeded stream, so
        same-seed runs replay the exact same restart instants.
        """
        base = min(self.base_delay * (self.factor ** attempt), self.max_delay)
        if self.jitter > 0:
            base += rng.random() * self.jitter
        return min(base, self.max_delay + self.jitter)
