"""Controller failover: deterministic-rank takeover over heartbeats.

Each participating host runs a :class:`FailoverMember`: a heartbeat
publisher, a receiver, and an URGENT watchdog tick.  Members are ranked
deterministically (position of the host name in the sorted member list);
the invariant each watchdog enforces from its *local* view is

    "I am active iff no lower-ranked member is live."

So rank 0 (the primary) is active while it lives; when its heartbeats go
silent for ``takeover_after``, the next rank activates — resuming the
controller from the latest checkpoint the primary replicated inside its
heartbeats — and yields again the moment the primary's heartbeats
resume.  Dual-activity is bounded by one heartbeat period plus delivery
latency and is resolved in favour of the lower rank; both controllers
steer through the same ControlBox, whose latest-wins pending slot makes
the overlap harmless.

The watchdog ticks at URGENT priority for the same reason the
adaptation watchdog does: the liveness view at a tick must not depend on
the event queue's FIFO tiebreak against same-instant deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..sim import URGENT, Interrupt, Process, StoreGet
from ..tunable import AppRuntime

__all__ = ["FailoverMember", "FailoverHeartbeat", "FAILOVER_PORT"]

FAILOVER_PORT = "recovery.failover"


@dataclass(frozen=True)
class FailoverHeartbeat:
    """One liveness beacon, optionally carrying replicated state."""

    origin: str
    rank: int
    seq: int
    active: bool
    #: Latest controller checkpoint (only the active member replicates).
    state: Optional[Dict[str, Any]] = None


class FailoverMember:
    """One host's participation in the failover group."""

    def __init__(
        self,
        rt: AppRuntime,
        host_name: str,
        members: List[str],
        *,
        activate: Callable[[Optional[Dict[str, Any]]], None],
        deactivate: Optional[Callable[[], None]] = None,
        snapshot: Optional[Callable[[], Dict[str, Any]]] = None,
        period: float = 0.5,
        takeover_after: float = 1.5,
        message_bytes: float = 128.0,
        state_bytes: float = 512.0,
        initially_active: bool = False,
    ):
        if period <= 0 or takeover_after <= 0:
            raise ValueError("period and takeover_after must be positive")
        self.rt = rt
        self.sim = rt.sim
        self.host_name = host_name
        self.members = sorted(members)
        if host_name not in self.members:
            raise ValueError(f"host {host_name!r} not in members {self.members}")
        self.rank = self.members.index(host_name)
        self.peers = [m for m in self.members if m != host_name]
        #: Called with the latest replicated checkpoint state (or None)
        #: when this member decides it must run the controller.
        self.activate = activate
        #: Called when a lower-ranked member resumes and we stand down.
        self.deactivate = deactivate
        #: Provides the state to replicate while we are the active member.
        self.snapshot = snapshot
        self.period = float(period)
        self.takeover_after = float(takeover_after)
        self.message_bytes = float(message_bytes)
        self.state_bytes = float(state_bytes)
        self.active = bool(initially_active)
        #: origin -> local time its last heartbeat arrived.
        self.last_seen: Dict[str, float] = {}
        #: Latest state replicated by whichever member was active.
        self.last_state: Optional[Dict[str, Any]] = None
        self.seq = 0
        self.takeovers = 0
        self.handbacks = 0
        #: Silence-to-activation latency of each takeover (obs + bench).
        self.failover_latencies: List[float] = []
        self._stopped = False
        self._procs: List[Process] = []
        self._started_at = 0.0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "FailoverMember":
        """(Re)spawn the member's processes; re-invocable after a kill."""
        self._stopped = False
        self._started_at = self.sim.now
        self._procs = [
            self.sim.process(
                self._publisher(), name=f"failover-pub@{self.host_name}"
            ),
            self.sim.process(
                self._receiver(), name=f"failover-recv@{self.host_name}"
            ),
            self.sim.process(
                self._watchdog(), name=f"failover-watch@{self.host_name}"
            ),
        ]
        return self

    def processes(self) -> List[Process]:
        return list(self._procs)

    def stop(self) -> None:
        """Terminate processes and withdraw the receiver's mailbox waiter."""
        if self._stopped:
            return
        self._stopped = True
        sandbox = self.rt.sandboxes.get(self.host_name)
        for proc in self._procs:
            if proc is None or not proc.is_alive or proc is self.sim.active_process:
                continue
            target = proc.target
            proc.interrupt("failover-stop")
            if isinstance(target, StoreGet) and sandbox is not None:
                target.store.cancel(target)

    # -- internals ----------------------------------------------------------
    def _publisher(self):
        sandbox = self.rt.sandboxes.get(self.host_name)
        if sandbox is None:
            return
        try:
            while not self._stopped:
                yield self.sim.timeout(self.period)
                if self._stopped:
                    return
                state = None
                if self.active and self.snapshot is not None:
                    state = self.snapshot()
                self.seq += 1
                beat = FailoverHeartbeat(
                    origin=self.host_name,
                    rank=self.rank,
                    seq=self.seq,
                    active=self.active,
                    state=state,
                )
                size = self.message_bytes + (
                    self.state_bytes if state is not None else 0.0
                )
                for peer in self.peers:
                    yield sandbox.send(peer, FAILOVER_PORT, beat, size=size)
        except Interrupt:
            return

    def _receiver(self):
        sandbox = self.rt.sandboxes.get(self.host_name)
        if sandbox is None:
            return
        mailbox = sandbox.host.mailbox(FAILOVER_PORT)
        try:
            while not self._stopped:
                msg = yield mailbox.get()
                if self._stopped:
                    return
                beat = msg.payload
                self.last_seen[beat.origin] = self.sim.now
                if beat.active and beat.state is not None:
                    self.last_state = beat.state
        except Interrupt:
            return

    def _alive(self, member: str, now: float) -> bool:
        last = self.last_seen.get(member, self._started_at)
        return (now - last) <= self.takeover_after

    def _watchdog(self):
        try:
            while not self._stopped:
                yield self.sim.timeout(self.period, priority=URGENT)
                if self._stopped:
                    return
                now = self.sim.now
                lower_live = [
                    m
                    for m in self.members[: self.rank]
                    if self._alive(m, now)
                ]
                if self.active and lower_live:
                    # A lower-ranked member is back: stand down.
                    self.active = False
                    self.handbacks += 1
                    obs = self.sim.obs
                    if obs is not None:
                        obs.instant(
                            "recovery.failover-yield", cat="recovery",
                            host=self.host_name, to=lower_live[0],
                        )
                    if self.deactivate is not None:
                        self.deactivate()
                elif not self.active and not lower_live:
                    # No live lower rank: the invariant says we must run
                    # the controller (rank 0 asserts this unconditionally).
                    self._take_over(now)
        except Interrupt:
            return

    def _take_over(self, now: float) -> None:
        self.active = True
        self.takeovers += 1
        if self.rank > 0:
            newest = max(
                (
                    self.last_seen.get(m, self._started_at)
                    for m in self.members[: self.rank]
                ),
                default=self._started_at,
            )
            latency = now - newest
        else:
            latency = 0.0
        self.failover_latencies.append(latency)
        obs = self.sim.obs
        if obs is not None:
            obs.instant(
                "recovery.failover", cat="recovery",
                host=self.host_name, rank=self.rank, latency=latency,
            )
            obs.metrics.counter("recovery.takeovers").inc()
            if self.rank > 0:
                obs.metrics.histogram(
                    "recovery.failover_latency",
                    edges=(0.5, 1.0, 2.0, 4.0, 8.0),
                ).observe(latency)
        self.activate(self.last_state)
