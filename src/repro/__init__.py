"""Reproduction of Chang & Karamcheti, "Automatic Configuration and
Run-time Adaptation of Distributed Applications" (HPDC 2000).

Subpackages
-----------
- ``repro.sim``        discrete-event simulation kernel
- ``repro.cluster``    simulated hosts, CPUs, memory, links, network
- ``repro.sandbox``    the virtual execution environment (resource limits)
- ``repro.codecs``     wavelets, LZW/bzip2/RLE codecs, synthetic images
- ``repro.tunable``    application tunability specification (the core API)
- ``repro.profiling``  profile-based modeling and the performance database
- ``repro.runtime``    monitoring agent, resource scheduler, steering agent
- ``repro.apps``       evaluation applications (toy, visualization, streaming)
- ``repro.experiments`` one module per paper figure + ablations
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
