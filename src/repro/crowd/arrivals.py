"""Arrival-rate processes for crowd classes.

Each process maps simulation time to a *per-user* request rate (req/s).
The :class:`~repro.crowd.source.CrowdSource` integrates the rate over a
tick and thins it through the dedicated ``"crowd"`` RNG stream — open
loop draws a Poisson count, closed loop converts the think-time into a
per-tick completion probability for the thinking population.

All processes are pure functions of time: no internal mutable state, no
RNG access.  Randomness lives in exactly one place (the source's tick
loop), which is what keeps million-user runs byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowd",
    "ClosedLoop",
]


class ArrivalProcess:
    """Base class: per-user request rate as a function of sim time."""

    #: Closed-loop processes gate arrivals on the thinking population.
    closed_loop: bool = False

    def rate(self, t: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantRate(ArrivalProcess):
    """Open-loop Poisson arrivals at a fixed per-user rate."""

    per_user: float

    def rate(self, t: float) -> float:
        return self.per_user


@dataclass(frozen=True)
class DiurnalRate(ArrivalProcess):
    """Sinusoidal day/night curve: ``base + amplitude*sin(...)``, clipped at 0.

    ``period`` is the length of one "day" in sim seconds and ``phase``
    shifts the peak; the default peaks a quarter-period in.
    """

    base: float
    amplitude: float
    period: float
    phase: float = 0.0

    def rate(self, t: float) -> float:
        r = self.base + self.amplitude * math.sin(
            2.0 * math.pi * (t / self.period) + self.phase
        )
        return r if r > 0.0 else 0.0

    def peak(self) -> float:
        return self.base + abs(self.amplitude)


@dataclass(frozen=True)
class FlashCrowd(ArrivalProcess):
    """Trapezoidal surge: quiet baseline, linear ramp to a spike, decay back.

    Models the slashdot shape — ``t_start`` begins the ramp, the rate
    holds at ``spike`` between ``t_peak`` and ``t_fall``, and returns to
    ``baseline`` by ``t_end``.
    """

    baseline: float
    spike: float
    t_start: float
    t_peak: float
    t_fall: float
    t_end: float

    def __post_init__(self) -> None:
        if not (self.t_start <= self.t_peak <= self.t_fall <= self.t_end):
            raise ValueError(
                "flash crowd breakpoints must be ordered "
                f"(got {self.t_start}, {self.t_peak}, {self.t_fall}, {self.t_end})"
            )

    def rate(self, t: float) -> float:
        if t < self.t_start or t >= self.t_end:
            return self.baseline
        if t < self.t_peak:
            frac = (t - self.t_start) / max(self.t_peak - self.t_start, 1e-12)
            return self.baseline + (self.spike - self.baseline) * frac
        if t < self.t_fall:
            return self.spike
        frac = (t - self.t_fall) / max(self.t_end - self.t_fall, 1e-12)
        return self.spike + (self.baseline - self.spike) * frac


@dataclass(frozen=True)
class ClosedLoop(ArrivalProcess):
    """Closed-loop think-time model: each idle user re-requests after an
    exponential think time with mean ``think`` seconds.

    The effective per-tick arrival probability for a thinking user is
    ``1 - exp(-dt/think)``; the source draws a binomial over the thinking
    population, so the offered load self-limits under congestion exactly
    like N coroutine clients sleeping between requests.
    """

    think: float
    closed_loop: bool = True

    def rate(self, t: float) -> float:
        return 1.0 / self.think if self.think > 0.0 else 0.0

    def tick_probability(self, dt: float) -> float:
        if self.think <= 0.0:
            return 1.0
        return 1.0 - math.exp(-dt / self.think)
