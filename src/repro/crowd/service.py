"""CrowdAgent: server-side aggregate service for crowd batches.

The agent is the server half of the aggregate protocol.  It receives
:class:`~repro.crowd.source.CrowdBatch` messages on the ordinary request
mailbox, runs each through the server's :class:`OverloadGuard` (one
``admit`` per batch, so brownout shed-rate accounting sees crowd load),
prices admitted work from the *current* configuration, and pushes the
demand into one :class:`~repro.sim.AggregateFlow` per class on the
server's CPU share — where it water-fills against coroutine-client work,
fault injection, and anything else the fleet is doing.

A tick loop converts drained fluid work back into integer request
completions (FIFO within a class) and queues them on a per-class outbox;
a sender process per class ships at most ONE summary transfer at a time,
folding whatever completed meanwhile into the next one.  Coalescing is
what keeps the crowd's link footprint bounded: without it a backlogged
tick loop would pile up concurrent summary transfers and the crowd's
aggregate GPS weight would grow with the backlog, starving every other
flow on the link.  All float progress is tracked against a per-class
high-water mark so residual fractions carry across ticks without drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..cluster.host import Host
from ..sim import AggregateFlow, Event, Simulator
from .source import SUMMARY_HEADER_BYTES, CrowdOwner, CrowdSource, CrowdSummary

__all__ = ["ServiceClass", "CrowdAgent"]


@dataclass(frozen=True)
class ServiceClass:
    """Server-side service spec for one crowd class.

    ``price(config)`` returns ``(work_per_request, reply_bytes_per_request)``
    under a configuration mapping — evaluated at *admission* time, so a
    brownout config switch cheapens new arrivals while queued work keeps
    the price it was admitted at.
    """

    name: str
    price: Callable[[Mapping], Tuple[float, float]]
    #: GPS weight of this class's aggregate CPU flow (≈ worker-pool share).
    weight: float = 1.0
    cap: Optional[float] = None
    #: GPS weight of reply-summary transfers on the network.  ``None``
    #: weights each summary by the requests it covers — per-user fair, but
    #: a million-user crowd then starves every weight-1 flow sharing the
    #: link (including control traffic).  A fixed value bounds the crowd's
    #: aggregate link share the way an egress scheduler class would.
    link_weight: Optional[float] = None


@dataclass
class _QueueEntry:
    seq: int
    n: int
    work: float
    reply_bytes: float
    src: str
    reply_port: str


class CrowdAgent:
    """Aggregate request service attached to one server host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        req_port: str,
        classes: List[ServiceClass],
        config_fn: Callable[[], Mapping],
        guard=None,
        source: Optional[CrowdSource] = None,
        tick: float = 0.25,
    ):
        self.sim = sim
        self.host = host
        self.req_port = req_port
        self.classes = list(classes)
        self.config_fn = config_fn
        self.guard = guard
        self.source = source
        self.tick = float(tick)
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(self.classes)}
        self._flows = [self._make_flow(c) for c in self.classes]
        self._queues: List[List[_QueueEntry]] = [[] for _ in self.classes]
        self._backlog = [0] * len(self.classes)  # queued requests per class
        self._mark = [0.0] * len(self.classes)  # drained work already credited
        # (src, reply_port) -> [served pairs, covered bytes, count]; filled
        # by the tick loop, drained by the per-class sender.
        self._outbox: List[Dict[Tuple[str, str], List]] = [
            {} for _ in self.classes
        ]
        # Admitted requests whose summary has not yet been *delivered*:
        # CPU queue + outbox + in-flight transfer.  This is the depth the
        # overload guard sees — under link congestion the CPU queue can be
        # near-empty while hundreds of thousands of replies wait on the
        # wire, and admission control must push back on exactly that.
        self._undelivered = [0] * len(self.classes)
        self._kick = [Event(sim) for _ in self.classes]
        self._done = False
        self._procs = [
            sim.process(self._recv(), name=f"crowd.agent.{host.name}.recv"),
            sim.process(self._serve(), name=f"crowd.agent.{host.name}.serve"),
        ] + [
            sim.process(
                self._send_loop(i, c),
                name=f"crowd.agent.{host.name}.send.{c.name}",
            )
            for i, c in enumerate(self.classes)
        ]

    def _make_flow(self, spec: ServiceClass) -> AggregateFlow:
        return AggregateFlow(
            self.host.cpu.share,
            weight=spec.weight,
            cap=spec.cap,
            owner=CrowdOwner(f"crowd.{spec.name}"),
        )

    # -- admission -----------------------------------------------------------
    def _recv(self):
        mailbox = self.host.mailbox(self.req_port)
        while True:
            msg = yield mailbox.get()
            batch = msg.payload
            if batch is None:
                break
            idx = self._index.get(batch.cls)
            if idx is None:
                continue
            if self.guard is not None and not self.guard.admit(
                batch, self._undelivered[idx]
            ):
                # Rejected whole: one cheap summary so the source's columns
                # move the users straight back to thinking.
                self.host.send(
                    msg.src,
                    batch.reply_port,
                    CrowdSummary(batch.cls, shed=((batch.seq, batch.n),)),
                    size=SUMMARY_HEADER_BYTES,
                    owner=self._flows[idx].owner,
                )
                continue
            work, reply_bytes = self.classes[idx].price(self.config_fn())
            self._queues[idx].append(
                _QueueEntry(
                    batch.seq, batch.n, float(work), float(reply_bytes),
                    msg.src, batch.reply_port,
                )
            )
            self._backlog[idx] += batch.n
            self._undelivered[idx] += batch.n
            self._flows[idx].add(batch.n * float(work))

    # -- service -------------------------------------------------------------
    def _serve(self):
        sim = self.sim
        while True:
            yield sim.timeout(self.tick)
            for idx, spec in enumerate(self.classes):
                self._drain_class(idx, spec)
                obs = sim.obs
                if obs is not None:
                    obs.metrics.series(f"crowd.{spec.name}.backlog").record(
                        sim.now, float(self._backlog[idx])
                    )
            if self._idle():
                break
        # Wake every sender so it can flush its outbox and exit.
        self._done = True
        for kick in self._kick:
            if not kick.triggered:
                kick.succeed()

    def _drain_class(self, idx: int, spec: ServiceClass) -> None:
        queue = self._queues[idx]
        if not queue:
            return
        flow = self._flows[idx]
        avail = flow.drained() - self._mark[idx]
        # An idle flow has consumed every unit ever admitted, so the whole
        # queue is complete; any ``avail`` shortfall at that point is
        # floating-point drift between the credit mark and the fluid
        # integrator, and must not strand the tail of the run.
        complete = flow.idle
        out = self._outbox[idx]
        added = False
        while queue:
            entry = queue[0]
            if entry.work <= 0.0 or complete:
                k = entry.n
            else:
                k = min(entry.n, int(avail / entry.work + 1e-9))
            if k <= 0:
                break
            entry.n -= k
            credit = k * entry.work
            avail -= credit
            self._mark[idx] += credit
            self._backlog[idx] -= k
            bucket = out.setdefault((entry.src, entry.reply_port), [[], 0.0, 0])
            bucket[0].append((entry.seq, k))
            bucket[1] += k * entry.reply_bytes
            bucket[2] += k
            added = True
            if entry.n > 0:
                break  # head entry only partially covered
            queue.pop(0)
        if added and not self._kick[idx].triggered:
            self._kick[idx].succeed()

    def _send_loop(self, idx: int, spec: ServiceClass):
        """Ship coalesced summaries, one transfer in flight per class."""
        sim = self.sim
        while True:
            if not self._outbox[idx]:
                if self._done:
                    break
                yield self._kick[idx]
                self._kick[idx] = Event(sim)
                continue
            out = self._outbox[idx]
            self._outbox[idx] = {}
            for (src, port), (served, nbytes, count) in sorted(out.items()):
                try:
                    yield self.host.send(
                        src,
                        port,
                        CrowdSummary(spec.name, served=tuple(served)),
                        size=SUMMARY_HEADER_BYTES + nbytes,
                        weight=(
                            float(count) if spec.link_weight is None
                            else spec.link_weight
                        ),
                        owner=self._flows[idx].owner,
                    )
                except Exception:
                    # Delivery failed (host crash mid-transfer): the batch
                    # is lost on the wire; the source's timeouts recover.
                    pass
                finally:
                    self._undelivered[idx] -= count

    def _idle(self) -> bool:
        if self.source is None or not self.source.closed:
            return False
        if any(self._backlog):
            return False
        if any(self._outbox):
            return False
        return all(flow.idle for flow in self._flows)
