"""Vectorized client populations: N users as one deterministic aggregate.

``repro.crowd`` scales adaptation scenarios from hundreds of coroutine
clients to millions of simulated users by representing each population
as columnar per-class state advanced once per tick (`CrowdSource`),
served through per-class :class:`~repro.sim.AggregateFlow` demand on the
server fleet (`CrowdAgent`).  Crowds use the same mailboxes, network
gate, FluidShare resources, overload guard, and metrics registry as
coroutine clients — fault injection, tracing, usage accounting, and the
adaptation controller work unchanged.

See ``docs/scale.md`` for the model and the determinism contract.
"""

from .arrivals import (
    ArrivalProcess,
    ClosedLoop,
    ConstantRate,
    DiurnalRate,
    FlashCrowd,
)
from .service import CrowdAgent, ServiceClass
from .source import (
    BATCH_HEADER_BYTES,
    SUMMARY_HEADER_BYTES,
    CrowdBatch,
    CrowdClass,
    CrowdOwner,
    CrowdSource,
    CrowdSummary,
)

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowd",
    "ClosedLoop",
    "CrowdClass",
    "CrowdBatch",
    "CrowdSummary",
    "CrowdOwner",
    "CrowdSource",
    "CrowdAgent",
    "ServiceClass",
    "BATCH_HEADER_BYTES",
    "SUMMARY_HEADER_BYTES",
]
