"""CrowdSource: N clients as one deterministic aggregate process.

Instead of spawning a coroutine per user, a :class:`CrowdSource` keeps
*columnar* per-class state — numpy tally vectors indexed by class — and
advances the whole population once per tick: draw this tick's arrivals
from the dedicated ``"crowd"`` RNG stream, fold them into the columns,
and emit **one** :class:`CrowdBatch` message per class through the same
``host.send`` network gate coroutine clients use.  Replies come back as
:class:`CrowdSummary` messages covering whole runs of requests, so the
event count per tick is O(classes), independent of N.

Determinism contract (see ``docs/scale.md``):

* all randomness is drawn from one ``stream(seed, "crowd")`` generator,
  in a fixed class order, once per tick — never from the global RNG;
* arrival processes are pure functions of time (no hidden state);
* reads of fluid progress are passive projections (``drained()``), so
  instrumentation cannot perturb the schedule.

Together these make a million-user run byte-identical across repeats
and byte-identical whether or not observers are attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..cluster.host import Host
from ..sim import AllOf, Event, Simulator, stream
from .arrivals import ArrivalProcess, ClosedLoop

__all__ = ["CrowdClass", "CrowdBatch", "CrowdSummary", "CrowdOwner", "CrowdSource"]

#: Fixed wire overhead per batch/summary message, matching the coroutine
#: clients' request/reply header framing.
BATCH_HEADER_BYTES = 64.0
SUMMARY_HEADER_BYTES = 32.0


class CrowdOwner:
    """Usage-attribution handle for one crowd class (``owner.name`` label)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CrowdOwner {self.name}>"


@dataclass(frozen=True)
class CrowdClass:
    """Static description of one homogeneous client population."""

    name: str
    users: int
    arrivals: ArrivalProcess
    #: Request wire size per aggregated request (bytes).
    request_bytes: float = 64.0
    #: Responses later than this violate the class's QoS target (seconds).
    qos_deadline: float = 1.0
    #: Outstanding requests older than this are written off as lost.
    timeout: float = 8.0
    #: Shedding priority handed to the server's OverloadGuard.
    priority: int = 0
    #: Optional coroutine factory ``session(uid) -> iterator`` for the
    #: per-user sessions mode (equivalence fixtures, small-N baselines).
    session: Optional[Callable[[int], Iterator]] = None


@dataclass(frozen=True)
class CrowdBatch:
    """One tick's arrivals for one class, sent as a single message."""

    cls: str
    seq: int
    n: int
    t_issued: float
    priority: int
    reply_port: str


@dataclass(frozen=True)
class CrowdSummary:
    """Service outcome for runs of aggregated requests.

    ``served``/``shed`` are ``(seq, count)`` pairs; a batch may be
    covered across several summaries, and counts never exceed what the
    matching batch issued.
    """

    cls: str
    served: Tuple[Tuple[int, int], ...] = ()
    shed: Tuple[Tuple[int, int], ...] = ()


@dataclass
class _Pending:
    """Mutable remainder of one issued batch awaiting its outcome."""

    n: int
    t_issued: float


# Column indices into the tally matrix.
_ISSUED, _SERVED, _SHED, _LOST, _SATISFIED, _VIOLATED, _INFLIGHT, _THINKING = range(8)
_COLUMNS = (
    "issued",
    "served",
    "shed",
    "lost",
    "satisfied",
    "violated",
    "inflight",
    "thinking",
)


class CrowdSource:
    """Aggregate client process feeding a server fleet from one host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        server_host: str,
        req_port: str,
        classes: List[CrowdClass],
        seed: int,
        tick: float = 0.25,
        horizon: float = 60.0,
        drain: float = 10.0,
        label: str = "crowd",
    ):
        if not classes:
            raise ValueError("CrowdSource needs at least one class")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate crowd class names: {names}")
        self.sim = sim
        self.host = host
        self.server_host = server_host
        self.req_port = req_port
        self.classes = list(classes)
        self.tick = float(tick)
        self.horizon = float(horizon)
        self.drain = float(drain)
        self.label = label
        self.port = f"crowd.{label}.replies"
        # The dedicated named stream — the only RNG the subsystem touches.
        self.rng = stream(seed, "crowd")
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(self.classes)}
        self.owners = [CrowdOwner(f"crowd.{c.name}") for c in self.classes]
        # Columnar state: one int64 row per class, one column per tally.
        self._cols = np.zeros((len(self.classes), len(_COLUMNS)), dtype=np.int64)
        for i, c in enumerate(self.classes):
            self._cols[i, _THINKING] = c.users
        self._resp_sum = np.zeros(len(self.classes), dtype=np.float64)
        self._resp_max = np.zeros(len(self.classes), dtype=np.float64)
        self._seq = [0] * len(self.classes)
        self._pending: List[Dict[int, _Pending]] = [{} for _ in self.classes]
        # Classes with a session factory are driven by real coroutines
        # (``drive_sessions``); the aggregate tick loop skips them.
        self._aggregate = [
            (i, c) for i, c in enumerate(self.classes) if c.session is None
        ]
        self._closed = False
        self.finished: Event = Event(sim)
        self._procs = [
            sim.process(self._run(), name=f"crowd.{label}.source"),
            sim.process(self._sink(), name=f"crowd.{label}.sink"),
        ]

    # -- introspection ------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Cumulative per-class tallies (plain ints/floats, sorted keys)."""
        out: Dict[str, Dict[str, float]] = {}
        for i, c in enumerate(self.classes):
            row = {name: int(self._cols[i, j]) for j, name in enumerate(_COLUMNS)}
            served = row["served"]
            row["resp_mean"] = float(self._resp_sum[i]) / served if served else 0.0
            row["resp_max"] = float(self._resp_max[i])
            out[c.name] = row
        return out

    def totals(self) -> Dict[str, int]:
        """Population-wide tallies summed across classes."""
        sums = self._cols.sum(axis=0)
        return {name: int(sums[j]) for j, name in enumerate(_COLUMNS)}

    def offered_rate(self, cls: CrowdClass, t: float) -> float:
        """Aggregate offered request rate (req/s) for a class at time ``t``."""
        proc = cls.arrivals
        if proc.closed_loop:
            idx = self._index[cls.name]
            return proc.rate(t) * float(self._cols[idx, _THINKING])
        return proc.rate(t) * cls.users

    # -- the aggregate tick loop --------------------------------------------
    def _run(self):
        sim = self.sim
        rng = self.rng
        eps = 1e-12
        while self._aggregate and sim.now < self.horizon - eps:
            now = sim.now
            self._expire(now)
            for idx, cls in self._aggregate:
                proc = cls.arrivals
                if proc.closed_loop:
                    pool = int(self._cols[idx, _THINKING])
                    p = proc.tick_probability(self.tick)  # type: ignore[attr-defined]
                    n = int(rng.binomial(pool, p)) if pool > 0 and p > 0.0 else 0
                else:
                    lam = proc.rate(now) * cls.users * self.tick
                    n = int(rng.poisson(lam)) if lam > 0.0 else 0
                obs = sim.obs
                if obs is not None:
                    obs.metrics.series(f"crowd.{cls.name}.rate").record(
                        now, self.offered_rate(cls, now)
                    )
                    obs.metrics.series(f"crowd.{cls.name}.inflight").record(
                        now, float(self._cols[idx, _INFLIGHT])
                    )
                if n > 0:
                    self._issue(idx, cls, n, now)
            yield sim.timeout(self.tick)
        # Drain: stop issuing, give in-flight work a grace window.
        deadline = sim.now + self.drain
        while sim.now < deadline - eps and int(self._cols[:, _INFLIGHT].sum()) > 0:
            self._expire(sim.now)
            yield sim.timeout(self.tick)
        self._expire(sim.now, flush=True)
        self._closed = True
        if not self.finished.triggered:
            self.finished.succeed(self.totals())

    def _issue(self, idx: int, cls: CrowdClass, n: int, now: float) -> None:
        seq = self._seq[idx]
        self._seq[idx] = seq + 1
        self._pending[idx][seq] = _Pending(n, now)
        col = self._cols[idx]
        col[_ISSUED] += n
        col[_INFLIGHT] += n
        if cls.arrivals.closed_loop:
            col[_THINKING] -= n
        batch = CrowdBatch(cls.name, seq, n, now, cls.priority, self.port)
        # Fire-and-forget: Network.send defuses the event on failure, and a
        # lost batch is recovered by the timeout scan.
        self.host.send(
            self.server_host,
            self.req_port,
            batch,
            size=BATCH_HEADER_BYTES + n * cls.request_bytes,
            weight=float(n),
            owner=self.owners[idx],
        )
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.counter(f"crowd.{cls.name}.issued").inc(n)

    # -- reply handling ------------------------------------------------------
    def _sink(self):
        mailbox = self.host.mailbox(self.port)
        while True:
            msg = yield mailbox.get()
            summary = msg.payload
            if summary is None:
                break
            self._apply(summary, self.sim.now)

    def _apply(self, summary: CrowdSummary, now: float) -> None:
        idx = self._index.get(summary.cls)
        if idx is None:
            return
        cls = self.classes[idx]
        pend = self._pending[idx]
        col = self._cols[idx]
        obs = self.sim.obs
        shed_n = 0
        for seq, n in summary.shed:
            entry = pend.get(seq)
            if entry is None:
                continue
            take = min(int(n), entry.n)
            entry.n -= take
            if entry.n <= 0:
                del pend[seq]
            col[_SHED] += take
            col[_VIOLATED] += take
            self._release(col, cls, take)
            shed_n += take
        served_n = 0
        sat_n = 0
        for seq, k in summary.served:
            entry = pend.get(seq)
            if entry is None:
                continue
            take = min(int(k), entry.n)
            entry.n -= take
            resp = now - entry.t_issued
            if entry.n <= 0:
                del pend[seq]
            col[_SERVED] += take
            if resp <= cls.qos_deadline:
                col[_SATISFIED] += take
                sat_n += take
            else:
                col[_VIOLATED] += take
            self._resp_sum[idx] += resp * take
            if resp > self._resp_max[idx]:
                self._resp_max[idx] = resp
            self._release(col, cls, take)
            served_n += take
        if obs is not None:
            if served_n:
                obs.metrics.counter(f"crowd.{cls.name}.served").inc(served_n)
                obs.metrics.counter(f"crowd.{cls.name}.satisfied").inc(sat_n)
                if served_n - sat_n:
                    obs.metrics.counter(f"crowd.{cls.name}.violated").inc(
                        served_n - sat_n
                    )
            if shed_n:
                obs.metrics.counter(f"crowd.{cls.name}.shed").inc(shed_n)
                obs.metrics.counter(f"crowd.{cls.name}.violated").inc(shed_n)

    def _release(self, col: np.ndarray, cls: CrowdClass, n: int) -> None:
        col[_INFLIGHT] -= n
        if cls.arrivals.closed_loop:
            col[_THINKING] += n

    def _expire(self, now: float, flush: bool = False) -> None:
        for idx, cls in enumerate(self.classes):
            pend = self._pending[idx]
            if not pend:
                continue
            col = self._cols[idx]
            expired = [
                seq
                for seq, entry in pend.items()
                if flush or now - entry.t_issued >= cls.timeout
            ]
            lost = 0
            for seq in expired:
                entry = pend.pop(seq)
                lost += entry.n
                self._release(col, cls, entry.n)
            if lost:
                col[_LOST] += lost
                col[_VIOLATED] += lost
                obs = self.sim.obs
                if obs is not None:
                    obs.metrics.counter(f"crowd.{cls.name}.lost").inc(lost)
                    obs.metrics.counter(f"crowd.{cls.name}.violated").inc(lost)

    # -- sessions mode -------------------------------------------------------
    def drive_sessions(self):
        """Spawn one real coroutine per user for classes with a ``session``.

        The per-user fallback: identical interface, ordinary processes.
        Used by equivalence fixtures and small-N baselines; the aggregate
        tick loop still runs for session-less classes.
        """
        children = []
        for cls in self.classes:
            if cls.session is None:
                continue
            for uid in range(cls.users):
                children.append(
                    self.sim.process(
                        cls.session(uid), name=f"crowd.{cls.name}.{uid}"
                    )
                )
        if children:
            yield AllOf(self.sim, children)
