"""Build/finalize split for steppable experiment scenarios.

The experiment modules historically constructed, ran, and summarized a
scenario in one monolithic function.  The interactive context
(:mod:`repro.obs.interactive`) needs to *pause* between those stages —
construct everything, hand the simulator to the user for ``step()`` /
``run_until()`` driving, then produce the exact same payload at the end.

A :class:`Scene` is the contract between the two: ``build_<name>()``
performs every construction statement of the original ``run_<name>()``
in the original order (this is byte-identity-gated by the chaos/recovery
/crowd benchmarks), and stores a ``finalize`` closure holding everything
that used to follow ``testbed.run(...)``.  ``run_<name>()`` is then just

    scene = build_<name>(...)
    scene.testbed.run(until=scene.until)
    return scene.finalize()

so the monolithic entry points stay bit-for-bit compatible while the
interactive context can drive the middle leg one event at a time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["Scene"]


class Scene:
    """A constructed-but-not-yet-run experiment scenario.

    Attributes are discovery points for inspectors; any of them may be
    ``None`` when the scenario does not use that subsystem.
    """

    def __init__(
        self,
        name: str,
        seed: int,
        until: float,
        testbed,
        finalize: Callable[[], Tuple[Any, Dict]],
        rt=None,
        controller=None,
        workload=None,
        injector=None,
        supervisor=None,
        guard=None,
        brownout=None,
        client_exchange=None,
        server_exchange=None,
        crowd=None,
        recorder=None,
        usage=None,
        profiler=None,
    ):
        self.name = name
        self.seed = seed
        #: Default run horizon; ``finalize`` assumes the sim has reached a
        #: state equivalent to ``testbed.run(until=self.until)``.
        self.until = until
        self.testbed = testbed
        self.rt = rt
        self.controller = controller
        self.workload = workload
        self.injector = injector
        self.supervisor = supervisor
        self.guard = guard
        self.brownout = brownout
        self.client_exchange = client_exchange
        self.server_exchange = server_exchange
        self.crowd = crowd
        self.recorder = recorder
        self.usage = usage
        self.profiler = profiler
        self._finalize = finalize
        self.result: Optional[Tuple[Any, Dict]] = None

    @property
    def sim(self):
        return self.testbed.sim

    @property
    def finalized(self) -> bool:
        return self.result is not None

    def finalize(self) -> Tuple[Any, Dict]:
        """Tear down and summarize; idempotent (the payload is cached)."""
        if self.result is None:
            self.result = self._finalize()
        return self.result
