"""Figure 4: the testbed emulates physical machines.

(a) Toy application: execution time on a physical PII-333 and PPro-200
    versus the testbed on a PII-450 configured with the *clock-ratio* CPU
    share ("such simple modeling ... is sufficient because the application
    is a tight loop running out of registers").
(b) Active visualization: the same comparison with *SpecInt95-ratio*
    shares, the server bandwidth-limited to 1 MBps.  Emulation error stays
    within a few percent (up to ~8 % for the PPro-200 in the paper, caused
    by heuristic progress estimation and hardware differences — we model
    the latter as a per-machine fixed-cost skew).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..apps import make_toy_app
from ..apps.visualization import VizCosts, VizWorkload, make_viz_app
from ..cluster import MACHINES, PII_333, PII_450, PPRO_200, MachineSpec
from ..sandbox import LimiterMode, ResourceLimits, Testbed
from ..tunable import Configuration
from .common import FigureResult, sweep_cells

__all__ = ["run_fig4a", "run_fig4b"]

_TARGETS: Tuple[MachineSpec, ...] = (PII_333, PPRO_200)


def _fig4a_cell(payload: dict, seed: int) -> dict:
    """Sweep job: physical + clock-ratio-emulated run of one machine.

    Both runs of a machine live in one cell so the physical/emulated
    pairing (and the error note derived from it) stays atomic.
    """
    machine = MACHINES[payload["machine"]]
    app = make_toy_app(cpu_speed=machine.clock_mhz)
    tb = Testbed(host_specs=app.env.host_specs(), seed=seed)
    rt = app.instantiate(tb, Configuration({"scale": 1.0}))
    tb.run(until=3600)
    physical = rt.qos.get("elapsed")

    app450 = make_toy_app(cpu_speed=PII_450.clock_mhz)
    tb450 = Testbed(
        host_specs=app450.env.host_specs(), mode=LimiterMode.QUANTUM, seed=seed
    )
    share = machine.clock_ratio(PII_450)
    rt450 = app450.instantiate(
        tb450,
        Configuration({"scale": 1.0}),
        limits={"node": ResourceLimits(cpu_share=share)},
    )
    tb450.run(until=3600)
    tb450.shutdown()
    return {"physical": physical, "emulated": rt450.qos.get("elapsed")}


def run_fig4a(seed: int = 0, engine=None) -> FigureResult:
    """Toy app: physical machines vs clock-ratio testbed emulation."""
    result = FigureResult(
        figure="Fig 4a",
        title="Toy application on testbed vs physical machines",
        xlabel="machine (index)",
        ylabel="execution time (s)",
    )
    physical = result.new_series("physical")
    emulated = result.new_series("testbed (PII-450, clock-ratio share)")
    values = sweep_cells(
        "repro.experiments.fig4:_fig4a_cell",
        [{"machine": machine.name} for machine in _TARGETS],
        seed=seed,
        engine=engine,
    )
    for i, (machine, cell) in enumerate(zip(_TARGETS, values)):
        physical.add(i, cell["physical"])
        emulated.add(i, cell["emulated"])
        result.note(
            f"{machine.name}: physical={physical.ys[-1]:.2f}s "
            f"emulated={emulated.ys[-1]:.2f}s "
            f"error={abs(emulated.ys[-1]-physical.ys[-1])/physical.ys[-1]*100:.1f}%"
        )
    return result


def _viz_run(
    client_speed: float,
    cpu_share: float = None,
    per_message_skew: float = 0.0,
    seed: int = 0,
    mode: str = LimiterMode.IDEAL,
) -> float:
    """Average per-image transmission time of a 3-image download."""
    costs = VizCosts(
        display_cost=1.2e-4,
        client_round_overhead=2.0 + per_message_skew,
    )
    app = make_viz_app(client_speed=client_speed, server_speed=PII_450.specint95 * 26.2)
    tb = Testbed(
        host_specs=app.env.host_specs(),
        link_specs=app.env.link_specs(),
        mode=mode,
        seed=seed,
    )
    limits: Dict[str, ResourceLimits] = {"server": ResourceLimits(net_bw=1e6)}
    if cpu_share is not None:
        limits["client"] = ResourceLimits(cpu_share=cpu_share)
    wl = VizWorkload(n_images=3, costs=costs)
    rt = app.instantiate(
        tb, Configuration({"dR": 320, "c": "lzw", "l": 4}), limits=limits, workload=wl
    )
    tb.run(until=10000)
    tb.shutdown()
    return rt.qos.get("transmit_time")


def _fig4b_cell(payload: dict, seed: int) -> dict:
    """Sweep job: physical + SpecInt-ratio-emulated viz run of one machine."""
    machine = MACHINES[payload["machine"]]
    t_phys = _viz_run(
        client_speed=machine.specint95 * 26.2,
        per_message_skew=payload["skew"],
        seed=seed,
    )
    t_emul = _viz_run(
        client_speed=PII_450.specint95 * 26.2,
        cpu_share=machine.specint_ratio(PII_450),
        seed=seed,
        mode=LimiterMode.QUANTUM,
    )
    return {"physical": t_phys, "emulated": t_emul}


def run_fig4b(seed: int = 0, engine=None) -> FigureResult:
    """Visualization app: physical machines vs SpecInt-ratio emulation.

    CPU speeds use the SpecInt95 scale (speed = specint * 26.2 puts the
    PII-450 at its 450-unit calibration point).  Physical machines carry a
    small per-message fixed-cost skew standing in for "different network
    cards" and other hardware effects the testbed cannot see.
    """
    result = FigureResult(
        figure="Fig 4b",
        title="Active visualization on testbed vs physical machines "
        "(server bandwidth-limited to 1 MBps)",
        xlabel="machine (index)",
        ylabel="avg image transmission time (s)",
    )
    physical = result.new_series("physical")
    emulated = result.new_series("testbed (PII-450, SpecInt-ratio share)")
    # Per-round fixed-cost skew of the physical machines (older network
    # cards, chipset differences) that the SpecInt-ratio testbed cannot
    # model — the source of the paper's residual error, largest on the
    # PPro-200.
    skews = {PII_333.name: 6.0, PPRO_200.name: 30.0}
    values = sweep_cells(
        "repro.experiments.fig4:_fig4b_cell",
        [
            {"machine": machine.name, "skew": skews[machine.name]}
            for machine in _TARGETS
        ],
        seed=seed,
        engine=engine,
    )
    for i, (machine, cell) in enumerate(zip(_TARGETS, values)):
        t_phys, t_emul = cell["physical"], cell["emulated"]
        physical.add(i, t_phys)
        emulated.add(i, t_emul)
        result.note(
            f"{machine.name}: physical={t_phys:.2f}s emulated={t_emul:.2f}s "
            f"error={abs(t_emul-t_phys)/t_phys*100:.1f}%"
        )
    return result
