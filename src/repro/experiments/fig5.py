"""Figure 5: fovea-size tradeoff as CPU share varies.

(a) Image transmission time and (b) average response time for fovea sizes
{80, 160, 320} across CPU shares: more CPU improves both; a larger fovea
lowers total transmission time but raises per-round response time
(opposite trends — the reason adaptation must pick dR per CPU level).

Uses the Experiment-3 cost calibration (DESIGN.md §5): a fast link, with
client-side rendering dominating.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..apps.visualization import VizCosts, VizWorkload, make_viz_app
from ..exec import AppSpec, default_engine
from ..profiling import (
    ProfilingDriver,
    ResourceDimension,
    ResourcePoint,
    vary_one_plan,
)
from ..sandbox import ResourceLimits, Testbed
from ..tunable import Configuration
from .common import (
    FigureResult,
    attach_instrumentation,
    build_viz_controller,
    detach_instrumentation,
    start_estimate_exchanges,
)
from .scene import Scene

__all__ = [
    "EXP3_COSTS",
    "EXP3_BW",
    "run_fig5",
    "fig5_database",
    "exp3_workload",
    "build_fig5_session",
    "run_fig5_session",
    "DEFAULT_SESSION_VARIATIONS",
]

#: Experiment-3 calibration: rendering cost placed so that the 1 s
#: response bound separates the fovea sizes the way the paper reports —
#: fovea 320 satisfies it at 90 % CPU (≈0.95 s) but not at 40 % (≈1.9 s),
#: and fovea 160 *barely misses* it at 40 % (≈1.05 s), making 80 the
#: scheduler's pick after the drop.  Per-request server work (pyramid
#: extraction) penalizes small fovea increments; 10 MB/s pipe.
EXP3_COSTS = VizCosts(
    display_cost=1.45e-4, client_round_overhead=9.0, server_round_overhead=20.0
)
EXP3_BW = 10e6

FOVEA_SIZES: Tuple[int, ...] = (80, 160, 320)
CPU_SHARES: Tuple[float, ...] = (0.2, 0.3, 0.4, 0.6, 0.8, 0.9, 1.0)


def exp3_workload(config, point, run_seed, n_images: int = 2):
    """Module-level Experiment-3 workload factory (importable by workers)."""
    return VizWorkload(n_images=n_images, costs=EXP3_COSTS, seed=run_seed)


def fig5_database(
    shares: Tuple[float, ...] = CPU_SHARES,
    fovea_sizes: Tuple[int, ...] = FOVEA_SIZES,
    n_images: int = 2,
    seed: int = 0,
    recorder=None,
    engine=None,
    usage=None,
    profiler=None,
):
    """Profile the fovea-size configurations over the CPU-share axis.

    Returns (database, dims, configs) — also used by the Experiment-3
    adaptive run (Fig. 7c/d), which is how the paper uses these curves.
    An optional :class:`repro.obs.TraceRecorder` wraps each measurement
    in a ``profile.measure`` span; since engine workers carry no trace
    context, the sweep engine is only consulted when no instrumentation
    (recorder / usage accountant / kernel profiler) is set — or when
    ``engine`` is passed explicitly.
    """
    app = make_viz_app()
    dims = [
        ResourceDimension("client.cpu", tuple(shares), lo=0.01, hi=1.0),
        ResourceDimension("client.network", (EXP3_BW / 2, EXP3_BW), lo=1.0),
    ]
    app_spec = AppSpec(
        "repro.apps.visualization:make_viz_app",
        workload="repro.experiments.fig5:exp3_workload",
        workload_kwargs={"n_images": n_images},
    )
    if engine is None and recorder is None and usage is None and profiler is None:
        engine = default_engine()
    driver = ProfilingDriver(
        app,
        dims,
        workload_factory=app_spec.build_workload_factory(),
        seed=seed,
        recorder=recorder,
        app_spec=app_spec,
        usage=usage,
        profiler=profiler,
    )
    configs = [
        Configuration({"dR": dr, "c": "lzw", "l": 4}) for dr in fovea_sizes
    ]
    base = ResourcePoint({"client.cpu": 1.0, "client.network": EXP3_BW})
    plan = vary_one_plan(dims, "client.cpu", base)
    db = driver.profile(configs=configs, plan=plan, engine=engine)
    return db, dims, configs


#: CPU-share steps of the single adaptive Experiment-3 session: a drop to
#: the 40 % regime (where fovea 320 and 160 both miss the response bound,
#: per the EXP3 calibration above — the scheduler re-picks 80) and a late
#: recovery that lets adaptation switch back up.
DEFAULT_SESSION_VARIATIONS: Tuple[Tuple[float, float], ...] = (
    (20.0, 0.4),
    (60.0, 0.9),
)


def build_fig5_session(
    seed: int = 0,
    n_images: int = 30,
    variations: Tuple[Tuple[float, float], ...] = DEFAULT_SESSION_VARIATIONS,
    until: float = 2000.0,
    recorder=None,
    usage=None,
    profiler=None,
    tiebreak=None,
) -> Scene:
    """Construct one adaptive Experiment-3 session without running it.

    The fig5 *figure* is a profiling sweep (many independent testbeds);
    this is its adaptive counterpart — a single fovea-rendering session
    over the fig5 performance database whose client CPU share steps
    through ``variations``, so the monitor sees the drop, the response
    bound breaks, and the scheduler re-picks the fovea size exactly as
    the Fig. 5 curves predict.  Scenario of choice for the interactive
    context: short, fault-free, one clean violation -> re-selection ->
    recovery arc (fovea 320 -> 80 at the drop, back to 320 after).
    """
    from ..runtime import Objective, UserPreference
    from ..tunable import MetricRange

    db, _dims, _configs = fig5_database(seed=seed)
    # The paper's Experiment-3 preference: minimize transmission time
    # subject to the 1 s round-response bound that separates the fovea
    # sizes (see EXP3_COSTS above and run_experiment3 in fig7).
    preference = UserPreference.single(
        Objective("transmit_time", "minimize"),
        [MetricRange("response_time", hi=1.0)],
    )
    initial_point = ResourcePoint(
        {"client.cpu": 0.9, "client.network": EXP3_BW}
    )

    app = make_viz_app()
    _scheduler, controller = build_viz_controller(
        app, db, preference, recorder=recorder
    )
    config = controller.select_initial(initial_point).config

    testbed = Testbed(
        host_specs=app.env.host_specs(), link_specs=app.env.link_specs(),
        seed=seed, tiebreak=tiebreak,
    )
    workload = VizWorkload(n_images=n_images, costs=EXP3_COSTS, seed=seed)
    rt = app.instantiate(
        testbed,
        config,
        limits={"client": ResourceLimits(cpu_share=0.9, net_bw=EXP3_BW)},
        workload=workload,
    )
    controller.attach(rt)
    server_agent, client_ex, server_ex = start_estimate_exchanges(rt, controller)

    attach_instrumentation(
        testbed.sim, testbed, config,
        usage=usage, recorder=recorder, profiler=profiler,
    )

    def vary():
        for at, share in variations:
            yield testbed.sim.timeout(at - testbed.sim.now)
            rt.sandboxes["client"].set_limits(
                ResourceLimits(cpu_share=share, net_bw=EXP3_BW)
            )

    if variations:
        testbed.sim.process(vary())

    def _finalize():
        testbed.shutdown()
        if not rt.finished.triggered:
            raise RuntimeError(f"fig5 session did not finish by t={until}")
        return _summarize_fig5_session(
            seed=seed, n_images=n_images, variations=variations,
            controller=controller, rt=rt, workload=workload, testbed=testbed,
            client_ex=client_ex, server_ex=server_ex,
            usage=usage, recorder=recorder, profiler=profiler,
        )

    return Scene(
        name="fig5", seed=seed, until=until, testbed=testbed,
        finalize=_finalize, rt=rt, controller=controller, workload=workload,
        client_exchange=client_ex, server_exchange=server_ex,
        recorder=recorder, usage=usage, profiler=profiler,
    )


def _summarize_fig5_session(
    seed, n_images, variations, controller, rt, workload, testbed,
    client_ex, server_ex, usage, recorder, profiler,
) -> Tuple[FigureResult, Dict]:
    payload: Dict = {
        "experiment": "fig5_session",
        "seed": seed,
        "n_images": n_images,
        "variations": [[at, share] for at, share in variations],
        "events": [
            {
                "t": e.time,
                "kind": e.kind,
                "config": e.config.label() if e.config is not None else None,
            }
            for e in controller.events
        ],
        "switches": [
            {"t": t, "from": old.label(), "to": new.label()}
            for t, old, new in rt.controls.history
        ],
        "final_config": rt.controls.current.label(),
        "qos": rt.qos.snapshot(),
        "image_times": [[t, d] for t, d in workload.image_times],
        "network": {
            "delivered": testbed.network.messages_delivered,
            "lost": testbed.network.messages_lost,
        },
        "exchange": {
            "client_updates_received": client_ex.updates_received,
            "server_updates_received": server_ex.updates_received,
        },
        "total_time": workload.image_times[-1][0] if workload.image_times else 0.0,
    }
    detach_instrumentation(usage=usage, recorder=recorder, profiler=profiler)

    result = FigureResult(
        figure="Fig 5 session",
        title="Adaptive fovea selection as client CPU share steps",
        xlabel="time (s)",
        ylabel="image transmission time (s)",
    )
    series = result.new_series("adaptive session")
    for t, duration in workload.image_times:
        series.add(t, duration)
    for at, share in variations:
        result.note(f"t={at:.1f}s: client CPU share -> {share:g}")
    for switch in payload["switches"]:
        result.note(
            f"t={switch['t']:.1f}s: switched {switch['from']} -> {switch['to']}"
        )
    result.note(f"final config: {payload['final_config']}")
    return result, payload


def run_fig5_session(
    seed: int = 0,
    n_images: int = 30,
    variations: Tuple[Tuple[float, float], ...] = DEFAULT_SESSION_VARIATIONS,
    until: float = 2000.0,
    recorder=None,
    usage=None,
    profiler=None,
    tiebreak=None,
) -> Tuple[FigureResult, Dict]:
    """Run the adaptive Experiment-3 session (see :func:`build_fig5_session`)."""
    scene = build_fig5_session(
        seed=seed, n_images=n_images, variations=variations, until=until,
        recorder=recorder, usage=usage, profiler=profiler, tiebreak=tiebreak,
    )
    scene.testbed.run(until=until)
    return scene.finalize()


def run_fig5(seed: int = 0, engine=None) -> Tuple[FigureResult, FigureResult]:
    """(transmission-time figure, response-time figure)."""
    db, _dims, configs = fig5_database(seed=seed, engine=engine)
    fig_a = FigureResult(
        figure="Fig 5a",
        title="Image transmission time for different fovea sizes vs CPU share",
        xlabel="CPU share (%)",
        ylabel="transmission time (s)",
    )
    fig_b = FigureResult(
        figure="Fig 5b",
        title="Response time for different fovea sizes vs CPU share",
        xlabel="CPU share (%)",
        ylabel="response time (s)",
    )
    for config in configs:
        sa = fig_a.new_series(f"fovea={config.dR}")
        sb = fig_b.new_series(f"fovea={config.dR}")
        for point in db.points_for(config):
            rec = db.record_at(config, point)
            sa.add(point["client.cpu"] * 100, rec.metrics["transmit_time"])
            sb.add(point["client.cpu"] * 100, rec.metrics["response_time"])
        sa.points.sort()
        sb.points.sort()
    return fig_a, fig_b
