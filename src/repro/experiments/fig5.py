"""Figure 5: fovea-size tradeoff as CPU share varies.

(a) Image transmission time and (b) average response time for fovea sizes
{80, 160, 320} across CPU shares: more CPU improves both; a larger fovea
lowers total transmission time but raises per-round response time
(opposite trends — the reason adaptation must pick dR per CPU level).

Uses the Experiment-3 cost calibration (DESIGN.md §5): a fast link, with
client-side rendering dominating.
"""

from __future__ import annotations

from typing import Tuple

from ..apps.visualization import VizCosts, VizWorkload, make_viz_app
from ..exec import AppSpec, default_engine
from ..profiling import (
    ProfilingDriver,
    ResourceDimension,
    ResourcePoint,
    vary_one_plan,
)
from ..tunable import Configuration
from .common import FigureResult

__all__ = ["EXP3_COSTS", "EXP3_BW", "run_fig5", "fig5_database", "exp3_workload"]

#: Experiment-3 calibration: rendering cost placed so that the 1 s
#: response bound separates the fovea sizes the way the paper reports —
#: fovea 320 satisfies it at 90 % CPU (≈0.95 s) but not at 40 % (≈1.9 s),
#: and fovea 160 *barely misses* it at 40 % (≈1.05 s), making 80 the
#: scheduler's pick after the drop.  Per-request server work (pyramid
#: extraction) penalizes small fovea increments; 10 MB/s pipe.
EXP3_COSTS = VizCosts(
    display_cost=1.45e-4, client_round_overhead=9.0, server_round_overhead=20.0
)
EXP3_BW = 10e6

FOVEA_SIZES: Tuple[int, ...] = (80, 160, 320)
CPU_SHARES: Tuple[float, ...] = (0.2, 0.3, 0.4, 0.6, 0.8, 0.9, 1.0)


def exp3_workload(config, point, run_seed, n_images: int = 2):
    """Module-level Experiment-3 workload factory (importable by workers)."""
    return VizWorkload(n_images=n_images, costs=EXP3_COSTS, seed=run_seed)


def fig5_database(
    shares: Tuple[float, ...] = CPU_SHARES,
    fovea_sizes: Tuple[int, ...] = FOVEA_SIZES,
    n_images: int = 2,
    seed: int = 0,
    recorder=None,
    engine=None,
    usage=None,
    profiler=None,
):
    """Profile the fovea-size configurations over the CPU-share axis.

    Returns (database, dims, configs) — also used by the Experiment-3
    adaptive run (Fig. 7c/d), which is how the paper uses these curves.
    An optional :class:`repro.obs.TraceRecorder` wraps each measurement
    in a ``profile.measure`` span; since engine workers carry no trace
    context, the sweep engine is only consulted when no instrumentation
    (recorder / usage accountant / kernel profiler) is set — or when
    ``engine`` is passed explicitly.
    """
    app = make_viz_app()
    dims = [
        ResourceDimension("client.cpu", tuple(shares), lo=0.01, hi=1.0),
        ResourceDimension("client.network", (EXP3_BW / 2, EXP3_BW), lo=1.0),
    ]
    app_spec = AppSpec(
        "repro.apps.visualization:make_viz_app",
        workload="repro.experiments.fig5:exp3_workload",
        workload_kwargs={"n_images": n_images},
    )
    if engine is None and recorder is None and usage is None and profiler is None:
        engine = default_engine()
    driver = ProfilingDriver(
        app,
        dims,
        workload_factory=app_spec.build_workload_factory(),
        seed=seed,
        recorder=recorder,
        app_spec=app_spec,
        usage=usage,
        profiler=profiler,
    )
    configs = [
        Configuration({"dR": dr, "c": "lzw", "l": 4}) for dr in fovea_sizes
    ]
    base = ResourcePoint({"client.cpu": 1.0, "client.network": EXP3_BW})
    plan = vary_one_plan(dims, "client.cpu", base)
    db = driver.profile(configs=configs, plan=plan, engine=engine)
    return db, dims, configs


def run_fig5(seed: int = 0, engine=None) -> Tuple[FigureResult, FigureResult]:
    """(transmission-time figure, response-time figure)."""
    db, _dims, configs = fig5_database(seed=seed, engine=engine)
    fig_a = FigureResult(
        figure="Fig 5a",
        title="Image transmission time for different fovea sizes vs CPU share",
        xlabel="CPU share (%)",
        ylabel="transmission time (s)",
    )
    fig_b = FigureResult(
        figure="Fig 5b",
        title="Response time for different fovea sizes vs CPU share",
        xlabel="CPU share (%)",
        ylabel="response time (s)",
    )
    for config in configs:
        sa = fig_a.new_series(f"fovea={config.dR}")
        sb = fig_b.new_series(f"fovea={config.dR}")
        for point in db.points_for(config):
            rec = db.record_at(config, point)
            sa.add(point["client.cpu"] * 100, rec.metrics["transmit_time"])
            sb.add(point["client.cpu"] * 100, rec.metrics["response_time"])
        sa.points.sort()
        sb.points.sort()
    return fig_a, fig_b
