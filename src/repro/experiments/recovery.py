"""Recovery experiment: supervision, failover, and overload under fire.

The paper's runtime *re-plans* when the environment drifts; this
experiment exercises the :mod:`repro.recovery` layer that *recovers
state* when the application itself breaks.  One run drives the adaptive
visualization app through

- a **crash storm**: the server process is fail-stopped twice and the
  adaptation controller once (FaultPlan ``kill`` events routed through
  the attached :class:`~repro.recovery.Supervisor`), plus a windowed
  host crash — supervised services restart with deterministic backoff,
  warm from ControlBox safe-point checkpoints;
- a **flash crowd**: low-priority closed-loop users hammer the server
  while the interactive session runs; the server's
  :class:`~repro.recovery.OverloadGuard` sheds crowd traffic beyond the
  soft queue depth, and sustained shedding trips the
  :class:`~repro.recovery.BrownoutController` into a known-cheap pinned
  configuration until the crowd passes;
- **controller failover**: a standby :class:`~repro.recovery.FailoverMember`
  on the server host follows the primary's heartbeats (which replicate
  the controller checkpoint) and takes over by deterministic rank while
  the killed controller waits out its restart backoff, handing back when
  the primary's heartbeats resume.

Everything is deterministic: restart jitter comes from the dedicated
``"recovery"`` RNG stream, crowd think times from per-user
``recovery.crowd.<uid>`` streams, and fault times are scripted — so two
runs with the same seed produce byte-identical payloads, supervision on
or off (the benchmark asserts this).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..apps.visualization import VizWorkload, make_viz_app
from ..faults import FaultInjector, FaultPlan
from ..recovery import (
    BrownoutController,
    FailoverMember,
    OverloadGuard,
    OverloadPolicy,
    RestartPolicy,
    Supervisor,
)
from ..sandbox import ResourceLimits, Testbed
from ..tunable import Configuration
from .common import (
    FigureResult,
    attach_instrumentation,
    build_viz_controller,
    closed_loop_viz_user,
    detach_instrumentation,
    start_estimate_exchanges,
    viz_initial_point,
    viz_preference,
)
from .fig6 import EXP1_COSTS, fig6a_database
from .scene import Scene

__all__ = [
    "build_recovery",
    "run_recovery",
    "DEFAULT_RECOVERY_FAULTS",
    "DEFAULT_CROWD",
    "CHEAP_CONFIG",
]

#: The crash storm: two server kills (the second while the flash crowd is
#: still up), a controller kill (exercising failover + warm restart), and
#: a windowed host crash late in the run (exercising the durable-queue
#: crash path and the exchange's restore re-announcement).
DEFAULT_RECOVERY_FAULTS: Dict = {
    "events": [
        {"kind": "kill", "service": "viz-server", "at": 12.0},
        {"kind": "kill", "service": "viz-server", "at": 22.0},
        {"kind": "kill", "service": "controller", "at": 32.0},
        {"kind": "crash", "host": "server", "at": 36.5, "until": 38.5,
         "mode": "queue"},
    ]
}

#: The flash crowd: low-priority closed-loop users on the client host
#: requesting small rings over private reply ports, overlapping the first
#: two server kills.
DEFAULT_CROWD: Dict = {
    "users": 14,
    "start": 8.0,
    "duration": 18.0,
    "think": 0.02,
    "r1": 12,
    "level": 3,
}

#: Where brownout steers: the cheapest configuration in the default
#: space (largest increment, cheap codec, low resolution).
CHEAP_CONFIG = {"dR": 320, "c": "lzw", "l": 3}


def build_recovery(
    seed: int = 0,
    n_images: int = 14,
    fault_spec: Optional[Dict] = None,
    crowd_spec: Optional[Dict] = None,
    supervise: bool = True,
    checkpoints: bool = True,
    failover: bool = True,
    brownout: bool = True,
    until: float = 400.0,
    detect_races: bool = False,
    recorder=None,
    usage=None,
    tiebreak=None,
    profiler=None,
) -> Scene:
    """Construct the recovery scenario without running it.

    Performs every construction statement of :func:`run_recovery` in the
    original order (byte-identity-gated by ``bench_recovery``) and returns
    a :class:`~repro.experiments.scene.Scene` whose ``finalize()``
    produces the figure + payload once the sim reaches ``until``.

    ``supervise=False`` keeps the service *registry* (kill events still
    route, downtime still accrues) but never restarts anything — the
    unsupervised baseline the benchmark compares availability against.
    ``checkpoints=False`` forces every restart cold (warm-vs-cold MTTR).
    ``recorder``/``usage``/``profiler``/``detect_races`` behave as in
    ``run_chaos`` — strictly passive instrumentation.  ``tiebreak`` hands
    same-instant tie ordering to a schedule-exploration policy (None =
    default FIFO).
    """
    db, _dims, _configs = fig6a_database(seed=seed)
    plan = FaultPlan.from_spec(
        DEFAULT_RECOVERY_FAULTS if fault_spec is None else fault_spec
    )
    crowd = dict(DEFAULT_CROWD if crowd_spec is None else crowd_spec)
    preference = viz_preference()
    initial_point = viz_initial_point()

    app = make_viz_app()
    _scheduler, controller = build_viz_controller(
        app, db, preference, recorder=recorder
    )
    config = controller.select_initial(initial_point).config

    testbed = Testbed(
        host_specs=app.env.host_specs(), link_specs=app.env.link_specs(),
        seed=seed, tiebreak=tiebreak,
    )
    # The supervisor must bind before the plan installs: kill events route
    # through sim.recovery, and safe points start checkpointing immediately.
    supervisor = Supervisor(testbed.sim, seed=seed).attach()
    injector = FaultInjector.attach(testbed, plan, seed=seed)

    guard = OverloadGuard(
        OverloadPolicy(queue_capacity=64, shed_depth=4, keep_priority=1),
        sim=testbed.sim,
    )
    server_state: Dict = {"codec": dict(config)["c"]}
    workload = VizWorkload(
        n_images=n_images, costs=EXP1_COSTS, seed=seed,
        overload=guard, server_state=server_state,
    )
    rt = app.instantiate(
        testbed,
        config,
        limits={"client": ResourceLimits(net_bw=500e3)},
        workload=workload,
    )
    # Register teardown FIRST so the supervisor treats post-run process
    # exits (server receiving CloseConnection) as normal, not as deaths.
    if rt.finished.callbacks is not None:
        rt.finished.callbacks.append(lambda _e: supervisor.shutdown())
    controller.attach(rt)

    server_agent, client_ex, server_ex = start_estimate_exchanges(rt, controller)

    # -- controller failover group -----------------------------------------
    member_client: Optional[FailoverMember] = None
    member_server: Optional[FailoverMember] = None
    if failover:
        member_client = FailoverMember(
            rt, "client", ["client", "server"],
            activate=lambda state: None,  # rank 0 *is* the controller host
            snapshot=controller.snapshot,
            period=0.5, takeover_after=1.5, initially_active=True,
        ).start()

        def standby_activate(state):
            # Resume from the replicated checkpoint: adopt the freshest
            # controller state so the primary's warm restart picks it up.
            if state is not None:
                supervisor.store.save(
                    "controller", testbed.sim.now, dict(state)
                )

        member_server = FailoverMember(
            rt, "server", ["client", "server"],
            activate=standby_activate,
            period=0.5, takeover_after=1.5,
        ).start()
        if rt.finished.callbacks is not None:
            rt.finished.callbacks.append(lambda _e: member_client.stop())
            rt.finished.callbacks.append(lambda _e: member_server.stop())

    # -- supervision tree ---------------------------------------------------
    server_policy = RestartPolicy(
        base_delay=0.25, factor=2.0, jitter=0.05, max_restarts=5,
        storm_window=60.0, warm=checkpoints,
    )
    # The controller's backoff deliberately exceeds takeover_after so the
    # standby demonstrably runs the group while the primary is down.
    controller_policy = RestartPolicy(
        base_delay=3.0, factor=2.0, jitter=0.05, max_restarts=5,
        storm_window=120.0, ready_poll=0.05, ready_timeout=30.0,
        warm=checkpoints,
    )

    def start_server(state):
        if state:
            server_state.update(state)
        from ..apps.visualization.server import server_process

        return rt.sim.process(
            server_process(rt, workload, rt.app_model,
                           overload=workload.overload,
                           codec_state=workload.server_state),
            name="viz-server",
        )

    supervisor.supervise(
        "viz-server",
        start_server,
        processes=[rt.processes["viz-server"]],
        policy=server_policy,
        snapshot=lambda: dict(server_state),
        restarts=supervise,
    )

    def controller_procs():
        procs = [controller.monitor.process, controller._watchdog_proc]
        if member_client is not None:
            procs.extend(member_client.processes())
        return [p for p in procs if p is not None]

    def start_controller(state):
        if state is not None:
            controller.restore(dict(state))
        controller.attach(rt)
        client_ex.agent = controller.monitor
        controller.start_watchdog(client_ex)
        if member_client is not None:
            member_client.start()
        return controller_procs()

    def controller_ready():
        # Warm restarts restore the monitor's histories and answer at once;
        # a cold monitor must refill (bandwidth needs a completed transfer)
        # — exactly the warm-vs-cold MTTR gap the benchmark measures.
        est = controller.monitor.estimates()
        return all(r in est for r in controller.monitor.watch)

    supervisor.supervise(
        "controller",
        start_controller,
        processes=controller_procs(),
        policy=controller_policy,
        snapshot=controller.snapshot,
        ready=controller_ready,
        restarts=supervise,
    )

    # -- overload / brownout -------------------------------------------------
    brownout_ctl: Optional[BrownoutController] = None
    if brownout:
        brownout_ctl = BrownoutController(
            rt, controller, guard, Configuration(dict(CHEAP_CONFIG)),
            period=1.0, enter_shed_rate=0.3, exit_shed_rate=0.05,
            enter_after=2, exit_after=3,
        ).start()

    # -- flash crowd ---------------------------------------------------------
    crowd_stats: Dict[int, Dict[str, int]] = {}
    for uid in range(int(crowd.get("users", 0))):
        testbed.sim.process(
            closed_loop_viz_user(
                rt, workload, rt.app_model, uid, crowd, seed, crowd_stats
            ),
            name=f"crowd-{uid}",
        )

    detector = None
    if detect_races:
        from ..analysis.races import RaceDetector, watch

        detector = RaceDetector(testbed.sim).attach()
        for host_name in sorted(testbed.hosts):
            watch(detector, testbed.hosts[host_name])
        for label, exchange in (("client", client_ex), ("server", server_ex)):
            detector.watch_mapping(
                exchange, "remote_estimates", f"{label}.remote_estimates"
            )
            detector.watch_mapping(
                exchange, "peer_last_seen", f"{label}.peer_last_seen"
            )
        # Recovery-subsystem shared state: the supervisor's service and
        # checkpoint tables, each failover member's heartbeat/rank state,
        # and the overload guard's admission counters.  All of it is
        # touched from several coroutines (kill routing, safe-point
        # checkpointing, watchdog ticks, crowd requests) — exactly the
        # kind of cross-context state a tie-order race would corrupt.
        detector.watch_mapping(supervisor, "services", "supervisor.services")
        detector.watch_mapping(
            supervisor.store, "_latest", "supervisor.checkpoints"
        )
        detector.watch_mapping(
            supervisor.store, "_seq", "supervisor.checkpoint_seq"
        )
        detector.watch_calls(
            supervisor, ("_plan_restart", "_restart"),
            "supervisor.restart_table",
        )
        for member in (member_client, member_server):
            if member is None:
                continue
            detector.watch_mapping(
                member, "last_seen",
                f"failover.{member.host_name}.last_seen",
            )
            detector.watch_calls(
                member, ("_take_over",),
                f"failover.{member.host_name}.takeover",
            )
        detector.watch_calls(guard, ("admit",), "overload.guard")

    attach_instrumentation(
        testbed.sim, testbed, config,
        usage=usage, recorder=recorder, profiler=profiler,
    )

    def _finalize():
        testbed.shutdown()
        if supervise and not rt.finished.triggered:
            raise RuntimeError(
                f"supervised recovery run did not finish by t={until}"
            )
        return _summarize_recovery(
            plan=plan, seed=seed, n_images=n_images, crowd=crowd,
            supervise=supervise, checkpoints=checkpoints, failover=failover,
            brownout=brownout, supervisor=supervisor, injector=injector,
            controller=controller, rt=rt, workload=workload, testbed=testbed,
            guard=guard, brownout_ctl=brownout_ctl,
            member_client=member_client, member_server=member_server,
            crowd_stats=crowd_stats, detector=detector,
            usage=usage, recorder=recorder, profiler=profiler,
        )

    return Scene(
        name="recovery", seed=seed, until=until, testbed=testbed,
        finalize=_finalize, rt=rt, controller=controller, workload=workload,
        injector=injector, supervisor=supervisor, guard=guard,
        brownout=brownout_ctl,
        client_exchange=client_ex, server_exchange=server_ex,
        recorder=recorder, usage=usage, profiler=profiler,
    )


def _summarize_recovery(
    plan, seed, n_images, crowd, supervise, checkpoints, failover, brownout,
    supervisor, injector, controller, rt, workload, testbed, guard,
    brownout_ctl, member_client, member_server, crowd_stats, detector,
    usage, recorder, profiler,
) -> Tuple[FigureResult, Dict]:
    # Accounting horizon: the teardown instant when the app finished (the
    # supervisor recorded it in shutdown()); for unsupervised runs that never
    # fire shutdown, fall back to the simulated clock.
    horizon = supervisor.shutdown_at
    if horizon is None:
        horizon = testbed.sim.now
    supervisor.finalize(horizon)

    crowd_served = sum(s["served"] for s in crowd_stats.values())
    crowd_shed = sum(s["shed"] for s in crowd_stats.values())
    payload = {
        "experiment": "recovery",
        "seed": seed,
        "n_images": n_images,
        "modes": {
            "supervise": supervise,
            "checkpoints": checkpoints,
            "failover": failover,
            "brownout": brownout,
        },
        "fault_spec": plan.to_spec(),
        "crowd": {k: crowd[k] for k in sorted(crowd)},
        "injections": injector.log,
        "recovery": supervisor.summary(horizon),
        "horizon": horizon,
        "failover": {
            name: {
                "takeovers": m.takeovers,
                "handbacks": m.handbacks,
                "latencies": list(m.failover_latencies),
                "active_at_end": m.active,
            }
            for name, m in (("client", member_client), ("server", member_server))
            if m is not None
        },
        "overload": {
            **guard.totals(),
            "crowd_served": crowd_served,
            "crowd_shed": crowd_shed,
            "interactive_shed_rounds": len(workload.shed_rounds),
            "brownout_windows": (
                [[t0, t1] for t0, t1 in brownout_ctl.windows]
                if brownout_ctl is not None
                else []
            ),
        },
        "events": [
            {
                "t": e.time,
                "kind": e.kind,
                "config": e.config.label() if e.config is not None else None,
            }
            for e in controller.events
        ],
        "switches": [
            {"t": t, "from": old.label(), "to": new.label()}
            for t, old, new in rt.controls.history
        ],
        "final_config": rt.controls.current.label(),
        "qos": rt.qos.snapshot(),
        "image_times": [[t, d] for t, d in workload.image_times],
        "network": {
            "delivered": testbed.network.messages_delivered,
            "lost": testbed.network.messages_lost,
            "parked": testbed.network.messages_parked_total,
        },
        "finished": bool(rt.finished.triggered),
        "total_time": workload.image_times[-1][0] if workload.image_times else 0.0,
    }
    if detector is not None:
        payload["races"] = [r.to_dict() for r in detector.finish()]
        detector.detach()
    detach_instrumentation(usage=usage, recorder=recorder, profiler=profiler)

    result = FigureResult(
        figure="Recovery",
        title="Supervised recovery through a crash storm and flash crowd",
        xlabel="time (s)",
        ylabel="image transmission time (s)",
    )
    series = result.new_series(
        "adaptive, supervised" if supervise else "adaptive, unsupervised"
    )
    for t, duration in workload.image_times:
        series.add(t, duration)
    for entry in injector.log:
        what = entry.get("service") or entry.get("host") or entry.get("between")
        result.note(f"t={entry['t']:.1f}s: {entry['action']} ({what})")
    for m in payload["recovery"]["mttr"]:
        result.note(
            f"t={m['ready_at']:.1f}s: {m['service']} back up, "
            f"mttr={m['mttr']:.2f}s ({'warm' if m['warm'] else 'cold'})"
        )
    fo = payload["failover"].get("server")
    if fo is not None and fo["latencies"]:
        result.note(
            f"standby takeover latency: {fo['latencies'][0]:.2f}s "
            f"(takeovers={fo['takeovers']}, handbacks={fo['handbacks']})"
        )
    for t0, t1 in payload["overload"]["brownout_windows"]:
        t1s = f"{t1:.1f}" if t1 is not None else "end"
        result.note(f"brownout window: {t0:.1f}s .. {t1s}s")
    avail = payload["recovery"]["services"]
    for name in sorted(avail):
        result.note(
            f"availability[{name}] = {avail[name]['availability']:.4f} "
            f"({avail[name]['restarts']} restarts)"
        )
    result.note(
        f"crowd: {crowd_served} served, {crowd_shed} shed; "
        f"interactive rounds shed: {len(workload.shed_rounds)}"
    )
    result.note(f"final config: {payload['final_config']}")
    return result, payload


def run_recovery(
    seed: int = 0,
    n_images: int = 14,
    fault_spec: Optional[Dict] = None,
    crowd_spec: Optional[Dict] = None,
    supervise: bool = True,
    checkpoints: bool = True,
    failover: bool = True,
    brownout: bool = True,
    until: float = 400.0,
    detect_races: bool = False,
    recorder=None,
    usage=None,
    tiebreak=None,
    profiler=None,
) -> Tuple[FigureResult, Dict]:
    """Run the adaptive visualization app through crashes and a flash crowd.

    Returns the rendered figure plus a JSON-friendly payload (availability,
    MTTR records, failover latencies, shed/served accounting, and the full
    adaptation trajectory).  Two same-seed runs produce byte-identical
    payloads.  Construction, run, and summary are :func:`build_recovery`
    + ``testbed.run`` + ``Scene.finalize`` — see that function for the
    mode/instrumentation knobs.
    """
    scene = build_recovery(
        seed=seed, n_images=n_images, fault_spec=fault_spec,
        crowd_spec=crowd_spec, supervise=supervise, checkpoints=checkpoints,
        failover=failover, brownout=brownout, until=until,
        detect_races=detect_races, recorder=recorder, usage=usage,
        tiebreak=tiebreak, profiler=profiler,
    )
    scene.testbed.run(until=until)
    return scene.finalize()
