"""Shared experiment harness: series containers, rendering, sweep plumbing.

Every figure module returns a :class:`FigureResult` holding named
:class:`Series`; benchmarks assert on the series' qualitative shape and the
harness prints them as aligned tables plus an ASCII sketch, so the paper's
plots can be eyeballed straight from the terminal.

Grid loops inside the figure modules run their cells through
:func:`sweep_cells` (re-exported from :mod:`repro.exec`): each cell is a
pure module-level job function, so the CLI's ``--jobs``/``--no-cache``
flags parallelize and memoize every experiment without the figure code
knowing — and with ``jobs=1`` the cells execute inline, preserving the
serial path byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..exec import sweep_cells

__all__ = [
    "Series",
    "FigureResult",
    "render_table",
    "ascii_plot",
    "sweep_cells",
    "viz_preference",
    "viz_initial_point",
    "build_viz_controller",
    "start_estimate_exchanges",
    "attach_instrumentation",
    "detach_instrumentation",
    "closed_loop_viz_user",
]


@dataclass
class Series:
    """One plotted curve: (x, y) points plus a label."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    @property
    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    @property
    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def y_at(self, x: float, tol: float = 1e-9) -> float:
        for px, py in self.points:
            if abs(px - x) <= tol:
                return py
        raise KeyError(f"series {self.label!r} has no point at x={x!r}")

    def monotone(self) -> str:
        """"increasing" / "decreasing" / "mixed" over x order."""
        ys = [y for _, y in sorted(self.points)]
        inc = all(a <= b + 1e-12 for a, b in zip(ys, ys[1:]))
        dec = all(a >= b - 1e-12 for a, b in zip(ys, ys[1:]))
        if inc and not dec:
            return "increasing"
        if dec and not inc:
            return "decreasing"
        if inc and dec:
            return "constant"
        return "mixed"


@dataclass
class FigureResult:
    """All series of one reproduced figure, plus free-form notes."""

    figure: str
    title: str
    xlabel: str
    ylabel: str
    series: Dict[str, Series] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        s = Series(label)
        self.series[label] = s
        return s

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self, plot: bool = True, width: int = 72, height: int = 16) -> str:
        out = [f"== {self.figure}: {self.title} =="]
        out.append(render_table(self))
        if plot and any(s.points for s in self.series.values()):
            out.append(ascii_plot(self, width=width, height=height))
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)


def render_table(result: FigureResult) -> str:
    """Aligned x/series table of every curve in the figure."""
    xs: List[float] = sorted({x for s in result.series.values() for x, _ in s.points})
    labels = list(result.series)
    header = [result.xlabel] + labels
    rows = [header]
    for x in xs:
        row = [f"{x:g}"]
        for label in labels:
            try:
                row.append(f"{result.series[label].y_at(x):.3f}")
            except KeyError:
                row.append("-")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for r in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


_MARKS = "*o+x#@%&"


def ascii_plot(result: FigureResult, width: int = 72, height: int = 16) -> str:
    """Minimal terminal scatter of every series (one mark per series)."""
    pts = [(x, y) for s in result.series.values() for x, y in s.points]
    if not pts:
        return "(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    grid = [[" "] * width for _ in range(height)]
    for i, (label, series) in enumerate(result.series.items()):
        mark = _MARKS[i % len(_MARKS)]
        for x, y in series.points:
            col = int((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - int((y - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = mark
    lines = [f"{y1:10.3g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y0:10.3g} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x0:<12g}{result.xlabel:^{max(0, width - 24)}}{x1:>12g}"
    )
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]}={label}" for i, label in enumerate(result.series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shared scenario factories (used by chaos, recovery, and crowd experiments).
#
# These used to be copy-pasted per experiment; they are centralized here so
# coroutine and crowd scenarios build the *same* adaptation runtime.  Keep
# construction order and RNG stream names stable: the chaos/recovery
# benchmark payloads are byte-identity-gated.
# ---------------------------------------------------------------------------


def viz_preference():
    """The experiments' common user preference: minimize transmit time."""
    from ..runtime import Objective, UserPreference

    return UserPreference.single(Objective("transmit_time", "minimize"))


def viz_initial_point():
    """The initial resource availability every scenario starts from."""
    from ..profiling import ResourcePoint

    return ResourcePoint({"client.cpu": 1.0, "client.network": 500e3})


def build_viz_controller(app, db, preference, recorder=None):
    """Scheduler + adaptation controller with the experiments' tuning.

    Returns ``(scheduler, controller)``; the monitor window/cooldown and
    steering retry policy are the values every experiment has used since
    the chaos run was first benchmarked — change them there and here
    together or replay byte-identity breaks.
    """
    from ..runtime import AdaptationController, ResourceScheduler
    from ..tunable import Preprocessor

    scheduler = ResourceScheduler(db, preference)
    controller = AdaptationController(
        scheduler,
        monitoring_plan=Preprocessor(app).monitoring_plan(),
        monitor_kwargs={"window": 2.0, "cooldown": 5.0, "period": 0.01},
        steering_kwargs={"ack_timeout": 2.0, "max_retries": 2, "backoff": 2.0},
        watchdog_period=0.5,
        recorder=recorder,
    )
    return scheduler, controller


def start_estimate_exchanges(rt, controller):
    """Bidirectional estimate exchange + controller watchdog.

    Returns ``(server_agent, client_ex, server_ex)`` — the server-side
    monitoring agent and both exchange endpoints, already started.
    """
    from ..runtime import MonitorExchange, MonitoringAgent

    server_agent = MonitoringAgent(rt, watch=["server.cpu"], period=0.05).start()
    client_ex = MonitorExchange(
        rt, controller.monitor, "client", ["server"],
        stale_after=2.0, heartbeat_every=0.5,
    ).start()
    server_ex = MonitorExchange(
        rt, server_agent, "server", ["client"],
        stale_after=2.0, heartbeat_every=0.5,
    ).start()
    controller.start_watchdog(client_ex)
    return server_agent, client_ex, server_ex


def attach_instrumentation(sim, testbed, config, usage=None, recorder=None,
                           profiler=None):
    """Attach passive observers in the canonical order.

    Usage accounting chains the step hook first, the recorder binds last,
    and the profiler hangs off ``sim.perf`` independently — the order every
    benchmarked experiment uses (see the chaos run's hook-order comment).
    """
    if usage is not None:
        usage.attach(sim)
        usage.track_testbed(testbed)
        usage.set_config(config.label(), t=sim.now)
    if recorder is not None:
        recorder.bind(sim)
    if profiler is not None:
        profiler.attach(sim)


def detach_instrumentation(usage=None, recorder=None, profiler=None):
    """Finish and detach whatever ``attach_instrumentation`` installed."""
    if recorder is not None:
        recorder.finish()
        recorder.unbind()
    if usage is not None:
        usage.finish()
        usage.detach()
    if profiler is not None:
        profiler.detach()


def closed_loop_viz_user(rt, workload, model, uid, spec, seed, stats,
                         stream_prefix="recovery.crowd",
                         port_prefix="viz.crowd"):
    """One closed-loop background user: small foveal requests, QoS class 0.

    The coroutine counterpart of one crowd-class user — the recovery
    experiment's flash crowd runs N of these, and the crowd benchmark's
    baseline scenario reuses them verbatim.  Think times draw from the
    per-user ``<stream_prefix>.<uid>`` stream, never the global RNG.
    """
    from ..apps.visualization.protocol import (
        REQ_PORT,
        REQUEST_WIRE_BYTES,
        FovealRequest,
    )
    from ..apps.visualization.server import SERVER_HOST
    from ..sim import stream

    sandbox = rt.sandboxes["client"]
    sim = rt.sim
    rng = stream(seed, f"{stream_prefix}.{uid}")
    port = f"{port_prefix}.{uid}"
    level = int(spec["level"])
    side = model.level_side(level)
    end = float(spec["start"]) + float(spec["duration"])
    stats[uid] = {"served": 0, "shed": 0}
    # Deterministic ramp: users arrive staggered, not as one thundering tick.
    yield sandbox.sleep(float(spec["start"]) + 0.05 * uid)
    seq = 0
    while sim.now < end:
        req = FovealRequest(
            image_id=uid % workload.n_images,
            x=side // 2,
            y=side // 2,
            r0=0,
            r1=int(spec["r1"]),
            level=level,
            seq=seq,
            priority=0,
            reply_port=port,
        )
        yield sandbox.send(SERVER_HOST, REQ_PORT, req, size=REQUEST_WIRE_BYTES)
        msg = yield sandbox.recv(port)
        if getattr(msg.payload, "shed", False):
            stats[uid]["shed"] += 1
        else:
            stats[uid]["served"] += 1
        seq += 1
        yield sandbox.sleep(float(spec["think"]) * (0.5 + rng.random()))
