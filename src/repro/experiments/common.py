"""Shared experiment harness: series containers, rendering, sweep plumbing.

Every figure module returns a :class:`FigureResult` holding named
:class:`Series`; benchmarks assert on the series' qualitative shape and the
harness prints them as aligned tables plus an ASCII sketch, so the paper's
plots can be eyeballed straight from the terminal.

Grid loops inside the figure modules run their cells through
:func:`sweep_cells` (re-exported from :mod:`repro.exec`): each cell is a
pure module-level job function, so the CLI's ``--jobs``/``--no-cache``
flags parallelize and memoize every experiment without the figure code
knowing — and with ``jobs=1`` the cells execute inline, preserving the
serial path byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..exec import sweep_cells

__all__ = ["Series", "FigureResult", "render_table", "ascii_plot", "sweep_cells"]


@dataclass
class Series:
    """One plotted curve: (x, y) points plus a label."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    @property
    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    @property
    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def y_at(self, x: float, tol: float = 1e-9) -> float:
        for px, py in self.points:
            if abs(px - x) <= tol:
                return py
        raise KeyError(f"series {self.label!r} has no point at x={x!r}")

    def monotone(self) -> str:
        """"increasing" / "decreasing" / "mixed" over x order."""
        ys = [y for _, y in sorted(self.points)]
        inc = all(a <= b + 1e-12 for a, b in zip(ys, ys[1:]))
        dec = all(a >= b - 1e-12 for a, b in zip(ys, ys[1:]))
        if inc and not dec:
            return "increasing"
        if dec and not inc:
            return "decreasing"
        if inc and dec:
            return "constant"
        return "mixed"


@dataclass
class FigureResult:
    """All series of one reproduced figure, plus free-form notes."""

    figure: str
    title: str
    xlabel: str
    ylabel: str
    series: Dict[str, Series] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        s = Series(label)
        self.series[label] = s
        return s

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self, plot: bool = True, width: int = 72, height: int = 16) -> str:
        out = [f"== {self.figure}: {self.title} =="]
        out.append(render_table(self))
        if plot and any(s.points for s in self.series.values()):
            out.append(ascii_plot(self, width=width, height=height))
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)


def render_table(result: FigureResult) -> str:
    """Aligned x/series table of every curve in the figure."""
    xs: List[float] = sorted({x for s in result.series.values() for x, _ in s.points})
    labels = list(result.series)
    header = [result.xlabel] + labels
    rows = [header]
    for x in xs:
        row = [f"{x:g}"]
        for label in labels:
            try:
                row.append(f"{result.series[label].y_at(x):.3f}")
            except KeyError:
                row.append("-")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for r in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


_MARKS = "*o+x#@%&"


def ascii_plot(result: FigureResult, width: int = 72, height: int = 16) -> str:
    """Minimal terminal scatter of every series (one mark per series)."""
    pts = [(x, y) for s in result.series.values() for x, y in s.points]
    if not pts:
        return "(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    grid = [[" "] * width for _ in range(height)]
    for i, (label, series) in enumerate(result.series.items()):
        mark = _MARKS[i % len(_MARKS)]
        for x, y in series.points:
            col = int((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - int((y - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = mark
    lines = [f"{y1:10.3g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y0:10.3g} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x0:<12g}{result.xlabel:^{max(0, width - 24)}}{x1:>12g}"
    )
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]}={label}" for i, label in enumerate(result.series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
