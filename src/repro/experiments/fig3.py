"""Figure 3: the virtual execution environment controls CPU as specified.

(a) A toy application under the quantum-feedback sandbox with the share
    schedule 80 % -> 40 % (at t=20 s) -> 60 % (at t=50 s); the measured
    usage trace follows the schedule.
(b) Execution time of the toy app on the testbed at CPU shares 10-100 %
    versus the expected time (unconstrained time / share); near-identical
    except at 100 %, where background daemons interfere.
"""

from __future__ import annotations

from typing import List, Tuple

from ..apps import make_toy_app
from ..sandbox import DaemonSpec, LimiterMode, ResourceLimits, Testbed
from ..tunable import Configuration
from .common import FigureResult, sweep_cells

__all__ = ["run_fig3a", "run_fig3b"]


def run_fig3a(
    schedule: Tuple[Tuple[float, float], ...] = ((0.0, 0.8), (20.0, 0.4), (50.0, 0.6)),
    duration: float = 80.0,
    bucket: float = 1.0,
    seed: int = 0,
) -> FigureResult:
    """Measured CPU usage over time under a changing share schedule."""
    app = make_toy_app(total_work=1e9, round_work=4.5)  # long enough to span
    testbed = Testbed(host_specs=app.env.host_specs(), mode=LimiterMode.QUANTUM, seed=seed)
    rt = app.instantiate(
        testbed,
        Configuration({"scale": 1.0}),
        limits={"node": ResourceLimits(cpu_share=schedule[0][1])},
    )
    sandbox = rt.sandboxes["node"]
    sandbox.trace_usage = True

    def vary():
        for t, share in schedule[1:]:
            yield testbed.sim.timeout(t - testbed.sim.now)
            sandbox.set_limits(ResourceLimits(cpu_share=share))

    testbed.sim.process(vary())
    testbed.run(until=duration)
    testbed.shutdown()

    result = FigureResult(
        figure="Fig 3a",
        title="CPU usage of a sandboxed application vs time (spec: "
        + " -> ".join(f"{int(s*100)}% @ {t:g}s" for t, s in schedule) + ")",
        xlabel="time (s)",
        ylabel="CPU usage (fraction)",
    )
    measured = result.new_series("measured")
    spec = result.new_series("specified")
    # Bucket the instantaneous (per-quantum) usage trace for readability.
    trace = sandbox.usage_trace
    t_edge = bucket
    acc: List[float] = []
    for t, usage in trace:
        if t > t_edge:
            if acc:
                measured.add(t_edge - bucket / 2, sum(acc) / len(acc))
            acc = []
            t_edge += bucket
        acc.append(usage)
    for (t, share), (t_next, _s) in zip(schedule, list(schedule[1:]) + [(duration, 0)]):
        spec.add(t, share)
        spec.add(t_next, share)
    return result


def _fig3b_cell(payload: dict, seed: int) -> float:
    """Sweep job: one Fig 3b run; ``share=None`` is the unloaded baseline."""
    share = payload["share"]
    app = make_toy_app()
    if share is None:
        # Baseline: physical, unloaded machine (no daemons, no sandbox).
        tb = Testbed(host_specs=app.env.host_specs())
        rt = app.instantiate(tb, Configuration({"scale": 1.0}))
        tb.run(until=3600)
        return rt.qos.get("elapsed")
    tb = Testbed(
        host_specs=app.env.host_specs(),
        mode=LimiterMode.QUANTUM,
        seed=seed,
        daemons=[DaemonSpec("node", mean_interval=0.2, cpu_fraction=0.02)],
    )
    rt = app.instantiate(
        tb,
        Configuration({"scale": 1.0}),
        limits={"node": ResourceLimits(cpu_share=share)},
    )
    tb.run(until=3600)
    tb.shutdown()
    return rt.qos.get("elapsed")


def run_fig3b(
    shares: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    seed: int = 0,
    engine=None,
) -> FigureResult:
    """Measured vs expected execution time across CPU shares.

    The expected time is the unconstrained execution time divided by the
    share.  Background daemons run on the host (as on any real NT box), so
    the measured time at 100 % share falls short of expectation — the
    paper's only visible deviation.
    """
    payloads = [{"share": None}] + [{"share": share} for share in shares]
    values = sweep_cells(
        "repro.experiments.fig3:_fig3b_cell", payloads, seed=seed, engine=engine
    )
    baseline = values[0]

    result = FigureResult(
        figure="Fig 3b",
        title="Application execution time under the testbed vs expectation",
        xlabel="CPU share (%)",
        ylabel="execution time (s)",
    )
    measured = result.new_series("measured (testbed)")
    expected = result.new_series("expected (baseline/share)")
    for share, elapsed in zip(shares, values[1:]):
        measured.add(share * 100, elapsed)
        expected.add(share * 100, baseline / share)
    return result
