"""Extension experiment: adapting to *memory* variations.

The paper's evaluation varies only CPU and network, "keeping memory
resources at a fixed level", but both its sandbox (page-protection
resident-set limits) and its framework treat memory as a first-class
resource.  This extension closes that loop with the memory-bound grid
application: profile the ``tile`` configurations over the resident-limit
axis, then drop the limit mid-run and watch the framework re-tile.

This is future work the paper enables but does not evaluate; the shape to
expect follows from the working-set model: large tiles win with ample
memory (less recomputation), small tiles win under pressure (no thrash).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..apps import MemWorkload, make_membound_app
from ..profiling import (
    PerformanceDatabase,
    ProfilingDriver,
    ResourceDimension,
    ResourcePoint,
)
from ..runtime import (
    AdaptationController,
    Objective,
    ResourceScheduler,
    UserPreference,
)
from ..sandbox import ResourceLimits, Testbed
from ..tunable import Preprocessor
from .common import FigureResult

__all__ = ["memory_database", "run_memory_adaptation"]

#: Disk-backed paging cost (seconds per fault).
FAULT_COST = 2e-3
MEM_LEVELS: Tuple[float, ...] = (150, 300, 600, 1200, 4000)


def memory_database(
    levels: Tuple[float, ...] = MEM_LEVELS,
    seed: int = 0,
) -> Tuple[PerformanceDatabase, list]:
    """Profile every tile size over the resident-limit axis."""
    app = make_membound_app()
    dims = [ResourceDimension("node.memory", tuple(levels), lo=1)]

    def workload(config, point, run_seed):
        return MemWorkload(sweeps=8)

    driver = ProfilingDriver(app, dims, workload_factory=workload, seed=seed)
    # The profiling sandboxes must model expensive (disk-backed) faults.
    original_measure = driver.measure

    def measure_with_fault_cost(config, point):
        # Rebuild the one-off path with sandbox kwargs: reuse driver
        # internals by temporarily instantiating manually.
        from ..sim import derive_seed

        run_seed = derive_seed(driver.seed, f"{config.label()}|{point.label()}")
        testbed = Testbed(host_specs=app.env.host_specs(), seed=run_seed)
        rt = app.instantiate(
            testbed,
            config,
            limits={"node": ResourceLimits(mem_pages=int(point["node.memory"]))},
            workload=workload(config, point, run_seed),
            seed=run_seed,
            sandbox_kwargs={"fault_cost": FAULT_COST},
        )
        testbed.run(until=driver.max_run_time)
        testbed.shutdown()
        from ..profiling import Record

        return Record(
            config=config,
            point=point,
            metrics=rt.qos.snapshot(),
            meta={"seed": run_seed},
        )

    driver.measure = measure_with_fault_cost
    db = driver.profile()
    return db, app.configurations()


def run_memory_adaptation(
    seed: int = 0,
    drop_at_sweep_time: float = 2.0,
    from_pages: int = 4000,
    to_pages: int = 300,
    db: Optional[PerformanceDatabase] = None,
) -> Tuple[FigureResult, Dict]:
    """Adaptive run: resident limit drops mid-computation.

    Returns the per-sweep fault figure and a dict with the runs' outcomes.
    """
    if db is None:
        db, _ = memory_database(seed=seed)
    app = make_membound_app()
    pref = UserPreference.single(Objective("elapsed"))
    scheduler = ResourceScheduler(db, pref)
    controller = AdaptationController(
        scheduler,
        monitoring_plan=Preprocessor(app).monitoring_plan(),
        monitor_kwargs={"window": 0.5, "cooldown": 1.0},
    )
    decision = controller.select_initial(
        ResourcePoint({"node.memory": float(from_pages)})
    )

    outcomes: Dict[str, object] = {"initial_config": decision.config}
    runs = {}
    for adaptive in (True, False):
        testbed = Testbed(host_specs=app.env.host_specs(), seed=seed)
        workload = MemWorkload(sweeps=24)
        rt = app.instantiate(
            testbed,
            decision.config,
            limits={"node": ResourceLimits(mem_pages=from_pages)},
            workload=workload,
            sandbox_kwargs={"fault_cost": FAULT_COST},
        )
        if adaptive:
            ctl = AdaptationController(
                ResourceScheduler(db, pref),
                monitoring_plan=Preprocessor(app).monitoring_plan(),
                monitor_kwargs={"window": 0.5, "cooldown": 1.0},
            )
            ctl.current_decision = decision
            ctl.attach(rt)

        def vary(rt=rt):
            yield testbed.sim.timeout(drop_at_sweep_time)
            rt.sandboxes["node"].set_limits(ResourceLimits(mem_pages=to_pages))

        testbed.sim.process(vary())
        testbed.run(until=3600)
        testbed.shutdown()
        key = "adaptive" if adaptive else "static"
        runs[key] = {
            "workload": workload,
            "elapsed": rt.qos.get("elapsed"),
            "faults": rt.qos.get("faults"),
            "switches": list(rt.controls.history),
        }
    outcomes["runs"] = runs

    figure = FigureResult(
        figure="Ext M",
        title=f"Adapting tile size when the resident limit drops "
        f"{from_pages} -> {to_pages} pages",
        xlabel="sweep",
        ylabel="page faults",
    )
    for key in ("adaptive", "static"):
        series = figure.new_series(key)
        for sweep, faults in runs[key]["workload"].fault_log:
            series.add(sweep, faults)
    if runs["adaptive"]["switches"]:
        t, old, new = runs["adaptive"]["switches"][0]
        figure.note(f"adaptive re-tiled {old.tile} -> {new.tile} at t={t:.2f}s")
    figure.note(
        f"total elapsed: adaptive={runs['adaptive']['elapsed']:.2f}s, "
        f"static={runs['static']['elapsed']:.2f}s"
    )
    return figure, outcomes
