"""Figure 7: run-time adaptation experiments (Section 7).

Each experiment runs the adaptive application against a mid-run resource
variation and also runs the two relevant static configurations, plotting
per-image metrics versus time:

- Experiment 1 (Fig. 7a): network bandwidth 500 KB/s -> 50 KB/s at t=25 s;
  objective: minimize transmission time; adaptation switches compression
  A -> B mid-image.
- Experiment 2 (Fig. 7b): CPU share 90 % -> 40 % at t=30 s; constraint:
  transmission time <= 10 s, maximize resolution; adaptation degrades the
  resolution level 4 -> 3.
- Experiment 3 (Fig. 7c/d): CPU share 90 % -> 40 % at t=40 s; constraint:
  average response time <= 1 s, minimize transmission time; adaptation
  shrinks the fovea 320 -> 80.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps.visualization import VizWorkload, make_viz_app
from ..profiling import PerformanceDatabase, ResourcePoint
from ..runtime import (
    AdaptationController,
    Objective,
    ResourceScheduler,
    UserPreference,
)
from ..sandbox import ResourceLimits, Testbed
from ..tunable import Configuration, MetricRange, Preprocessor
from .common import FigureResult
from .fig5 import EXP3_BW, EXP3_COSTS, fig5_database
from .fig6 import EXP1_COSTS, EXP2_BW, EXP2_COSTS, fig6a_database, fig6b_database

__all__ = [
    "AdaptiveRun",
    "run_adaptive_viz",
    "run_experiment1",
    "run_experiment2",
    "run_experiment3",
    "ResourceVariation",
]


@dataclass(frozen=True)
class ResourceVariation:
    """Change the client sandbox limits at a point in time."""

    at: float
    limits: ResourceLimits


@dataclass
class AdaptiveRun:
    """Everything observed in one (adaptive or static) run."""

    label: str
    workload: VizWorkload
    qos: Dict[str, float]
    switches: List[Tuple[float, Configuration, Configuration]] = field(
        default_factory=list
    )
    events: list = field(default_factory=list)
    total_time: float = 0.0

    @property
    def image_series(self) -> List[Tuple[float, float]]:
        return list(self.workload.image_times)

    @property
    def response_series(self) -> List[Tuple[float, float]]:
        return list(self.workload.round_times)


def run_adaptive_viz(
    db: PerformanceDatabase,
    preference: UserPreference,
    initial_point: ResourcePoint,
    initial_limits: Dict[str, ResourceLimits],
    variations: Tuple[ResourceVariation, ...],
    workload_costs,
    n_images: int = 10,
    adaptive: bool = True,
    forced_config: Optional[Configuration] = None,
    scheduler_mode: str = "interpolate",
    label: str = "",
    seed: int = 0,
    until: float = 10_000.0,
    monitor_kwargs: Optional[dict] = None,
    optimality_slack: float = 0.1,
) -> AdaptiveRun:
    """Run the visualization app under a resource-variation scenario.

    With ``adaptive=False`` and ``forced_config``, runs a static
    configuration for the comparison curves of Fig. 7.
    """
    app = make_viz_app()
    scheduler = ResourceScheduler(
        db, preference, mode=scheduler_mode, optimality_slack=optimality_slack
    )
    controller = AdaptationController(
        scheduler,
        monitoring_plan=Preprocessor(app).monitoring_plan(),
        monitor_kwargs=monitor_kwargs
        or {"window": 2.0, "cooldown": 5.0, "period": 0.01},
    )
    if forced_config is not None:
        config = forced_config
    else:
        config = controller.select_initial(initial_point).config

    testbed = Testbed(
        host_specs=app.env.host_specs(), link_specs=app.env.link_specs(), seed=seed
    )
    workload = VizWorkload(n_images=n_images, costs=workload_costs, seed=seed)
    rt = app.instantiate(testbed, config, limits=initial_limits, workload=workload)
    if adaptive:
        if forced_config is not None:
            controller.current_decision = scheduler.select(initial_point)
        controller.attach(rt)

    def vary():
        for variation in variations:
            yield testbed.sim.timeout(variation.at - testbed.sim.now)
            rt.sandboxes["client"].set_limits(variation.limits)

    if variations:
        testbed.sim.process(vary())
    testbed.run(until=until)
    testbed.shutdown()
    if not rt.finished.triggered:
        raise RuntimeError(f"run {label!r} did not finish by t={until}")
    return AdaptiveRun(
        label=label or (config.label() if not adaptive else "adaptive"),
        workload=workload,
        qos=rt.qos.snapshot(),
        switches=list(rt.controls.history),
        events=list(controller.events) if adaptive else [],
        total_time=workload.image_times[-1][0] if workload.image_times else 0.0,
    )


# ------------------------------------------------------------ experiment 1


def run_experiment1(
    seed: int = 0,
    n_images: int = 10,
    switch_at: float = 25.0,
    db: Optional[PerformanceDatabase] = None,
) -> Tuple[FigureResult, Dict[str, AdaptiveRun]]:
    """Adapting the compression method to network conditions (Fig. 7a)."""
    if db is None:
        db, _dims, _configs = fig6a_database(seed=seed)
    preference = UserPreference.single(Objective("transmit_time", "minimize"))
    initial_point = ResourcePoint({"client.cpu": 1.0, "client.network": 500e3})
    initial_limits = {"client": ResourceLimits(net_bw=500e3)}
    variations = (ResourceVariation(switch_at, ResourceLimits(net_bw=50e3)),)

    runs: Dict[str, AdaptiveRun] = {}
    runs["adaptive"] = run_adaptive_viz(
        db, preference, initial_point, initial_limits, variations,
        EXP1_COSTS, n_images=n_images, label="adaptive", seed=seed,
    )
    for codec in ("lzw", "bzip2"):
        runs[codec] = run_adaptive_viz(
            db, preference, initial_point, initial_limits, variations,
            EXP1_COSTS, n_images=n_images, adaptive=False,
            forced_config=Configuration({"dR": 320, "c": codec, "l": 4}),
            label=f"static {codec}", seed=seed,
        )

    result = FigureResult(
        figure="Fig 7a",
        title="Adapting compression method when bandwidth drops "
        f"500 KB/s -> 50 KB/s at t={switch_at:g}s",
        xlabel="time (s)",
        ylabel="image transmission time (s)",
    )
    for key, label in (("adaptive", "adaptive"), ("lzw", "static A (LZW)"),
                       ("bzip2", "static B (bzip2)")):
        series = result.new_series(label)
        for t, duration in runs[key].image_series:
            series.add(t, duration)
    if runs["adaptive"].switches:
        t_switch, old, new = runs["adaptive"].switches[0]
        result.note(
            f"adaptive switched {old.c} -> {new.c} at t={t_switch:.1f}s"
        )
    result.note(
        f"total: adaptive={runs['adaptive'].total_time:.0f}s, "
        f"static A={runs['lzw'].total_time:.0f}s, "
        f"static B={runs['bzip2'].total_time:.0f}s"
    )
    return result, runs


# ------------------------------------------------------------ experiment 2


def run_experiment2(
    seed: int = 0,
    n_images: int = 10,
    switch_at: float = 30.0,
    deadline: float = 10.0,
    db: Optional[PerformanceDatabase] = None,
) -> Tuple[FigureResult, Dict[str, AdaptiveRun]]:
    """Adapting image resolution to CPU conditions (Fig. 7b)."""
    if db is None:
        db, _dims, _configs = fig6b_database(seed=seed)
    preference = UserPreference.single(
        Objective("resolution", "maximize"),
        [MetricRange("transmit_time", hi=deadline)],
    )
    initial_point = ResourcePoint({"client.cpu": 0.9, "client.network": EXP2_BW})
    initial_limits = {
        "client": ResourceLimits(cpu_share=0.9, net_bw=EXP2_BW)
    }
    variations = (
        ResourceVariation(switch_at, ResourceLimits(cpu_share=0.4, net_bw=EXP2_BW)),
    )

    runs: Dict[str, AdaptiveRun] = {}
    runs["adaptive"] = run_adaptive_viz(
        db, preference, initial_point, initial_limits, variations,
        EXP2_COSTS, n_images=n_images, label="adaptive", seed=seed,
    )
    for level in (4, 3):
        runs[f"l{level}"] = run_adaptive_viz(
            db, preference, initial_point, initial_limits, variations,
            EXP2_COSTS, n_images=n_images, adaptive=False,
            forced_config=Configuration({"dR": 320, "c": "lzw", "l": level}),
            label=f"static level {level}", seed=seed,
        )

    result = FigureResult(
        figure="Fig 7b",
        title="Degrading image resolution when CPU share drops 90% -> 40% "
        f"at t={switch_at:g}s (deadline {deadline:g}s)",
        xlabel="time (s)",
        ylabel="image transmission time (s)",
    )
    for key, label in (("adaptive", "adaptive"), ("l4", "static level 4"),
                       ("l3", "static level 3")):
        series = result.new_series(label)
        for t, duration in runs[key].image_series:
            series.add(t, duration)
    if runs["adaptive"].switches:
        t_switch, old, new = runs["adaptive"].switches[0]
        result.note(f"adaptive switched level {old.l} -> {new.l} at t={t_switch:.1f}s")
    return result, runs


# ------------------------------------------------------------ experiment 3


def run_experiment3(
    seed: int = 0,
    n_images: int = 16,
    switch_at: float = 40.0,
    response_bound: float = 1.0,
    db: Optional[PerformanceDatabase] = None,
) -> Tuple[FigureResult, FigureResult, Dict[str, AdaptiveRun]]:
    """Adapting fovea size to CPU conditions (Figs. 7c and 7d)."""
    if db is None:
        db, _dims, _configs = fig5_database(seed=seed)
    preference = UserPreference.single(
        Objective("transmit_time", "minimize"),
        [MetricRange("response_time", hi=response_bound)],
    )
    initial_point = ResourcePoint({"client.cpu": 0.9, "client.network": EXP3_BW})
    initial_limits = {
        "client": ResourceLimits(cpu_share=0.9, net_bw=EXP3_BW)
    }
    variations = (
        ResourceVariation(switch_at, ResourceLimits(cpu_share=0.4, net_bw=EXP3_BW)),
    )

    runs: Dict[str, AdaptiveRun] = {}
    runs["adaptive"] = run_adaptive_viz(
        db, preference, initial_point, initial_limits, variations,
        EXP3_COSTS, n_images=n_images, label="adaptive", seed=seed,
    )
    for dr in (320, 80):
        runs[f"dR{dr}"] = run_adaptive_viz(
            db, preference, initial_point, initial_limits, variations,
            EXP3_COSTS, n_images=n_images, adaptive=False,
            forced_config=Configuration({"dR": dr, "c": "lzw", "l": 4}),
            label=f"static fovea {dr}", seed=seed,
        )

    fig_c = FigureResult(
        figure="Fig 7c",
        title="Response time while adapting fovea size (CPU 90% -> 40% "
        f"at t={switch_at:g}s, bound {response_bound:g}s)",
        xlabel="time (s)",
        ylabel="round response time (s)",
    )
    fig_d = FigureResult(
        figure="Fig 7d",
        title="Transmission time while adapting fovea size",
        xlabel="time (s)",
        ylabel="image transmission time (s)",
    )
    for key, label in (("adaptive", "adaptive"), ("dR320", "static fovea 320"),
                       ("dR80", "static fovea 80")):
        sc = fig_c.new_series(label)
        for t, duration in runs[key].response_series:
            sc.add(t, duration)
        sd = fig_d.new_series(label)
        for t, duration in runs[key].image_series:
            sd.add(t, duration)
    if runs["adaptive"].switches:
        t_switch, old, new = runs["adaptive"].switches[0]
        fig_c.note(f"adaptive switched fovea {old.dR} -> {new.dR} at t={t_switch:.1f}s")
    return fig_c, fig_d, runs
