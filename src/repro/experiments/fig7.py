"""Figure 7: run-time adaptation experiments (Section 7).

Each experiment runs the adaptive application against a mid-run resource
variation and also runs the two relevant static configurations, plotting
per-image metrics versus time:

- Experiment 1 (Fig. 7a): network bandwidth 500 KB/s -> 50 KB/s at t=25 s;
  objective: minimize transmission time; adaptation switches compression
  A -> B mid-image.
- Experiment 2 (Fig. 7b): CPU share 90 % -> 40 % at t=30 s; constraint:
  transmission time <= 10 s, maximize resolution; adaptation degrades the
  resolution level 4 -> 3.
- Experiment 3 (Fig. 7c/d): CPU share 90 % -> 40 % at t=40 s; constraint:
  average response time <= 1 s, minimize transmission time; adaptation
  shrinks the fovea 320 -> 80.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps.visualization import VizWorkload, make_viz_app
from ..profiling import PerformanceDatabase, ResourcePoint
from ..runtime import (
    AdaptationController,
    AdaptationEvent,
    Objective,
    ResourceScheduler,
    UserPreference,
)
from ..sandbox import ResourceLimits, Testbed
from ..tunable import Configuration, MetricRange, Preprocessor
from .common import FigureResult, sweep_cells
from .fig5 import EXP3_BW, EXP3_COSTS, fig5_database
from .fig6 import EXP1_COSTS, EXP2_BW, EXP2_COSTS, fig6a_database, fig6b_database

__all__ = [
    "AdaptiveRun",
    "run_adaptive_viz",
    "run_experiment1",
    "run_experiment2",
    "run_experiment3",
    "ResourceVariation",
]


@dataclass(frozen=True)
class ResourceVariation:
    """Change the client sandbox limits at a point in time."""

    at: float
    limits: ResourceLimits


@dataclass
class AdaptiveRun:
    """Everything observed in one (adaptive or static) run.

    Holds plain data (not live workload objects) so a run can cross a
    process boundary: Fig-7 scenarios execute as sweep-engine jobs that
    return :meth:`to_dict`, and the parent rebuilds the run with
    :meth:`from_dict` — byte-identically.
    """

    label: str
    qos: Dict[str, float]
    image_times: List[Tuple[float, float]] = field(default_factory=list)
    round_times: List[Tuple[float, float]] = field(default_factory=list)
    switches: List[Tuple[float, Configuration, Configuration]] = field(
        default_factory=list
    )
    events: List[AdaptationEvent] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def image_series(self) -> List[Tuple[float, float]]:
        return list(self.image_times)

    @property
    def response_series(self) -> List[Tuple[float, float]]:
        return list(self.round_times)

    def to_dict(self) -> dict:
        """JSON-able form (ships runs across process boundaries)."""
        return {
            "label": self.label,
            "qos": dict(self.qos),
            "image_times": [[t, d] for t, d in self.image_times],
            "round_times": [[t, d] for t, d in self.round_times],
            "switches": [
                [t, dict(old), dict(new)] for t, old, new in self.switches
            ],
            "events": [
                {
                    "time": e.time,
                    "kind": e.kind,
                    "config": dict(e.config) if e.config is not None else None,
                    "estimates": dict(e.estimates),
                }
                for e in self.events
            ],
            "total_time": self.total_time,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AdaptiveRun":
        """Inverse of :meth:`to_dict`."""
        return cls(
            label=data["label"],
            qos={k: float(v) for k, v in data["qos"].items()},
            image_times=[(float(t), float(d)) for t, d in data["image_times"]],
            round_times=[(float(t), float(d)) for t, d in data["round_times"]],
            switches=[
                (float(t), Configuration(old), Configuration(new))
                for t, old, new in data["switches"]
            ],
            events=[
                AdaptationEvent(
                    time=float(e["time"]),
                    kind=e["kind"],
                    config=(
                        Configuration(e["config"])
                        if e["config"] is not None
                        else None
                    ),
                    estimates={k: float(v) for k, v in e["estimates"].items()},
                )
                for e in data["events"]
            ],
            total_time=float(data["total_time"]),
        )


def run_adaptive_viz(
    db: PerformanceDatabase,
    preference: UserPreference,
    initial_point: ResourcePoint,
    initial_limits: Dict[str, ResourceLimits],
    variations: Tuple[ResourceVariation, ...],
    workload_costs,
    n_images: int = 10,
    adaptive: bool = True,
    forced_config: Optional[Configuration] = None,
    scheduler_mode: str = "interpolate",
    label: str = "",
    seed: int = 0,
    until: float = 10_000.0,
    monitor_kwargs: Optional[dict] = None,
    optimality_slack: float = 0.1,
) -> AdaptiveRun:
    """Run the visualization app under a resource-variation scenario.

    With ``adaptive=False`` and ``forced_config``, runs a static
    configuration for the comparison curves of Fig. 7.
    """
    app = make_viz_app()
    scheduler = ResourceScheduler(
        db, preference, mode=scheduler_mode, optimality_slack=optimality_slack
    )
    controller = AdaptationController(
        scheduler,
        monitoring_plan=Preprocessor(app).monitoring_plan(),
        monitor_kwargs=monitor_kwargs
        or {"window": 2.0, "cooldown": 5.0, "period": 0.01},
    )
    if forced_config is not None:
        config = forced_config
    else:
        config = controller.select_initial(initial_point).config

    testbed = Testbed(
        host_specs=app.env.host_specs(), link_specs=app.env.link_specs(), seed=seed
    )
    workload = VizWorkload(n_images=n_images, costs=workload_costs, seed=seed)
    rt = app.instantiate(testbed, config, limits=initial_limits, workload=workload)
    if adaptive:
        if forced_config is not None:
            controller.current_decision = scheduler.select(initial_point)
        controller.attach(rt)

    def vary():
        for variation in variations:
            yield testbed.sim.timeout(variation.at - testbed.sim.now)
            rt.sandboxes["client"].set_limits(variation.limits)

    if variations:
        testbed.sim.process(vary())
    testbed.run(until=until)
    testbed.shutdown()
    if not rt.finished.triggered:
        raise RuntimeError(f"run {label!r} did not finish by t={until}")
    return AdaptiveRun(
        label=label or (config.label() if not adaptive else "adaptive"),
        qos=rt.qos.snapshot(),
        image_times=list(workload.image_times),
        round_times=list(workload.round_times),
        switches=list(rt.controls.history),
        events=list(controller.events) if adaptive else [],
        total_time=workload.image_times[-1][0] if workload.image_times else 0.0,
    )


# ------------------------------------------------------------ experiment 1


def _exp1_cell(payload: dict, seed: int) -> dict:
    """Sweep job: one Experiment-1 run (``run``: adaptive | lzw | bzip2)."""
    db = PerformanceDatabase.from_dict(payload["db"])
    preference = UserPreference.single(Objective("transmit_time", "minimize"))
    initial_point = ResourcePoint({"client.cpu": 1.0, "client.network": 500e3})
    initial_limits = {"client": ResourceLimits(net_bw=500e3)}
    variations = (
        ResourceVariation(payload["switch_at"], ResourceLimits(net_bw=50e3)),
    )
    run = payload["run"]
    if run == "adaptive":
        out = run_adaptive_viz(
            db, preference, initial_point, initial_limits, variations,
            EXP1_COSTS, n_images=payload["n_images"], label="adaptive",
            seed=seed,
        )
    else:
        out = run_adaptive_viz(
            db, preference, initial_point, initial_limits, variations,
            EXP1_COSTS, n_images=payload["n_images"], adaptive=False,
            forced_config=Configuration({"dR": 320, "c": run, "l": 4}),
            label=f"static {run}", seed=seed,
        )
    return out.to_dict()


def run_experiment1(
    seed: int = 0,
    n_images: int = 10,
    switch_at: float = 25.0,
    db: Optional[PerformanceDatabase] = None,
    engine=None,
) -> Tuple[FigureResult, Dict[str, AdaptiveRun]]:
    """Adapting the compression method to network conditions (Fig. 7a)."""
    if db is None:
        db, _dims, _configs = fig6a_database(seed=seed, engine=engine)
    keys = ("adaptive", "lzw", "bzip2")
    db_dict = db.to_dict()
    values = sweep_cells(
        "repro.experiments.fig7:_exp1_cell",
        [
            {"db": db_dict, "run": key, "n_images": n_images,
             "switch_at": switch_at}
            for key in keys
        ],
        seed=seed,
        engine=engine,
    )
    runs: Dict[str, AdaptiveRun] = {
        key: AdaptiveRun.from_dict(value) for key, value in zip(keys, values)
    }

    result = FigureResult(
        figure="Fig 7a",
        title="Adapting compression method when bandwidth drops "
        f"500 KB/s -> 50 KB/s at t={switch_at:g}s",
        xlabel="time (s)",
        ylabel="image transmission time (s)",
    )
    for key, label in (("adaptive", "adaptive"), ("lzw", "static A (LZW)"),
                       ("bzip2", "static B (bzip2)")):
        series = result.new_series(label)
        for t, duration in runs[key].image_series:
            series.add(t, duration)
    if runs["adaptive"].switches:
        t_switch, old, new = runs["adaptive"].switches[0]
        result.note(
            f"adaptive switched {old.c} -> {new.c} at t={t_switch:.1f}s"
        )
    result.note(
        f"total: adaptive={runs['adaptive'].total_time:.0f}s, "
        f"static A={runs['lzw'].total_time:.0f}s, "
        f"static B={runs['bzip2'].total_time:.0f}s"
    )
    return result, runs


# ------------------------------------------------------------ experiment 2


def _exp2_cell(payload: dict, seed: int) -> dict:
    """Sweep job: one Experiment-2 run (``run``: adaptive | l4 | l3)."""
    db = PerformanceDatabase.from_dict(payload["db"])
    preference = UserPreference.single(
        Objective("resolution", "maximize"),
        [MetricRange("transmit_time", hi=payload["deadline"])],
    )
    initial_point = ResourcePoint({"client.cpu": 0.9, "client.network": EXP2_BW})
    initial_limits = {
        "client": ResourceLimits(cpu_share=0.9, net_bw=EXP2_BW)
    }
    variations = (
        ResourceVariation(
            payload["switch_at"], ResourceLimits(cpu_share=0.4, net_bw=EXP2_BW)
        ),
    )
    run = payload["run"]
    if run == "adaptive":
        out = run_adaptive_viz(
            db, preference, initial_point, initial_limits, variations,
            EXP2_COSTS, n_images=payload["n_images"], label="adaptive",
            seed=seed,
        )
    else:
        level = int(run[1:])
        out = run_adaptive_viz(
            db, preference, initial_point, initial_limits, variations,
            EXP2_COSTS, n_images=payload["n_images"], adaptive=False,
            forced_config=Configuration({"dR": 320, "c": "lzw", "l": level}),
            label=f"static level {level}", seed=seed,
        )
    return out.to_dict()


def run_experiment2(
    seed: int = 0,
    n_images: int = 10,
    switch_at: float = 30.0,
    deadline: float = 10.0,
    db: Optional[PerformanceDatabase] = None,
    engine=None,
) -> Tuple[FigureResult, Dict[str, AdaptiveRun]]:
    """Adapting image resolution to CPU conditions (Fig. 7b)."""
    if db is None:
        db, _dims, _configs = fig6b_database(seed=seed, engine=engine)
    keys = ("adaptive", "l4", "l3")
    db_dict = db.to_dict()
    values = sweep_cells(
        "repro.experiments.fig7:_exp2_cell",
        [
            {"db": db_dict, "run": key, "n_images": n_images,
             "switch_at": switch_at, "deadline": deadline}
            for key in keys
        ],
        seed=seed,
        engine=engine,
    )
    runs: Dict[str, AdaptiveRun] = {
        key: AdaptiveRun.from_dict(value) for key, value in zip(keys, values)
    }

    result = FigureResult(
        figure="Fig 7b",
        title="Degrading image resolution when CPU share drops 90% -> 40% "
        f"at t={switch_at:g}s (deadline {deadline:g}s)",
        xlabel="time (s)",
        ylabel="image transmission time (s)",
    )
    for key, label in (("adaptive", "adaptive"), ("l4", "static level 4"),
                       ("l3", "static level 3")):
        series = result.new_series(label)
        for t, duration in runs[key].image_series:
            series.add(t, duration)
    if runs["adaptive"].switches:
        t_switch, old, new = runs["adaptive"].switches[0]
        result.note(f"adaptive switched level {old.l} -> {new.l} at t={t_switch:.1f}s")
    return result, runs


# ------------------------------------------------------------ experiment 3


def _exp3_cell(payload: dict, seed: int) -> dict:
    """Sweep job: one Experiment-3 run (``run``: adaptive | dR320 | dR80)."""
    db = PerformanceDatabase.from_dict(payload["db"])
    preference = UserPreference.single(
        Objective("transmit_time", "minimize"),
        [MetricRange("response_time", hi=payload["response_bound"])],
    )
    initial_point = ResourcePoint({"client.cpu": 0.9, "client.network": EXP3_BW})
    initial_limits = {
        "client": ResourceLimits(cpu_share=0.9, net_bw=EXP3_BW)
    }
    variations = (
        ResourceVariation(
            payload["switch_at"], ResourceLimits(cpu_share=0.4, net_bw=EXP3_BW)
        ),
    )
    run = payload["run"]
    if run == "adaptive":
        out = run_adaptive_viz(
            db, preference, initial_point, initial_limits, variations,
            EXP3_COSTS, n_images=payload["n_images"], label="adaptive",
            seed=seed,
        )
    else:
        dr = int(run[2:])
        out = run_adaptive_viz(
            db, preference, initial_point, initial_limits, variations,
            EXP3_COSTS, n_images=payload["n_images"], adaptive=False,
            forced_config=Configuration({"dR": dr, "c": "lzw", "l": 4}),
            label=f"static fovea {dr}", seed=seed,
        )
    return out.to_dict()


def run_experiment3(
    seed: int = 0,
    n_images: int = 16,
    switch_at: float = 40.0,
    response_bound: float = 1.0,
    db: Optional[PerformanceDatabase] = None,
    engine=None,
) -> Tuple[FigureResult, FigureResult, Dict[str, AdaptiveRun]]:
    """Adapting fovea size to CPU conditions (Figs. 7c and 7d)."""
    if db is None:
        db, _dims, _configs = fig5_database(seed=seed, engine=engine)
    keys = ("adaptive", "dR320", "dR80")
    db_dict = db.to_dict()
    values = sweep_cells(
        "repro.experiments.fig7:_exp3_cell",
        [
            {"db": db_dict, "run": key, "n_images": n_images,
             "switch_at": switch_at, "response_bound": response_bound}
            for key in keys
        ],
        seed=seed,
        engine=engine,
    )
    runs: Dict[str, AdaptiveRun] = {
        key: AdaptiveRun.from_dict(value) for key, value in zip(keys, values)
    }

    fig_c = FigureResult(
        figure="Fig 7c",
        title="Response time while adapting fovea size (CPU 90% -> 40% "
        f"at t={switch_at:g}s, bound {response_bound:g}s)",
        xlabel="time (s)",
        ylabel="round response time (s)",
    )
    fig_d = FigureResult(
        figure="Fig 7d",
        title="Transmission time while adapting fovea size",
        xlabel="time (s)",
        ylabel="image transmission time (s)",
    )
    for key, label in (("adaptive", "adaptive"), ("dR320", "static fovea 320"),
                       ("dR80", "static fovea 80")):
        sc = fig_c.new_series(label)
        for t, duration in runs[key].response_series:
            sc.add(t, duration)
        sd = fig_d.new_series(label)
        for t, duration in runs[key].image_series:
            sd.add(t, duration)
    if runs["adaptive"].switches:
        t_switch, old, new = runs["adaptive"].switches[0]
        fig_c.note(f"adaptive switched fovea {old.dR} -> {new.dR} at t={t_switch:.1f}s")
    return fig_c, fig_d, runs
