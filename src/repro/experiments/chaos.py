"""Chaos experiment: run-time adaptation under injected faults.

The paper's experiments vary resources *gently* (a bandwidth or CPU-share
step).  This experiment instead runs the visualization application while
the environment actively misbehaves — the server host crashes and
restarts, the client-server link partitions and heals, and the monitoring
exchange's estimate traffic is lossy and delayed — and records the full
configuration trajectory the adaptation runtime takes through it.

Everything is deterministic: infrastructure faults fire at scripted
virtual times and per-message faults draw from the seeded ``"faults"``
RNG stream, so two runs with the same ``(seed, fault_spec)`` produce
byte-identical trajectories.  Replay a run by passing its recorded
``fault_spec`` and seed back to :func:`run_chaos`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..apps.visualization import VizWorkload, make_viz_app
from ..faults import FaultInjector, FaultPlan
from ..sandbox import ResourceLimits, Testbed
from .common import (
    FigureResult,
    attach_instrumentation,
    build_viz_controller,
    detach_instrumentation,
    start_estimate_exchanges,
    viz_initial_point,
    viz_preference,
)
from .fig6 import EXP1_COSTS, fig6a_database
from .scene import Scene

__all__ = ["build_chaos", "run_chaos", "DEFAULT_FAULT_SPEC", "DEFAULT_VARIATIONS"]

#: The scripted fault schedule: a server crash window, a full client-server
#: partition, and a lossy/laggy spell on the monitoring exchange traffic.
DEFAULT_FAULT_SPEC: Dict = {
    "events": [
        {"kind": "crash", "host": "server", "at": 15.0, "until": 32.0,
         "mode": "queue"},
        {"kind": "partition", "groups": [["client"], ["server"]],
         "at": 60.0, "until": 70.0, "mode": "queue"},
        {"kind": "loss", "rate": 0.25, "port": "monitor.exchange",
         "at": 75.0, "until": 95.0},
        {"kind": "delay", "extra": 0.02, "jitter": 0.01,
         "port": "monitor.exchange", "at": 75.0, "until": 95.0},
    ]
}

#: Client bandwidth-limit steps (resource drift, not faults): a drop just
#: before the crash — so the resulting switch decision lands while the
#: client is stalled behind the dead server and the steering handshake
#: times out — then a recovery that lets adaptation switch back.
DEFAULT_VARIATIONS: Tuple[Tuple[float, float], ...] = (
    (7.0, 50e3),
    (100.0, 500e3),
)


def build_chaos(
    seed: int = 0,
    n_images: int = 8,
    fault_spec: Optional[Dict] = None,
    variations: Tuple[Tuple[float, float], ...] = DEFAULT_VARIATIONS,
    until: float = 2000.0,
    detect_races: bool = False,
    recorder=None,
    usage=None,
    supervise: bool = False,
    tiebreak=None,
    profiler=None,
) -> Scene:
    """Construct the chaos scenario without running it.

    Performs every construction statement of :func:`run_chaos` in the
    original order (this order is byte-identity-gated by ``bench_chaos``)
    and returns a :class:`~repro.experiments.scene.Scene` whose
    ``finalize()`` produces the figure + payload once the sim has been
    driven to ``until``.

    With ``detect_races`` the run is instrumented by
    :class:`repro.analysis.RaceDetector`: every host mailbox and the
    exchanges' estimate tables are watched for same-timestamp conflicting
    accesses whose order is decided only by the event queue's FIFO
    tiebreak, and the payload gains a ``"races"`` list (empty == the
    trajectory does not hinge on scheduling accidents).

    With ``recorder`` (a :class:`repro.obs.TraceRecorder`) the run emits
    the full span/metric trace — the recorder is strictly passive, so the
    returned payload is byte-identical with or without it.

    With ``usage`` (a :class:`repro.obs.UsageAccountant`) the run also
    accounts served work per resource, process, and active configuration.
    Accounting is passive like tracing — the payload stays byte-identical
    — and the account is read from ``usage.summary()`` by the caller, not
    folded into the payload.

    With ``profiler`` (a :class:`repro.obs.KernelProfiler`) the kernel
    attributes host wall-clock cost per event bucket and counts heap /
    tie-window / fluid-update telemetry.  Profiling is passive like
    tracing — the payload stays byte-identical — and results are read
    from ``profiler.summary()`` by the caller.

    With ``tiebreak`` (a policy from :mod:`repro.analysis.schedule`) the
    event queue's same-instant tie order is under the caller's control —
    the schedule explorer uses this to replay the run under permuted
    same-``(time, priority)`` orders.  ``None`` is the default FIFO.

    With ``supervise`` a :class:`repro.recovery.Supervisor` owns the
    server process.  No process dies before the run finishes (host
    crashes park traffic, they don't kill processes), so the supervisor
    schedules nothing and draws no randomness — the payload is
    byte-identical with supervision on or off, which the chaos benchmark
    asserts.
    """
    db, _dims, _configs = fig6a_database(seed=seed)
    plan = FaultPlan.from_spec(
        DEFAULT_FAULT_SPEC if fault_spec is None else fault_spec
    )
    preference = viz_preference()
    initial_point = viz_initial_point()

    app = make_viz_app()
    _scheduler, controller = build_viz_controller(
        app, db, preference, recorder=recorder
    )
    config = controller.select_initial(initial_point).config

    testbed = Testbed(
        host_specs=app.env.host_specs(), link_specs=app.env.link_specs(),
        seed=seed, tiebreak=tiebreak,
    )
    supervisor = None
    if supervise:
        from ..recovery import Supervisor

        supervisor = Supervisor(testbed.sim, seed=seed).attach()
    injector = FaultInjector.attach(testbed, plan, seed=seed)
    workload = VizWorkload(n_images=n_images, costs=EXP1_COSTS, seed=seed)
    rt = app.instantiate(
        testbed,
        config,
        limits={"client": ResourceLimits(net_bw=500e3)},
        workload=workload,
    )
    if supervisor is not None:
        # Shut down before the server's normal post-CloseConnection exit
        # lands, so teardown is never mistaken for a death.
        if rt.finished.callbacks is not None:
            rt.finished.callbacks.append(lambda _e: supervisor.shutdown())

        def respawn_server(state):
            from ..apps.visualization.server import server_process

            return rt.sim.process(
                server_process(rt, workload, rt.app_model), name="viz-server"
            )

        supervisor.supervise(
            "viz-server", respawn_server, processes=[rt.processes["viz-server"]]
        )
    controller.attach(rt)

    # Estimate exchange in both directions; the client side feeds the
    # controller's watchdog with server heartbeats.
    server_agent, client_ex, server_ex = start_estimate_exchanges(rt, controller)

    detector = None
    if detect_races:
        from ..analysis.races import RaceDetector, watch

        detector = RaceDetector(testbed.sim).attach()
        for host_name in sorted(testbed.hosts):
            watch(detector, testbed.hosts[host_name])
        for label, exchange in (("client", client_ex), ("server", server_ex)):
            detector.watch_mapping(
                exchange, "remote_estimates", f"{label}.remote_estimates"
            )
            detector.watch_mapping(
                exchange, "peer_last_seen", f"{label}.peer_last_seen"
            )

    # Hook order: the race detector refuses to attach over an existing
    # step_hook, so it goes first; the accountant and the recorder each
    # chain whatever they find, recorder last (attach_instrumentation
    # keeps that canonical order).
    attach_instrumentation(
        testbed.sim, testbed, config,
        usage=usage, recorder=recorder, profiler=profiler,
    )

    def vary():
        for at, net_bw in variations:
            yield testbed.sim.timeout(at - testbed.sim.now)
            rt.sandboxes["client"].set_limits(ResourceLimits(net_bw=net_bw))

    if variations:
        testbed.sim.process(vary())

    def _finalize():
        testbed.shutdown()
        if not rt.finished.triggered:
            raise RuntimeError(f"chaos run did not finish by t={until}")
        return _summarize_chaos(
            plan=plan, seed=seed, n_images=n_images, variations=variations,
            injector=injector, controller=controller, rt=rt,
            workload=workload, testbed=testbed,
            client_ex=client_ex, server_ex=server_ex, detector=detector,
            usage=usage, recorder=recorder, profiler=profiler,
        )

    return Scene(
        name="chaos", seed=seed, until=until, testbed=testbed,
        finalize=_finalize, rt=rt, controller=controller, workload=workload,
        injector=injector, supervisor=supervisor,
        client_exchange=client_ex, server_exchange=server_ex,
        recorder=recorder, usage=usage, profiler=profiler,
    )


def _summarize_chaos(
    plan, seed, n_images, variations, injector, controller, rt, workload,
    testbed, client_ex, server_ex, detector, usage, recorder, profiler,
) -> Tuple[FigureResult, Dict]:
    payload = {
        "experiment": "chaos",
        "seed": seed,
        "n_images": n_images,
        "fault_spec": plan.to_spec(),
        "variations": [[at, bw] for at, bw in variations],
        "injections": injector.log,
        "events": [
            {
                "t": e.time,
                "kind": e.kind,
                "config": e.config.label() if e.config is not None else None,
            }
            for e in controller.events
        ],
        "switches": [
            {"t": t, "from": old.label(), "to": new.label()}
            for t, old, new in rt.controls.history
        ],
        "final_config": rt.controls.current.label(),
        "qos": rt.qos.snapshot(),
        "image_times": [[t, d] for t, d in workload.image_times],
        "network": {
            "delivered": testbed.network.messages_delivered,
            "lost": testbed.network.messages_lost,
            "delayed": testbed.network.messages_delayed,
            "duplicated": testbed.network.messages_duplicated,
            "parked": testbed.network.messages_parked_total,
        },
        "exchange": {
            "client_updates_received": client_ex.updates_received,
            "server_updates_received": server_ex.updates_received,
            "client_expired": client_ex.expired,
            "injector_dropped": injector.dropped,
            "injector_delayed": injector.delayed,
        },
        "lost_peers_at_end": sorted(controller.lost_peers),
        "total_time": workload.image_times[-1][0] if workload.image_times else 0.0,
    }
    if detector is not None:
        payload["races"] = [r.to_dict() for r in detector.finish()]
        detector.detach()
    detach_instrumentation(usage=usage, recorder=recorder, profiler=profiler)

    result = FigureResult(
        figure="Chaos",
        title="Adaptation trajectory through crash, partition, and recovery",
        xlabel="time (s)",
        ylabel="image transmission time (s)",
    )
    series = result.new_series("adaptive under faults")
    for t, duration in workload.image_times:
        series.add(t, duration)
    for entry in injector.log:
        what = entry.get("host") or entry.get("between") or entry.get("groups")
        result.note(f"t={entry['t']:.1f}s: {entry['action']} ({what})")
    for switch in payload["switches"]:
        result.note(
            f"t={switch['t']:.1f}s: switched {switch['from']} -> {switch['to']}"
        )
    kinds = [e.kind for e in controller.events]
    for kind in ("peer-lost", "peer-recovered", "steering-timeout", "degraded"):
        result.note(f"{kind} events: {kinds.count(kind)}")
    result.note(f"final config: {payload['final_config']}")
    return result, payload


def run_chaos(
    seed: int = 0,
    n_images: int = 8,
    fault_spec: Optional[Dict] = None,
    variations: Tuple[Tuple[float, float], ...] = DEFAULT_VARIATIONS,
    until: float = 2000.0,
    detect_races: bool = False,
    recorder=None,
    usage=None,
    supervise: bool = False,
    tiebreak=None,
    profiler=None,
) -> Tuple[FigureResult, Dict]:
    """Run the adaptive visualization app through a fault schedule.

    Returns the rendered figure plus a JSON-friendly trajectory payload
    (written to ``benchmarks/out/chaos.json`` by the benchmark harness).
    Construction, run, and summary are :func:`build_chaos` +
    ``testbed.run`` + ``Scene.finalize`` — see that function for what the
    instrumentation/`supervise`/`tiebreak` knobs do.
    """
    scene = build_chaos(
        seed=seed, n_images=n_images, fault_spec=fault_spec,
        variations=variations, until=until, detect_races=detect_races,
        recorder=recorder, usage=usage, supervise=supervise,
        tiebreak=tiebreak, profiler=profiler,
    )
    scene.testbed.run(until=until)
    return scene.finalize()
