"""Experiment harness: one module per paper figure, plus ablations."""

from .ablations import (
    hysteresis_ablation,
    isolation_ablation,
    limiter_mode_ablation,
    sampling_strategy_ablation,
    scheduler_interpolation_ablation,
)
from .chaos import DEFAULT_FAULT_SPEC, DEFAULT_VARIATIONS, run_chaos
from .common import FigureResult, Series, ascii_plot, render_table
from .crowd import crowd_cell, run_crowd, run_crowd_figure
from .extension_memory import memory_database, run_memory_adaptation
from .fig3 import run_fig3a, run_fig3b
from .fig4 import run_fig4a, run_fig4b
from .fig5 import fig5_database, run_fig5
from .fig6 import fig6a_database, fig6b_database, run_fig6a, run_fig6b
from .recovery import (
    CHEAP_CONFIG,
    DEFAULT_CROWD,
    DEFAULT_RECOVERY_FAULTS,
    run_recovery,
)
from .fig7 import (
    AdaptiveRun,
    ResourceVariation,
    run_adaptive_viz,
    run_experiment1,
    run_experiment2,
    run_experiment3,
)

__all__ = [
    "Series",
    "FigureResult",
    "render_table",
    "ascii_plot",
    "run_fig3a",
    "memory_database",
    "run_memory_adaptation",
    "run_fig3b",
    "run_fig4a",
    "run_fig4b",
    "run_fig5",
    "fig5_database",
    "run_fig6a",
    "run_fig6b",
    "fig6a_database",
    "fig6b_database",
    "run_experiment1",
    "run_experiment2",
    "run_experiment3",
    "run_adaptive_viz",
    "AdaptiveRun",
    "ResourceVariation",
    "run_chaos",
    "DEFAULT_FAULT_SPEC",
    "DEFAULT_VARIATIONS",
    "run_recovery",
    "DEFAULT_RECOVERY_FAULTS",
    "DEFAULT_CROWD",
    "CHEAP_CONFIG",
    "run_crowd",
    "run_crowd_figure",
    "crowd_cell",
    "scheduler_interpolation_ablation",
    "sampling_strategy_ablation",
    "hysteresis_ablation",
    "limiter_mode_ablation",
    "isolation_ablation",
]
