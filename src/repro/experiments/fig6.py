"""Figure 6: compression-method and resolution tradeoffs.

(a) Image transmission time vs network bandwidth for LZW ("compression A")
    and bzip2 ("compression B"): B wins on thin pipes (smaller payload), A
    wins on fat pipes (CPU becomes the bottleneck) — the crossover that
    drives Experiment 1.
(b) Image transmission time vs CPU share for resolution levels 3 and 4 —
    the basis of Experiment 2's quality degradation.
"""

from __future__ import annotations

from typing import Tuple

from ..apps.visualization import VizCosts, VizWorkload, make_viz_app
from ..exec import AppSpec, default_engine
from ..profiling import (
    ProfilingDriver,
    ResourceDimension,
    ResourcePoint,
    vary_one_plan,
)
from ..tunable import Configuration
from .common import FigureResult

__all__ = [
    "EXP1_COSTS",
    "EXP2_COSTS",
    "EXP2_BW",
    "run_fig6a",
    "run_fig6b",
    "fig6a_database",
    "fig6b_database",
    "exp1_workload",
    "exp2_workload",
]

#: Experiment-1 calibration: light rendering; time is network/codec bound.
EXP1_COSTS = VizCosts(display_cost=3e-5)
#: Experiment-2 calibration: heavy rendering; a 1 MB/s pipe (the Fig-4b
#: server limit), so CPU dominates and the 10 s deadline bites: level 4
#: lands just inside the deadline at 90 % CPU and far outside at 40 %.
EXP2_COSTS = VizCosts(display_cost=4.2e-4)
EXP2_BW = 1e6

BANDWIDTHS: Tuple[float, ...] = (25e3, 50e3, 100e3, 200e3, 350e3, 500e3, 750e3, 1e6)
CPU_SHARES: Tuple[float, ...] = (0.2, 0.3, 0.4, 0.6, 0.8, 0.9, 1.0)


def exp1_workload(config, point, run_seed, n_images: int = 1):
    """Module-level Experiment-1 workload factory (importable by workers)."""
    return VizWorkload(n_images=n_images, costs=EXP1_COSTS, seed=run_seed)


def exp2_workload(config, point, run_seed, n_images: int = 1):
    """Module-level Experiment-2 workload factory (importable by workers)."""
    return VizWorkload(n_images=n_images, costs=EXP2_COSTS, seed=run_seed)


def fig6a_database(
    bandwidths: Tuple[float, ...] = BANDWIDTHS,
    n_images: int = 1,
    seed: int = 0,
    recorder=None,
    engine=None,
    usage=None,
    profiler=None,
):
    """Profile {lzw, bzip2} over the client-bandwidth axis (CPU fixed)."""
    app = make_viz_app()
    dims = [
        ResourceDimension("client.cpu", (0.5, 1.0), lo=0.01, hi=1.0),
        ResourceDimension("client.network", tuple(bandwidths), lo=1.0),
    ]
    app_spec = AppSpec(
        "repro.apps.visualization:make_viz_app",
        workload="repro.experiments.fig6:exp1_workload",
        workload_kwargs={"n_images": n_images},
    )
    if engine is None and recorder is None and usage is None and profiler is None:
        engine = default_engine()
    driver = ProfilingDriver(
        app,
        dims,
        workload_factory=app_spec.build_workload_factory(),
        seed=seed,
        recorder=recorder,
        app_spec=app_spec,
        usage=usage,
        profiler=profiler,
    )
    configs = [
        Configuration({"dR": 320, "c": codec, "l": 4}) for codec in ("lzw", "bzip2")
    ]
    base = ResourcePoint({"client.cpu": 1.0, "client.network": bandwidths[-1]})
    plan = vary_one_plan(dims, "client.network", base)
    db = driver.profile(configs=configs, plan=plan, engine=engine)
    return db, dims, configs


def fig6b_database(
    shares: Tuple[float, ...] = CPU_SHARES,
    n_images: int = 1,
    seed: int = 0,
    recorder=None,
    engine=None,
    usage=None,
    profiler=None,
):
    """Profile resolution levels {3, 4} over the CPU-share axis."""
    app = make_viz_app()
    dims = [
        ResourceDimension("client.cpu", tuple(shares), lo=0.01, hi=1.0),
        ResourceDimension("client.network", (EXP2_BW / 2, EXP2_BW), lo=1.0),
    ]
    app_spec = AppSpec(
        "repro.apps.visualization:make_viz_app",
        workload="repro.experiments.fig6:exp2_workload",
        workload_kwargs={"n_images": n_images},
    )
    if engine is None and recorder is None and usage is None and profiler is None:
        engine = default_engine()
    driver = ProfilingDriver(
        app,
        dims,
        workload_factory=app_spec.build_workload_factory(),
        seed=seed,
        recorder=recorder,
        app_spec=app_spec,
        usage=usage,
        profiler=profiler,
    )
    configs = [
        Configuration({"dR": 320, "c": "lzw", "l": level}) for level in (3, 4)
    ]
    base = ResourcePoint({"client.cpu": 1.0, "client.network": EXP2_BW})
    plan = vary_one_plan(dims, "client.cpu", base)
    db = driver.profile(configs=configs, plan=plan, engine=engine)
    return db, dims, configs


def run_fig6a(seed: int = 0, engine=None) -> FigureResult:
    db, _dims, configs = fig6a_database(seed=seed, engine=engine)
    result = FigureResult(
        figure="Fig 6a",
        title="Image transmission time for different compression methods "
        "vs network bandwidth",
        xlabel="bandwidth (KB/s)",
        ylabel="transmission time (s)",
    )
    for config in configs:
        label = "A (LZW)" if config.c == "lzw" else "B (bzip2)"
        series = result.new_series(label)
        for point in db.points_for(config):
            rec = db.record_at(config, point)
            series.add(point["client.network"] / 1e3, rec.metrics["transmit_time"])
        series.points.sort()
    return result


def run_fig6b(seed: int = 0, engine=None) -> FigureResult:
    db, _dims, configs = fig6b_database(seed=seed, engine=engine)
    result = FigureResult(
        figure="Fig 6b",
        title="Image transmission time for images of different resolutions "
        "vs CPU share",
        xlabel="CPU share (%)",
        ylabel="transmission time (s)",
    )
    for config in configs:
        series = result.new_series(f"level {config.l}")
        for point in db.points_for(config):
            rec = db.record_at(config, point)
            series.add(point["client.cpu"] * 100, rec.metrics["transmit_time"])
        series.points.sort()
    return result
