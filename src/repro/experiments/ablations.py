"""Ablation studies on the framework's design choices (DESIGN.md A1-A5).

The paper flags several of these explicitly: its implemented scheduler
lacked interpolation (Section 7.1), its sampling lacked the sensitivity
tool (Section 7.1), and Section 7.5 warns that small resource variations
need hysteresis-style safeguards against useless adaptations.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..apps import make_toy_app
from ..exec import AppSpec, default_engine, sweep_cells
from ..profiling import (
    PerformanceDatabase,
    ProfilingDriver,
    ResourceDimension,
    ResourcePoint,
)
from ..runtime import Objective, ResourceScheduler, UserPreference
from ..sandbox import LimiterMode, ResourceLimits, Testbed
from ..tunable import Configuration

__all__ = [
    "scheduler_interpolation_ablation",
    "sampling_strategy_ablation",
    "hysteresis_ablation",
    "limiter_mode_ablation",
    "isolation_ablation",
]


def _toy_driver(levels: Tuple[float, ...], seed: int = 0, **kwargs) -> ProfilingDriver:
    app = make_toy_app()
    dims = [ResourceDimension("node.cpu", levels, lo=0.01, hi=1.0)]
    driver = ProfilingDriver(
        app, dims, seed=seed, app_spec=AppSpec("repro.apps:make_toy_app"),
        **kwargs,
    )
    return driver, app, dims


def scheduler_interpolation_ablation(
    query_shares: Tuple[float, ...] = (0.15, 0.33, 0.52, 0.71, 0.93),
    grid: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0),
    seed: int = 0,
    engine=None,
) -> Dict[str, float]:
    """A1: interpolating vs nearest-point prediction accuracy.

    Ground truth for the toy app is elapsed = baseline / share.  Returns
    mean relative prediction error for both scheduler modes; interpolation
    should be strictly more accurate off-grid.
    """
    driver, app, dims = _toy_driver(grid, seed=seed)
    config = Configuration({"scale": 1.0})
    db = driver.profile(configs=[config], engine=engine or default_engine())
    baseline = db.predict(config, ResourcePoint({"node.cpu": 1.0}), "elapsed")
    pref = UserPreference.single(Objective("elapsed"))
    errors = {"interpolate": [], "nearest": []}
    for mode in errors:
        sched = ResourceScheduler(db, pref, mode=mode)
        for share in query_shares:
            predicted = sched.predict(config, ResourcePoint({"node.cpu": share}))
            truth = baseline / share
            errors[mode].append(abs(predicted["elapsed"] - truth) / truth)
    return {mode: float(np.mean(v)) for mode, v in errors.items()}


def sampling_strategy_ablation(
    budget: int = 9,
    query_shares: Tuple[float, ...] = (0.12, 0.18, 0.27, 0.45, 0.66),
    seed: int = 0,
    engine=None,
) -> Dict[str, float]:
    """A2: grid vs adaptive (sensitivity-driven) sampling at equal budget.

    The toy response curve 1/share bends hardest at low shares; adaptive
    refinement should spend its budget there and beat the uniform grid on
    mean interpolation error over low-share queries.
    """
    config = Configuration({"scale": 1.0})
    engine = engine or default_engine()

    # Uniform grid with the full budget.
    uniform_levels = tuple(np.linspace(0.1, 1.0, budget).round(4))
    driver_u, app, dims = _toy_driver(uniform_levels, seed=seed)
    db_uniform = driver_u.profile(configs=[config], engine=engine)

    # Coarse grid + sensitivity-driven refinement with the same total budget.
    coarse = (0.1, 0.55, 1.0)
    driver_a, app, dims = _toy_driver(coarse, seed=seed)
    db_adaptive = driver_a.profile_adaptive(
        configs=[config],
        rounds=3,
        per_round=2,
        min_score=0.005,
        engine=engine,
    )
    baseline = db_uniform.predict(config, ResourcePoint({"node.cpu": 1.0}), "elapsed")

    def mean_error(db: PerformanceDatabase) -> float:
        errs = []
        for share in query_shares:
            predicted = db.predict(config, ResourcePoint({"node.cpu": share}), "elapsed")
            truth = baseline / share
            errs.append(abs(predicted - truth) / truth)
        return float(np.mean(errs))

    return {
        "uniform": mean_error(db_uniform),
        "adaptive": mean_error(db_adaptive),
        "uniform_samples": float(len(db_uniform)),
        "adaptive_samples": float(len(db_adaptive)),
    }


def hysteresis_ablation(
    optimality_slack: float = 0.15,
    monitor_hysteresis: float = 0.25,
    oscillations: int = 6,
    seed: int = 0,
) -> Dict[str, float]:
    """A3: do small resource oscillations cause configuration thrash?

    Section 7.5: "Smaller variations would require better algorithms ...
    so as to not degrade overall performance by unnecessary adaptations."
    We oscillate the client bandwidth around a near-tie region of the
    compression crossover and count configuration switches, with and
    without the scheduler's optimality slack + monitor hysteresis.  The
    margins must also absorb the transient *under*-estimates the monitor
    reads right after a rate change, while the backlog accrued at the old
    rate drains.  Returns switch counts for both settings.
    """
    from ..apps.visualization import VizCosts
    from .fig7 import ResourceVariation, run_adaptive_viz
    from ..profiling import Record

    def crossover_db() -> PerformanceDatabase:
        db = PerformanceDatabase(
            "active-visualization", ["client.cpu", "client.network"]
        )
        samples = {
            ("lzw", 50e3): 55.0, ("lzw", 200e3): 14.0, ("lzw", 500e3): 6.5,
            ("bzip2", 50e3): 36.0, ("bzip2", 200e3): 12.0, ("bzip2", 500e3): 10.0,
        }
        for (codec, bw), t in samples.items():
            db.add(
                Record(
                    Configuration({"dR": 320, "c": codec, "l": 4}),
                    ResourcePoint({"client.cpu": 1.0, "client.network": bw}),
                    {"transmit_time": t, "response_time": t / 4, "resolution": 4.0},
                )
            )
        return db

    from ..runtime import Objective as _Obj, UserPreference as _Pref
    from ..sandbox import ResourceLimits as _RL

    db = crossover_db()
    pref = _Pref.single(_Obj("transmit_time"))
    # The lzw/bzip2 decision boundary of this database sits near 310 KB/s.
    # Starting from 420 KB/s (lzw territory) and dipping to 290 KB/s just
    # crosses the naive controller's validity bound (310 KB/s) each cycle,
    # flipping it between configurations, while the guarded controller's
    # monitor hysteresis absorbs the dip entirely.
    initial_point = ResourcePoint({"client.cpu": 1.0, "client.network": 420e3})
    variations = []
    t = 10.0
    for i in range(oscillations):
        bw = 290e3 if i % 2 == 0 else 500e3
        variations.append(ResourceVariation(t, _RL(net_bw=bw)))
        t += 10.0

    results: Dict[str, float] = {}
    for label, slack, hyst in (
        ("guarded", optimality_slack, monitor_hysteresis),
        ("naive", 0.0, 0.0),
    ):
        run = run_adaptive_viz(
            db,
            pref,
            initial_point,
            {"client": _RL(net_bw=420e3)},
            tuple(variations),
            VizCosts(display_cost=3e-5),
            n_images=10,
            label=label,
            seed=seed,
            scheduler_mode="interpolate",
            monitor_kwargs={
                "window": 2.0,
                "cooldown": 1.0,
                "hysteresis": hyst,
            },
            optimality_slack=slack,
        )
        results[f"{label}_switches"] = float(len(run.switches))
        results[f"{label}_total_time"] = run.total_time
    return results


def _limiter_cell(payload: dict, seed: int) -> float:
    """Sweep job: toy-loop elapsed time under one (mode, share) cell."""
    app = make_toy_app()
    tb = Testbed(host_specs=app.env.host_specs(), mode=payload["mode"], seed=seed)
    rt = app.instantiate(
        tb,
        Configuration({"scale": 1.0}),
        limits={"node": ResourceLimits(cpu_share=payload["share"])},
    )
    tb.run(until=3600)
    tb.shutdown()
    return rt.qos.get("elapsed")


def limiter_mode_ablation(
    shares: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8),
    seed: int = 0,
    engine=None,
) -> Dict[str, float]:
    """A4: ideal fluid cap vs the paper's quantum feedback limiter.

    Returns the mean relative deviation of each mode's measured elapsed
    time from the analytic expectation baseline/share.
    """
    modes = (LimiterMode.IDEAL, LimiterMode.QUANTUM)
    cells = [(mode, share) for mode in modes for share in shares]
    values = sweep_cells(
        "repro.experiments.ablations:_limiter_cell",
        [{"mode": mode, "share": share} for mode, share in cells],
        seed=seed,
        engine=engine,
    )
    errors: Dict[str, list] = {mode: [] for mode in modes}
    for (mode, share), elapsed in zip(cells, values):
        expected = 10.0 / share
        errors[mode].append(abs(elapsed - expected) / expected)
    return {mode: float(np.mean(v)) for mode, v in errors.items()}


def isolation_ablation(n_sandboxes: int = 3, seed: int = 0) -> Dict[str, float]:
    """A5: co-located sandboxes do not interfere (Section 6.2).

    Runs N equal-share sandboxed copies of the toy loop on one host and
    compares each one's elapsed time against the analytic single-tenant
    expectation.  Returns the worst relative deviation.
    """
    app = make_toy_app()
    share = 0.9 / n_sandboxes
    tb = Testbed(host_specs=app.env.host_specs(), seed=seed)
    runtimes = [
        app.instantiate(
            tb,
            Configuration({"scale": 1.0}),
            limits={"node": ResourceLimits(cpu_share=share)},
        )
        for _ in range(n_sandboxes)
    ]
    tb.run(until=3600)
    tb.shutdown()
    expected = 10.0 / share
    deviations = [
        abs(rt.qos.get("elapsed") - expected) / expected for rt in runtimes
    ]
    return {
        "worst_deviation": float(max(deviations)),
        "expected_elapsed": expected,
    }
