"""Crowd experiments: million-user adaptation scenarios.

Three scenarios, all built on the same visualization app, adaptation
controller, and estimate-exchange plumbing as the chaos/recovery runs —
the only thing that changes is who generates the load:

- ``diurnal``: a fig5-style adaptation run at 1M simulated users.  A
  free-tier population follows a sinusoidal day/night curve whose peaks
  saturate the client-server link; the monitoring agent watches the
  interactive session's effective bandwidth collapse, the scheduler
  re-decides (lzw -> bzip2 and back), and the crowd's own per-class QoS
  tallies record the peak-hour violations.
- ``flash``: a flash-crowd ramp against the server's
  :class:`~repro.recovery.OverloadGuard`.  Sustained batch shedding
  trips the :class:`~repro.recovery.BrownoutController` into the
  known-cheap pinned configuration; new arrivals are priced under it,
  the backlog drains, and the brownout window closes.
- ``baseline``: the 100-coroutine-client control group — the same
  closed-loop users the recovery experiment's flash crowd uses, driven
  as real per-user processes.  The crowd benchmark compares the 1M-user
  aggregate run's wall-clock against this scenario.

Determinism: crowd randomness comes only from the named ``"crowd"``
stream (baseline user think times from per-user ``crowd.baseline.<uid>``
streams), so same-seed runs are byte-identical — the crowd benchmark
asserts it at 1M users.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..apps.visualization import VizWorkload, make_viz_app
from ..apps.visualization.server import SERVER_HOST
from ..crowd import (
    ClosedLoop,
    CrowdAgent,
    CrowdClass,
    CrowdSource,
    DiurnalRate,
    FlashCrowd,
    ServiceClass,
)
from ..recovery import BrownoutController, OverloadGuard, OverloadPolicy
from ..sandbox import ResourceLimits, Testbed
from ..tunable import Configuration
from .common import (
    FigureResult,
    attach_instrumentation,
    build_viz_controller,
    closed_loop_viz_user,
    detach_instrumentation,
    start_estimate_exchanges,
    sweep_cells,
    viz_initial_point,
    viz_preference,
)
from .fig6 import EXP1_COSTS, fig6a_database
from .recovery import CHEAP_CONFIG
from .scene import Scene

__all__ = [
    "build_crowd",
    "run_crowd",
    "run_crowd_figure",
    "crowd_cell",
    "DEFAULT_USERS",
    "CROWD_PORT",
]

#: Mailbox port crowd batches arrive on (separate from the interactive
#: request port so the viz server never sees aggregate traffic).
CROWD_PORT = "crowd.req"

#: Default population per scenario.
DEFAULT_USERS = {"diurnal": 1_000_000, "flash": 200_000, "baseline": 100}

#: Compression behaviour of the crowd's small foveal replies, matching
#: the codec family the visualization app adapts over.
_CODEC_RATIOS = {"none": 1.0, "lzw": 1.8, "bzip2": 3.0}
_CODEC_WORK = {"none": 0.5, "lzw": 1.0, "bzip2": 2.6}

#: Uncompressed reply payload per crowd request at full resolution.
#: Sized so the diurnal peak (~53e3 req/s) oversubscribes the 12.5 MB/s
#: server->client link under lzw (wire 311 B -> 1.3x capacity) but fits
#: under bzip2 (187 B -> 0.75x) — switching codec genuinely decongests.
_CROWD_RAW_BYTES = 560.0
#: Fixed per-request server work (pyramid lookup) before codec cost.
_CROWD_BASE_WORK = 1.0e-3

#: Baseline scenario: the coroutine closed-loop user population.
_BASELINE_SPEC = {
    "start": 1.0,
    "duration": 110.0,
    "think": 0.5,
    "r1": 12,
    "level": 3,
}


def crowd_reply_price(config: Mapping) -> Tuple[float, float]:
    """(work per request, reply wire bytes) under a configuration.

    Resolution level scales the raw reply quadratically and the codec
    trades wire bytes against compression work — so the brownout config
    (l=3, lzw) genuinely cheapens both the CPU and the link cost of every
    request admitted under it.
    """
    level = int(config.get("l", 4))
    codec = str(config.get("c", "lzw"))
    raw = _CROWD_RAW_BYTES * (level / 4.0) ** 2
    wire = raw / _CODEC_RATIOS.get(codec, 1.0)
    work = _CROWD_BASE_WORK + 2.0e-6 * raw * _CODEC_WORK.get(codec, 1.0)
    return work, wire


def _crowd_classes(
    scenario: str, users: int
) -> Tuple[List[CrowdClass], List[ServiceClass]]:
    """Population + service specs for one aggregate scenario."""
    premium_users = max(1, users // 20)
    bulk_users = users - premium_users
    premium = CrowdClass(
        "premium",
        users=premium_users,
        arrivals=ClosedLoop(think=12.5),
        request_bytes=64.0,
        qos_deadline=1.0,
        timeout=8.0,
        priority=1,
    )
    if scenario == "diurnal":
        bulk = CrowdClass(
            "free",
            users=bulk_users,
            arrivals=DiurnalRate(base=0.028, amplitude=0.025, period=60.0,
                                 phase=-1.5707963267948966),
            request_bytes=64.0,
            qos_deadline=1.0,
            timeout=8.0,
            priority=0,
        )
    elif scenario == "flash":
        bulk = CrowdClass(
            "free",
            users=bulk_users,
            arrivals=FlashCrowd(baseline=0.002, spike=0.35, t_start=12.0,
                                t_peak=16.0, t_fall=28.0, t_end=36.0),
            request_bytes=64.0,
            qos_deadline=1.0,
            timeout=8.0,
            priority=0,
        )
    else:
        raise ValueError(f"unknown aggregate scenario {scenario!r}")
    # Fixed link weights bound the crowd's reply share: with both classes
    # transferring, a weight-1 interactive flow keeps ~12.5e6/104 ~= 120e3
    # B/s — beyond the initial decision's validity bound (150e3) and
    # below the lzw->bzip2 crossover, so the monitor sees the squeeze,
    # yet fast enough that ring transfers still complete and produce
    # bandwidth samples while the congestion lasts.
    service = [
        ServiceClass("free", price=crowd_reply_price, weight=4.0,
                     link_weight=66.0),
        ServiceClass("premium", price=crowd_reply_price, weight=2.0,
                     link_weight=37.0),
    ]
    return [bulk, premium], service


def build_crowd(
    seed: int = 0,
    scenario: str = "diurnal",
    users: Optional[int] = None,
    until: float = 120.0,
    n_images: Optional[int] = None,
    recorder=None,
    usage=None,
    profiler=None,
    tiebreak=None,
) -> Scene:
    """Construct one crowd scenario without running it.

    Performs every construction statement of :func:`run_crowd` in the
    original order (byte-identity-gated by ``bench_crowd``) and returns a
    :class:`~repro.experiments.scene.Scene` whose ``finalize()`` produces
    the figure + payload once the sim reaches ``until``.
    """
    if scenario not in DEFAULT_USERS:
        raise ValueError(
            f"scenario must be one of {sorted(DEFAULT_USERS)}, got {scenario!r}"
        )
    if users is None:
        users = DEFAULT_USERS[scenario]
    if n_images is None:
        # Flash runs longer: the interactive session must outlive the
        # brownout exit (its images speed up under the pinned cheap
        # config, and the controller stops when the app finishes).
        n_images = 18 if scenario == "flash" else 10
    db, _dims, _configs = fig6a_database(seed=seed)
    preference = viz_preference()
    initial_point = viz_initial_point()

    app = make_viz_app()
    _scheduler, controller = build_viz_controller(
        app, db, preference, recorder=recorder
    )
    config = controller.select_initial(initial_point).config

    testbed = Testbed(
        host_specs=app.env.host_specs(), link_specs=app.env.link_specs(),
        seed=seed, tiebreak=tiebreak,
    )
    workload = VizWorkload(n_images=n_images, costs=EXP1_COSTS, seed=seed)
    rt = app.instantiate(
        testbed,
        config,
        limits={"client": ResourceLimits(net_bw=500e3)},
        workload=workload,
    )
    controller.attach(rt)
    server_agent, client_ex, server_ex = start_estimate_exchanges(rt, controller)

    source: Optional[CrowdSource] = None
    agent: Optional[CrowdAgent] = None
    guard: Optional[OverloadGuard] = None
    brownout_ctl: Optional[BrownoutController] = None
    baseline_stats: Dict[int, Dict[str, int]] = {}

    if scenario == "baseline":
        # Control group: every user is a real coroutine (the recovery
        # experiment's closed-loop client, verbatim).
        for uid in range(users):
            testbed.sim.process(
                closed_loop_viz_user(
                    rt, workload, rt.app_model, uid, _BASELINE_SPEC, seed,
                    baseline_stats, stream_prefix="crowd.baseline",
                ),
                name=f"crowd-{uid}",
            )
    else:
        crowd_classes, service_classes = _crowd_classes(scenario, users)
        if scenario == "flash":
            guard = OverloadGuard(
                OverloadPolicy(
                    queue_capacity=200_000, shed_depth=15_000, keep_priority=1
                ),
                sim=testbed.sim,
            )
        source = CrowdSource(
            testbed.sim,
            testbed.hosts["client"],
            SERVER_HOST,
            CROWD_PORT,
            crowd_classes,
            seed=seed,
            tick=0.25,
            horizon=until - 15.0,
            drain=10.0,
            label=scenario,
        )
        agent = CrowdAgent(
            testbed.sim,
            testbed.hosts[SERVER_HOST],
            CROWD_PORT,
            service_classes,
            config_fn=lambda: dict(rt.controls.current),
            guard=guard,
            source=source,
            tick=0.25,
        )
        # Monitor estimates sourced from crowd tallies: the controller's
        # agent samples per-class QoS satisfaction and realized rate from
        # the columnar state alongside its resource estimates.
        monitor = controller.monitor
        monitor.crowd = source
        monitor.retarget(
            watch=list(monitor.watch)
            + [f"crowd.{c.name}.qos" for c in crowd_classes]
            + [f"crowd.{c.name}.rate" for c in crowd_classes]
        )
        if guard is not None:
            brownout_ctl = BrownoutController(
                rt, controller, guard, Configuration(dict(CHEAP_CONFIG)),
                period=1.0, enter_shed_rate=0.3, exit_shed_rate=0.05,
                enter_after=2, exit_after=3,
            ).start()

    attach_instrumentation(
        testbed.sim, testbed, config,
        usage=usage, recorder=recorder, profiler=profiler,
    )

    def _finalize():
        testbed.shutdown()
        return _summarize_crowd(
            scenario=scenario, seed=seed, users=users, until=until,
            n_images=n_images, controller=controller, rt=rt,
            workload=workload, testbed=testbed, source=source, guard=guard,
            brownout_ctl=brownout_ctl, baseline_stats=baseline_stats,
            client_ex=client_ex, server_ex=server_ex,
            usage=usage, recorder=recorder, profiler=profiler,
        )

    return Scene(
        name="crowd", seed=seed, until=until, testbed=testbed,
        finalize=_finalize, rt=rt, controller=controller, workload=workload,
        guard=guard, brownout=brownout_ctl, crowd=source,
        client_exchange=client_ex, server_exchange=server_ex,
        recorder=recorder, usage=usage, profiler=profiler,
    )


def _summarize_crowd(
    scenario, seed, users, until, n_images, controller, rt, workload,
    testbed, source, guard, brownout_ctl, baseline_stats, client_ex,
    server_ex, usage, recorder, profiler,
) -> Tuple[FigureResult, Dict]:
    payload: Dict = {
        "experiment": "crowd",
        "scenario": scenario,
        "seed": seed,
        "users": users,
        "until": until,
        "n_images": n_images,
        "events": [
            {
                "t": e.time,
                "kind": e.kind,
                "config": e.config.label() if e.config is not None else None,
            }
            for e in controller.events
        ],
        "switches": [
            {"t": t, "from": old.label(), "to": new.label()}
            for t, old, new in rt.controls.history
        ],
        "final_config": rt.controls.current.label(),
        "qos": rt.qos.snapshot(),
        "network": {
            "delivered": testbed.network.messages_delivered,
            "lost": testbed.network.messages_lost,
            "parked": testbed.network.messages_parked_total,
        },
        "exchange": {
            "client_updates_received": client_ex.updates_received,
            "server_updates_received": server_ex.updates_received,
        },
        "finished": bool(rt.finished.triggered),
    }
    if source is not None:
        payload["classes"] = source.stats()
        payload["totals"] = source.totals()
        payload["crowd_closed"] = source.closed
    if scenario == "baseline":
        payload["classes"] = {
            "baseline": {
                "users": users,
                "served": sum(s["served"] for s in baseline_stats.values()),
                "shed": sum(s["shed"] for s in baseline_stats.values()),
            }
        }
    if guard is not None:
        payload["overload"] = {
            **guard.totals(),
            "brownout_windows": (
                [[t0, t1] for t0, t1 in brownout_ctl.windows]
                if brownout_ctl is not None
                else []
            ),
        }

    detach_instrumentation(usage=usage, recorder=recorder, profiler=profiler)

    result = FigureResult(
        figure="Crowd",
        title=f"Aggregate-population adaptation ({scenario}, {users:,} users)",
        xlabel="time (s)",
        ylabel="image transmission time (s)",
    )
    series = result.new_series(f"interactive under {scenario} crowd")
    for t, duration in workload.image_times:
        series.add(t, duration)
    for switch in payload["switches"]:
        result.note(
            f"t={switch['t']:.1f}s: switched {switch['from']} -> {switch['to']}"
        )
    for name, row in sorted(payload.get("classes", {}).items()):
        if "issued" in row:
            total = row["satisfied"] + row["violated"]
            frac = row["satisfied"] / total if total else 1.0
            result.note(
                f"class {name}: {row['issued']} issued, "
                f"{row['served']} served, {row['shed']} shed, "
                f"{row['lost']} lost, QoS satisfaction {frac:.3f}"
            )
        else:
            result.note(
                f"class {name}: {row['served']} served, {row['shed']} shed"
            )
    if "overload" in payload:
        for t0, t1 in payload["overload"]["brownout_windows"]:
            t1s = f"{t1:.1f}" if t1 is not None else "end"
            result.note(f"brownout window: {t0:.1f}s .. {t1s}s")
    result.note(f"final config: {payload['final_config']}")
    return result, payload


def run_crowd(
    seed: int = 0,
    scenario: str = "diurnal",
    users: Optional[int] = None,
    until: float = 120.0,
    n_images: Optional[int] = None,
    recorder=None,
    usage=None,
    profiler=None,
    tiebreak=None,
) -> Tuple[FigureResult, Dict]:
    """Run one crowd scenario; returns (figure, JSON-friendly payload).

    ``recorder``/``usage``/``profiler`` are strictly passive, as in
    ``run_chaos`` — the payload is byte-identical with or without them.
    Construction, run, and summary are :func:`build_crowd` +
    ``testbed.run`` + ``Scene.finalize``.
    """
    scene = build_crowd(
        seed=seed, scenario=scenario, users=users, until=until,
        n_images=n_images, recorder=recorder, usage=usage,
        profiler=profiler, tiebreak=tiebreak,
    )
    scene.testbed.run(until=until)
    return scene.finalize()


def crowd_cell(payload: Mapping, seed: int) -> Dict:
    """Module-level sweep job: one uninstrumented crowd scenario.

    ``payload`` selects the scenario (and optionally users/until), so the
    CLI's ``--jobs``/cache flags parallelize and memoize crowd runs like
    any other experiment cell.
    """
    n_images = payload.get("n_images")
    _fig, data = run_crowd(
        seed=seed,
        scenario=str(payload.get("scenario", "diurnal")),
        users=payload.get("users"),
        until=float(payload.get("until", 120.0)),
        n_images=None if n_images is None else int(n_images),
    )
    return data


def run_crowd_figure(seed: int = 0, engine=None) -> FigureResult:
    """The ``repro crowd`` target: all three scenarios side by side.

    Scenario cells run through :func:`sweep_cells` (cached JobSpecs), so
    repeat invocations replay from the content-addressed cache.
    """
    payloads = [
        {"scenario": "diurnal"},
        {"scenario": "flash"},
        {"scenario": "baseline"},
    ]
    results = sweep_cells(
        "repro.experiments.crowd:crowd_cell", payloads, seed=seed, engine=engine
    )
    result = FigureResult(
        figure="Crowd",
        title="Aggregate client populations: diurnal, flash, and baseline",
        xlabel="scenario",
        ylabel="QoS satisfaction fraction",
    )
    series = result.new_series("per-class QoS satisfaction")
    for i, data in enumerate(results):
        for name, row in sorted(data.get("classes", {}).items()):
            if "issued" not in row:
                continue
            total = row["satisfied"] + row["violated"]
            frac = row["satisfied"] / total if total else 1.0
            series.add(float(i), frac)
            result.note(
                f"{data['scenario']}/{name}: satisfaction {frac:.3f} "
                f"({row['issued']} issued, {row['shed']} shed, "
                f"{row['lost']} lost)"
            )
        result.note(
            f"{data['scenario']}: {len(data['switches'])} switches, "
            f"final config {data['final_config']}"
        )
        if "overload" in data:
            result.note(
                f"{data['scenario']}: brownout windows "
                f"{data['overload']['brownout_windows']}"
            )
    return result
