"""Command-line interface: regenerate any paper figure or ablation.

Usage::

    python -m repro.cli list
    python -m repro.cli fig3a fig6a
    python -m repro.cli all --out results/
    python -m repro.cli exp1          # alias for fig7a
    python -m repro.cli all --jobs 4  # parallel cells + result cache
    python -m repro.cli lint --json   # determinism/sim-protocol linter
    python -m repro.cli check explore chaos  # schedule-invariance check
    python -m repro.cli check flow    # interprocedural dataflow linter
    python -m repro.cli trace chaos   # traced run: spans + causal chains
    python -m repro.cli metrics chaos # traced run: metrics snapshot
    python -m repro.cli usage chaos   # usage account: who consumed what
    python -m repro.cli diff chaos chaos --seed-b 1  # first divergence
    python -m repro.cli report chaos --out report.html  # HTML report
    python -m repro.cli perf chaos --flame  # kernel flamegraph (folded)
    python -m repro.cli dash fig5-sweep chaos recovery  # fleet dashboard
    python -m repro.cli bench check   # compare benchmarks vs baselines
    python -m repro.cli sweep toy --jobs 4   # standalone sweep engine run
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List

from .experiments import (
    FigureResult,
    hysteresis_ablation,
    isolation_ablation,
    limiter_mode_ablation,
    run_experiment1,
    run_experiment2,
    run_experiment3,
    run_fig3a,
    run_fig3b,
    run_fig4a,
    run_fig4b,
    run_chaos,
    run_crowd_figure,
    run_recovery,
    run_fig5,
    run_fig6a,
    run_fig6b,
    sampling_strategy_ablation,
    scheduler_interpolation_ablation,
)

__all__ = ["main", "TARGETS"]


def _figs(fn: Callable, *names: str):
    """Adapter: normalize every runner to name -> list[FigureResult|dict]."""

    def run(seed: int) -> List:
        result = fn(seed=seed) if "seed" in fn.__code__.co_varnames else fn()
        if isinstance(result, tuple):
            return [r for r in result if isinstance(r, FigureResult)] or [result]
        return [result]

    return names, run


def _table(fn: Callable, name: str):
    def run(seed: int) -> List:
        return [(name, fn(seed=seed))]

    return (name,), run


#: target name -> (aliases, runner)
TARGETS: Dict[str, Callable] = {}
for names, runner in (
    _figs(run_fig3a, "fig3a"),
    _figs(run_fig3b, "fig3b"),
    _figs(run_fig4a, "fig4a"),
    _figs(run_fig4b, "fig4b"),
    _figs(run_fig5, "fig5", "fig5a", "fig5b"),
    _figs(run_fig6a, "fig6a"),
    _figs(run_fig6b, "fig6b"),
    _figs(lambda seed=0: run_experiment1(seed=seed)[0], "fig7a", "exp1"),
    _figs(lambda seed=0: run_experiment2(seed=seed)[0], "fig7b", "exp2"),
    _figs(
        lambda seed=0: run_experiment3(seed=seed)[:2], "fig7cd", "exp3",
        "fig7c", "fig7d",
    ),
    _figs(run_chaos, "chaos"),
    _figs(run_recovery, "recovery"),
    _figs(run_crowd_figure, "crowd"),
    _table(scheduler_interpolation_ablation, "ablation-a1"),
    _table(sampling_strategy_ablation, "ablation-a2"),
    _table(hysteresis_ablation, "ablation-a3"),
    _table(limiter_mode_ablation, "ablation-a4"),
    _table(isolation_ablation, "ablation-a5"),
):
    for name in names:
        TARGETS[name] = runner

#: Canonical (deduplicated) target list for `all`.
CANONICAL = [
    "fig3a", "fig3b", "fig4a", "fig4b", "fig5", "fig6a", "fig6b",
    "fig7a", "fig7b", "fig7cd", "chaos", "recovery", "crowd",
    "ablation-a1", "ablation-a2", "ablation-a3", "ablation-a4", "ablation-a5",
]


def _emit(item, out_dir: Path = None, plot: bool = True) -> None:
    if isinstance(item, FigureResult):
        text = item.render(plot=plot)
        print(text)
        if out_dir is not None:
            stem = item.figure.lower().replace(" ", "")
            (out_dir / f"{stem}.txt").write_text(text + "\n")
            payload = {
                "figure": item.figure,
                "title": item.title,
                "series": {k: s.points for k, s in item.series.items()},
                "notes": item.notes,
            }
            (out_dir / f"{stem}.json").write_text(json.dumps(payload, indent=1))
    else:
        name, data = item
        print(f"== {name} ==")
        for k, v in data.items():
            print(f"  {k}: {v:.6g}" if isinstance(v, float) else f"  {k}: {v}")
        if out_dir is not None:
            (out_dir / f"{name}.json").write_text(json.dumps(data, indent=1))


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "lint":
        # The analysis CLI owns its own argument grammar and exit codes.
        from .analysis.cli import lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "check":
        # Schedule exploration + dataflow linting (repro check ...).
        from .analysis.check_cli import check_main

        return check_main(argv[1:])
    if argv and argv[0] in (
        "trace", "metrics", "usage", "diff", "report", "perf", "dash"
    ):
        # Likewise the observability CLI.
        from .obs.cli import obs_main

        return obs_main(argv)
    if argv and argv[0] == "bench":
        # Benchmark baseline comparison (repro bench check).
        from .analysis.bench import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "sweep":
        # Standalone sweep-engine runs (repro.exec).
        from .exec.cli import sweep_main

        return sweep_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from Chang & Karamcheti (HPDC 2000).",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="figure names (fig3a..fig7cd, exp1..exp3, chaos, recovery, crowd, "
        "ablation-a1..a5), 'lint', 'check', 'trace', 'metrics', 'usage', "
        "'diff', 'report', 'perf', 'dash', 'bench', 'sweep', 'list', or 'all'",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument("--out", type=Path, default=None, help="artifact directory")
    parser.add_argument(
        "--no-plot", action="store_true", help="tables only, no ASCII plots"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run experiment cells through the sweep engine with N worker "
        "processes (output is byte-identical to the serial run)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent result-cache directory (default .repro_cache; "
        "implies the sweep engine)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="with --jobs: run cells without the persistent result cache",
    )
    args = parser.parse_args(argv)

    if args.targets == ["list"]:
        for name in CANONICAL:
            print(name)
        return 0

    targets = CANONICAL if args.targets == ["all"] else args.targets
    unknown = [t for t in targets if t not in TARGETS]
    if unknown:
        parser.error(
            f"unknown target(s) {unknown}; run 'python -m repro.cli list'"
        )
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    # Install a process-wide sweep engine only when explicitly requested,
    # so plain invocations neither spawn workers nor touch the cache dir.
    engine = None
    previous_engine = None
    if args.jobs is not None or args.cache_dir is not None:
        from .exec import ResultStore, SweepEngine, set_default_engine

        store = None
        if not args.no_cache:
            store = ResultStore(args.cache_dir or Path(".repro_cache"))
        engine = SweepEngine(jobs=args.jobs or 1, store=store)
        previous_engine = set_default_engine(engine)

    try:
        seen = set()
        for target in targets:
            runner = TARGETS[target]
            if id(runner) in seen:
                continue
            seen.add(id(runner))
            for item in runner(args.seed):
                _emit(item, out_dir=args.out, plot=not args.no_plot)
    finally:
        if engine is not None:
            from .exec import set_default_engine

            set_default_engine(previous_engine)
    if engine is not None:
        m = engine.metrics
        print(
            "sweep engine: "
            f"{m.counter('exec.jobs.run').value:g} run, "
            f"{m.counter('exec.jobs.cached').value:g} cached, "
            f"{m.counter('exec.jobs.retried').value:g} retried, "
            f"{m.counter('exec.wall.saved').value:.2f}s saved "
            f"({engine.jobs} workers)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
