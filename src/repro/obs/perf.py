"""Self-profiling for the simulation kernel: where host time actually goes.

A :class:`KernelProfiler` attaches to a :class:`~repro.sim.core.Simulator`
(``sim.perf``, the same discovery-point pattern as ``sim.obs`` and
``sim.usage``) and attributes **host wall-clock** cost to named buckets —
one per event-type / resumed-process / callback-callsite — while also
collecting deterministic kernel-health telemetry on the **virtual-time**
axis: heap pushes and peak size, a census of same-instant tie windows,
the callback-vs-process event mix, and per-:class:`FluidShare` update
counts with their flow fan-out (the O(active flows) cost ROADMAP item 1
targets).

Two invariants, both enforced by ``tests/obs/test_perf.py`` and
``benchmarks/bench_sim.py``:

* **Byte-invisible.**  Profiling never schedules events, draws
  randomness, or mutates any simulation-visible state; a profiled
  same-seed run's payload is byte-identical to the unprofiled run.  The
  wall-clock reads are *host-side telemetry* in the sense of the DET501
  convention: they never feed back into the simulation.
* **Cheap.**  With no profiler attached every hook site in the kernel is
  one attribute read plus an ``is None`` check.  With one attached in
  the default **burst-sampling** mode, most steps cost a three-op inline
  countdown in the kernel; full accounting (one clock read, cached
  bucket classification, tie census) runs only for bursts of
  consecutive steps.  ``bench_sim`` gates the total overhead at < 5 %
  of the bare run.

Burst sampling, not stride sampling: observing *consecutive* steps keeps
the inter-step wall deltas and the same-instant tie windows locally
exact inside each burst (windows straddling a burst edge are truncated).
Wall shares and event-mix counts are therefore *sampled* statistics —
but deterministic ones, because the burst schedule is a pure function of
the step count.  ``steps``, ``pushes``, and ``max_heap`` stay globally
exact in every mode.  ``full=True`` observes every step (exact census,
exact attribution, roughly 15 % overhead) — what the ``repro perf`` CLI
uses, since a one-off profile capture does not care about overhead.

The wall-clock side of :meth:`summary` is inherently machine-dependent;
everything under the ``"sim"`` key — and every bucket's *count* — is a
pure function of the seeded run (the determinism tests compare them
bit-for-bit).  The folded exporter (:func:`to_folded`) emits the
collapsed-stack format every standard flamegraph tool consumes
(``stack;frames value`` with integer microsecond values);
:func:`to_chrome_profile` lays the aggregated buckets out as a
chrome://tracing flame chart.
"""

from __future__ import annotations

# Host-side telemetry clock (DET501 convention): readings are attributed
# to profile buckets only and never influence the simulation.
from time import perf_counter  # repro: allow[DET101] -- host-side profiler telemetry

from types import MethodType
from typing import Any, Callable, Dict, List, Optional

from ..sim.core import Event, Process, _Initialize
from .record import ObsError

__all__ = ["KernelProfiler", "to_folded", "to_chrome_profile"]

#: Fallback heuristic for simulators driven through ``step()`` directly
#: (no ``run()`` loop, so no structural ``run_pause`` boundary): a final
#: window longer than this at burst close is host work after the last
#: event, not the event's own cost, and lands in ``kernel;external``.
#: Inside a ``run()`` loop attribution is structural and no cutoff
#: applies — a long window there *is* the event's callback cost.
_EXTERNAL_CUTOFF = 1e-3

#: Bucket for host time that is provably not kernel work.
_EXTERNAL = "kernel;external"


def _fluid_entry() -> Dict[str, int]:
    return {
        "set_speed": 0,
        "set_weight": 0,
        "set_cap": 0,
        "submit": 0,
        "cancel": 0,
        "reschedules": 0,
        "fanout_sum": 0,
        "fanout_max": 0,
    }


class KernelProfiler:
    """Attributes host wall-clock cost inside the sim kernel to buckets.

    A profiler may be attached to several simulators in sequence (the
    profiling driver runs one testbed per measurement); counters and
    buckets accumulate across attaches, which is what a sweep-level
    profile wants.  Attach order relative to other instrumentation does
    not matter: the profiler does not use the ``step_hook`` chain at all
    — the kernel calls it directly through ``sim.perf``.

    Because each observed event's wall window is closed by the *next*
    observed step (one clock read per step), a bucket's seconds include
    everything from the event's dispatch to the next dispatch: its
    callbacks, chained step hooks, and heap maintenance.  The profiler's
    own per-step cost is attributed the same way — honest
    self-accounting, gated below 5 % by ``bench_sim``.

    Parameters
    ----------
    clock:
        Host clock (seconds, monotonic); injectable for tests.
    full:
        Observe *every* step — exact tie census and attribution at
        roughly 15 % overhead — instead of burst sampling.
    burst, cycle:
        Burst-sampling schedule: observe ``burst`` consecutive steps out
        of every ``cycle``.  The defaults (64 / 4096, ~1.6 % of steps)
        keep overhead around 2 % while every burst still sees whole tie
        windows; most of the residual cost is the kernel's inline
        three-op countdown on skipped steps, so shrinking the observed
        fraction further buys almost nothing.
    """

    __slots__ = (
        "_clock",
        "buckets",
        "skip",
        "_pushes",
        "_heap",
        "_heap_base",
        "_steps_base",
        "max_heap",
        "tie_windows",
        "tied_events",
        "max_tie_window",
        "tie_census",
        "fluid",
        "attaches",
        "measured_wall",
        "sim",
        "_full",
        "_burst",
        "_off",
        "_burst_left",
        "_offs",
        "_sampled",
        "_skipped",
        "_burst_start",
        "_cache",
        "_pending",
        "_last",
        "_tie_t",
        "_tie_p",
        "_window",
    )

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        full: bool = False,
        burst: int = 64,
        cycle: int = 4096,
    ):
        if burst < 2 or cycle <= burst:
            raise ObsError(
                f"need cycle > burst >= 2, got burst={burst} cycle={cycle}"
            )
        self._clock = clock if clock is not None else perf_counter
        #: bucket name -> ``[count, seconds]``.  Names are ``;``-separated
        #: frame stacks (collapsed-stack convention).  Counts are
        #: deterministic; seconds are host telemetry.
        self.buckets: Dict[str, List[float]] = {}
        # -- sampling schedule ------------------------------------------
        self._full = full
        self._burst = burst
        self._off = cycle - burst
        self._burst_left = burst
        #: Off-phase countdown, decremented *inline by the kernel* (see
        #: ``Simulator.step``): while non-zero the step is skipped without
        #: a method call.  0 in full mode.
        self.skip = 0
        self._offs = 0  # completed-or-started off phases
        self._sampled = 0
        self._skipped = 0  # steps skipped in partial off phases (folded at detach)
        # -- deterministic (virtual-time axis) telemetry ----------------
        self._pushes = 0
        self._heap: Optional[list] = None
        self._heap_base = 0
        self._steps_base = 0
        #: Peak heap size observed at event dispatch (sampled steps).
        self.max_heap = 0
        self.tie_windows = 0
        self.tied_events = 0
        self.max_tie_window = 0
        #: window size -> number of same-``(time, priority)`` windows of
        #: that size (only sizes >= 2; singletons are the common case).
        #: Exact in full mode; per observed burst otherwise.
        self.tie_census: Dict[int, int] = {}
        self.fluid: Dict[str, Dict[str, int]] = {}
        self.attaches = 0
        # -- host-side state --------------------------------------------
        self.measured_wall = 0.0
        self.sim: Optional[Any] = None
        #: classification key -> the same ``[count, seconds]`` list that
        #: ``buckets`` holds under the rendered name.  Process resumes are
        #: keyed on the Process object itself (identity hash, bounded by
        #: the number of processes the profiler ever saw).
        self._cache: Dict[Any, List[float]] = {}
        self._pending: Optional[List[float]] = None
        self._last: Optional[float] = None
        self._burst_start = 0.0
        self._tie_t = float("nan")
        self._tie_p = -1
        self._window = 0

    # -- binding ----------------------------------------------------------
    def attach(self, sim: Any) -> "KernelProfiler":
        """Install as ``sim.perf``.  Accumulates over earlier attaches."""
        if self.sim is not None:
            raise ObsError("profiler is already attached; detach() first")
        if sim.perf is not None:
            raise ObsError("simulator already has an attached profiler")
        self.sim = sim
        sim.perf = self
        self.attaches += 1
        self._pending = None
        self._last = None
        self._tie_t = float("nan")
        self._tie_p = -1
        self._window = 0
        # Push accounting needs no per-push hook: every push is either
        # popped (a step) or still in the heap, so the session's pushes
        # are steps + (heap growth) — both exact.
        self._heap = sim._heap
        self._heap_base = len(sim._heap)
        self._steps_base = self.steps
        # Every attach starts observing immediately (skip carries no
        # meaning across simulators).
        self.skip = 0
        self._burst_left = self._burst
        return self

    def detach(self) -> "KernelProfiler":
        """Detach from the simulator, folding session totals."""
        sim = self.sim
        if sim is None:
            return self
        self._close_window()
        self._close_burst()
        if self.skip:
            # Detached mid-off-phase: that phase skipped only
            # ``off - skip`` steps, not the full ``off`` the ``_offs``
            # product assumes.  Fold the shortfall now — the next
            # attach resets ``skip`` and would otherwise lose it.
            self._offs -= 1
            self._skipped += self._off - self.skip
            self.skip = 0
        self._pushes += (
            (self.steps - self._steps_base)
            + len(self._heap) - self._heap_base
        )
        self._heap = None
        self._heap_base = 0
        self._steps_base = self.steps
        if sim.perf is self:
            sim.perf = None
        self.sim = None
        return self

    # -- the kernel hook (called from Simulator.step) ----------------------
    def pre_step(self, t: float, prio: int, event: Event) -> None:
        """Observe one step: close the previous window, open this one's.

        The kernel only calls this while ``skip == 0`` (observed steps);
        during an off phase it decrements ``skip`` inline instead.
        """
        self._sampled += 1
        # Same-instant tie-window census (deterministic, virtual axis).
        if t == self._tie_t and prio == self._tie_p:
            self._window += 1
        else:
            w = self._window
            if w > 1:
                self.tie_windows += 1
                self.tied_events += w
                if w > self.max_tie_window:
                    self.max_tie_window = w
                census = self.tie_census
                census[w] = census.get(w, 0) + 1
            self._window = 1
            self._tie_t = t
            self._tie_p = prio
        # Classify into a cached accumulator (name string built on miss).
        cls = event.__class__
        if cls is Process:
            key: Any = (cls, event.name)  # type: ignore[attr-defined]
        elif cls is _Initialize:
            key = (cls, event.process.name)  # type: ignore[attr-defined]
        else:
            callbacks = event.callbacks
            if callbacks:
                cb = callbacks[0]
                if cb.__class__ is MethodType:
                    receiver = cb.__self__
                    if receiver.__class__ is Process:
                        key = (cls, receiver)
                    else:
                        key = (cls, receiver.__class__, cb.__func__.__name__)
                else:
                    wrapped = getattr(cb, "__wrapped__", cb)
                    key = (cls, wrapped.__qualname__, None)
            else:
                key = (cls,)
        acc = self._cache.get(key)
        if acc is None:
            acc = self._intern(key)
        depth = len(self._heap)
        if depth > self.max_heap:
            self.max_heap = depth
        now = self._clock()  # repro: allow[DET101] -- host-side profiler telemetry
        last = self._last
        if last is None:
            # First observed step of a burst (or after a run() pause).
            self._burst_start = now
        else:
            # Intra-run deltas are the previous event's cost, however
            # long: run() boundaries are closed structurally by
            # run_pause(), so no cutoff heuristic is needed here.
            pending = self._pending
            pending[0] += 1
            pending[1] += now - last
        self._pending = acc
        self._last = now
        if not self._full:
            left = self._burst_left - 1
            if left:
                self._burst_left = left
            else:
                # Burst over: fold its span, enter the off phase.  This
                # last step's own duration is not charged (one event per
                # burst; the shares do not miss it).
                self.measured_wall += now - self._burst_start
                self._pending = None
                self._last = None
                self._close_window()
                self._burst_left = self._burst
                self._offs += 1
                self.skip = self._off

    def run_pause(self) -> None:
        """The kernel's ``run()`` loop exited (called from Simulator.run).

        Closes the in-flight wall window so host work *between* run
        segments (experiment setup, payload building, teardown) is never
        charged to a kernel bucket — attribution is structural, not a
        gap-length heuristic.  The tie census is untouched: virtual time
        continues across run() calls.
        """
        pending = self._pending
        if pending is not None:
            now = self._clock()  # repro: allow[DET101] -- host-side profiler telemetry
            pending[0] += 1
            pending[1] += now - self._last
            self.measured_wall += now - self._burst_start
        self._pending = None
        self._last = None

    def _intern(self, key: Any) -> List[float]:
        """Render the bucket name for a fresh classification key (cold)."""
        cls = key[0]
        arity = len(key)
        if arity == 1:
            name = "kernel;" + cls.__name__ + ";unwaited"
        elif cls is Process:
            name = "kernel;exit;proc:" + key[1]
        elif cls is _Initialize:
            name = "kernel;init;proc:" + key[1]
        elif arity == 2:  # (event class, Process instance): a resume
            name = "kernel;" + cls.__name__ + ";proc:" + key[1].name
        elif key[2] is None:  # (event class, callable qualname, None)
            name = (
                "kernel;" + cls.__name__ + ";call:"
                + key[1].replace(".<locals>", "")
            )
        else:  # (event class, receiver class, method name)
            name = (
                "kernel;" + cls.__name__ + ";call:"
                + key[1].__name__ + "." + key[2]
            )
        # Distinct keys may render to one name (two Process objects with
        # the same name; a respawned process): share one accumulator.
        acc = self.buckets.get(name)
        if acc is None:
            acc = self.buckets[name] = [0, 0.0]
        self._cache[key] = acc
        return acc

    # -- fluid hooks (called from repro.sim.fluid) ------------------------
    def fluid_event(self, share: str, kind: str) -> None:
        """A FluidShare mutation (set_speed / submit / cancel / ...).

        Exact in every mode: fluid updates are orders of magnitude rarer
        than steps, so these are not sampled.
        """
        entry = self.fluid.get(share)
        if entry is None:
            entry = self.fluid[share] = _fluid_entry()
        entry[kind] += 1

    def fluid_reschedule(self, share: str, fanout: int) -> None:
        """One rate recomputation touching ``fanout`` active flows."""
        entry = self.fluid.get(share)
        if entry is None:
            entry = self.fluid[share] = _fluid_entry()
        entry["reschedules"] += 1
        entry["fanout_sum"] += fanout
        if fanout > entry["fanout_max"]:
            entry["fanout_max"] = fanout

    # -- window/burst bookkeeping -----------------------------------------
    def _close_window(self) -> None:
        w = self._window
        if w > 1:
            self.tie_windows += 1
            self.tied_events += w
            if w > self.max_tie_window:
                self.max_tie_window = w
            self.tie_census[w] = self.tie_census.get(w, 0) + 1
        self._window = 0
        self._tie_t = float("nan")
        self._tie_p = -1

    def _close_burst(self) -> None:
        pending = self._pending
        if pending is not None:
            now = self._clock()  # repro: allow[DET101] -- host-side profiler telemetry
            delta = now - self._last
            pending[0] += 1
            if delta > _EXTERNAL_CUTOFF:
                ext = self.buckets.get(_EXTERNAL)
                if ext is None:
                    ext = self.buckets[_EXTERNAL] = [0, 0.0]
                ext[0] += 1
                ext[1] += delta
            else:
                pending[1] += delta
            self.measured_wall += now - self._burst_start
        self._pending = None
        self._last = None

    # -- results -----------------------------------------------------------
    @property
    def steps(self) -> int:
        """Events processed while attached — exact in every mode.

        Observed steps are counted directly; skipped steps are recovered
        from the off-phase arithmetic (each completed off phase skipped
        exactly ``cycle - burst`` steps; ``skip`` is what remains of the
        current one; off phases cut short by a detach are folded into
        ``_skipped``).
        """
        return (
            self._sampled + self._skipped
            + self._off * self._offs - self.skip
        )

    @property
    def pushes(self) -> int:
        """Heap pushes while attached — exact in every mode, no per-push
        hook: each session's pushes are its steps plus its heap growth
        (every pushed event is either popped by a step or still queued).
        """
        live = 0
        if self._heap is not None:
            live = (
                (self.steps - self._steps_base)
                + len(self._heap) - self._heap_base
            )
        return self._pushes + live

    @property
    def sampled_steps(self) -> int:
        """Steps the profiler actually observed (== steps in full mode)."""
        return self._sampled

    @property
    def total_wall(self) -> float:
        """Seconds attributed across all buckets (external included)."""
        return sum(acc[1] for acc in self.buckets.values())

    @property
    def kernel_wall(self) -> float:
        """Seconds attributed to kernel buckets (external excluded)."""
        return sum(
            acc[1] for name, acc in self.buckets.items() if name != _EXTERNAL
        )

    @property
    def coverage(self) -> float:
        """Fraction of observed kernel wall-clock in named kernel buckets.

        The denominator is the span of every observed burst (first event
        to burst close); the numerator drops the ``external`` bucket
        (host time between run segments that happened to fall inside a
        burst).  The bench gate requires this to stay >= 0.95.
        """
        if self.measured_wall <= 0.0:
            return 1.0
        return min(1.0, self.kernel_wall / self.measured_wall)

    @property
    def event_mix(self) -> Dict[str, int]:
        """Observed event counts by kind — derived from the bucket counts:
        ``init`` / ``exit`` plus one entry per event class."""
        mix: Dict[str, int] = {}
        for name, acc in self.buckets.items():
            if name == _EXTERNAL:
                continue
            frame = name.split(";", 2)[1]
            mix[frame] = mix.get(frame, 0) + acc[0]
        return mix

    def summary(self) -> dict:
        """JSON-friendly profile.

        ``"sim"`` — and each wall bucket's ``count`` — is deterministic
        (a pure function of the seeded run; in burst mode the counts are
        deterministic *samples*); the wall-clock seconds are host
        telemetry and vary run to run.  Call after :meth:`detach`: an
        open attach session's in-flight window is not yet folded in.
        """
        fluid_totals = _fluid_entry()
        for entry in self.fluid.values():
            for key, value in entry.items():
                if key == "fanout_max":
                    fluid_totals[key] = max(fluid_totals[key], value)
                else:
                    fluid_totals[key] += value
        updates = (
            fluid_totals["set_speed"] + fluid_totals["set_weight"]
            + fluid_totals["set_cap"] + fluid_totals["submit"]
            + fluid_totals["cancel"]
        )
        total = self.total_wall
        wall_buckets = {
            name: {
                "count": acc[0],
                "seconds": round(acc[1], 6),
                "share": round(acc[1] / total, 4) if total > 0 else 0.0,
            }
            for name, acc in sorted(self.buckets.items())
        }
        return {
            "sim": {
                "steps": self.steps,
                "pushes": self.pushes,
                "max_heap": self.max_heap,
                "sampling": {
                    "mode": "full" if self._full else "burst",
                    "burst": self._burst,
                    "cycle": self._burst + self._off,
                    "sampled_steps": self._sampled,
                },
                "event_mix": dict(sorted(self.event_mix.items())),
                "ties": {
                    "windows": self.tie_windows,
                    "tied_events": self.tied_events,
                    "max_window": self.max_tie_window,
                    "census": {
                        str(size): count
                        for size, count in sorted(self.tie_census.items())
                    },
                },
                "fluid": {
                    "shares": {
                        name: dict(entry)
                        for name, entry in sorted(self.fluid.items())
                    },
                    "updates": updates,
                    "reschedules": fluid_totals["reschedules"],
                    "fanout_sum": fluid_totals["fanout_sum"],
                    "fanout_max": fluid_totals["fanout_max"],
                },
                "attaches": self.attaches,
            },
            "wall": {
                "total_s": round(total, 6),
                "kernel_s": round(self.kernel_wall, 6),
                "measured_s": round(self.measured_wall, 6),
                "coverage": round(self.coverage, 4),
                "buckets": wall_buckets,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<KernelProfiler steps={self.steps} "
            f"buckets={len(self.buckets)} wall={self.total_wall:.4f}s>"
        )


def to_folded(profiler: KernelProfiler) -> str:
    """Collapsed-stack flamegraph input: ``frame;frame value`` lines.

    Values are integer microseconds (flamegraph.pl / speedscope / inferno
    all take any integer unit).  Lines are sorted by stack so the set of
    stacks — everything but the values — is deterministic for a seeded
    run; the wall-clock values vary run to run.
    """
    lines = []
    for name, acc in sorted(profiler.buckets.items()):
        lines.append(f"{name} {int(round(acc[1] * 1e6))}")
    return "\n".join(lines)


def to_chrome_profile(profiler: KernelProfiler) -> dict:
    """Aggregated buckets as a chrome://tracing / Perfetto flame chart.

    Buckets are laid end to end (largest first) as complete (``X``)
    events on one synthetic track — a visual share-of-time breakdown,
    not a timeline.
    """
    events: List[dict] = []
    cursor = 0
    ranked = sorted(
        profiler.buckets.items(), key=lambda item: (-item[1][1], item[0])
    )
    for name, acc in ranked:
        duration = int(round(acc[1] * 1e6))
        frames = name.split(";")
        events.append(
            {
                "name": frames[-1],
                "cat": "kernel-profile",
                "ph": "X",
                "ts": cursor,
                "dur": duration,
                "pid": 1,
                "tid": 1,
                "args": {"stack": name, "count": acc[0]},
            }
        )
        cursor += duration
    return {
        "displayTimeUnit": "ms",
        "otherData": {"coverage": round(profiler.coverage, 4)},
        "traceEvents": events,
    }
