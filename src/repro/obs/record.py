"""Structured span/event recording over simulated time.

A :class:`TraceRecorder` collects :class:`SpanRecord` entries — durations
(**spans**, with a start and end in simulated time) and point events
(**instants**) — linked into causal trees through parent span ids.  It is
strictly *passive*: recording never creates simulator events, spawns
processes, or draws randomness, so a traced run's event order and final
state are byte-identical to the untraced run (the invariant the obs
benchmarks enforce).

Determinism rules baked into the design (see ``docs/observability.md``):

- span ids come from one monotonic counter, never ``id()`` or a UUID;
- timestamps are the bound simulator's virtual clock, never a wall clock;
- export order is ``(t0, sid)`` — a pure function of the simulation.

Parent resolution for a new record, in priority order:

1. an explicit ``parent=`` span id (how the runtime threads the
   violation -> decision -> steering -> switch chain through callbacks);
2. the lifecycle span of the simulator's active process (so anything
   recorded from inside a process nests under it automatically);
3. the top of the ambient-parent stack (:meth:`TraceRecorder.push_parent`,
   used by the profiling driver to group whole measurement runs).

Binding (:meth:`TraceRecorder.bind`) installs the recorder as
``sim.obs`` — the discovery point every instrumented module polls — and
chains the kernel's ``step_hook`` to open/close process lifecycle spans.
An existing hook (e.g. the tie-order race detector) keeps running; bind
the recorder *after* attaching such tools, since they may refuse to chain.
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import count
from typing import Any, Dict, Iterator, List, Optional

from ..sim.core import Event, Process, Simulator, _Initialize
from .metrics import MetricsRegistry

__all__ = ["ObsError", "SpanRecord", "TraceRecorder"]


class ObsError(Exception):
    """Raised on recorder misuse (unknown span ids, double binding)."""


class SpanRecord:
    """One trace entry: a span (``t1`` set at close) or an instant."""

    __slots__ = ("sid", "parent", "name", "cat", "kind", "t0", "t1", "proc", "attrs")

    def __init__(
        self,
        sid: int,
        name: str,
        cat: str,
        kind: str,
        t0: float,
        t1: Optional[float] = None,
        parent: Optional[int] = None,
        proc: str = "",
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.cat = cat
        self.kind = kind  # "span" | "instant"
        self.t0 = t0
        self.t1 = t1
        self.proc = proc
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}

    @property
    def open(self) -> bool:
        return self.kind == "span" and self.t1 is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.t1 is None else self.t1 - self.t0

    def to_dict(self) -> dict:
        return {
            "sid": self.sid,
            "parent": self.parent,
            "name": self.name,
            "cat": self.cat,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
            "proc": self.proc,
            "attrs": dict(sorted(self.attrs.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            sid=payload["sid"],
            name=payload["name"],
            cat=payload.get("cat", "user"),
            kind=payload.get("kind", "instant"),
            t0=payload["t0"],
            t1=payload.get("t1"),
            parent=payload.get("parent"),
            proc=payload.get("proc", ""),
            attrs=dict(payload.get("attrs", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        when = f"{self.t0:.6g}" if self.t1 is None else f"{self.t0:.6g}-{self.t1:.6g}"
        return f"<SpanRecord #{self.sid} {self.name!r} [{when}]>"


class TraceRecorder:
    """Collects spans/instants and a metrics registry for one run."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.records: List[SpanRecord] = []
        self._ids = count(1)
        self._open: Dict[int, SpanRecord] = {}
        self._ambient: List[int] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry(self.now)
        self.sim: Optional[Simulator] = None
        self._prev_hook = None
        self._hook = None
        #: Kernel steps observed while bound (cheap int, not a Counter —
        #: this increments on every simulator event).
        self.steps = 0

    # -- clock ------------------------------------------------------------
    def now(self) -> float:
        """Virtual time of the bound simulator; 0.0 while unbound."""
        return self.sim.now if self.sim is not None else 0.0

    # -- binding ----------------------------------------------------------
    def bind(self, sim: Simulator) -> "TraceRecorder":
        """Install as ``sim.obs`` and chain the kernel step hook."""
        if self.sim is not None:
            raise ObsError("recorder is already bound; unbind() first")
        if sim.obs is not None:
            raise ObsError("simulator already has a bound recorder")
        self.sim = sim
        sim.obs = self
        self._prev_hook = sim.step_hook
        # One bound-method object, kept for the identity check in unbind()
        # (each `self._step_hook` attribute access would create a fresh one).
        self._hook = self._step_hook
        sim.step_hook = self._hook
        return self

    def unbind(self) -> "TraceRecorder":
        """Detach from the simulator (restores any chained step hook)."""
        sim = self.sim
        if sim is None:
            return self
        if sim.obs is self:
            sim.obs = None
        if sim.step_hook is self._hook:
            sim.step_hook = self._prev_hook
        self._prev_hook = None
        self._hook = None
        self.sim = None
        return self

    def _step_hook(self, t: float, prio: int, seq: int, event: Event) -> None:
        # Hot path — once per kernel event; isinstance() over issubclass()
        # and a localized chain call keep the per-event cost flat.
        self.steps += 1
        if event.__class__ is _Initialize:
            proc = event.process  # type: ignore[attr-defined]
            span = self._record(
                "span", f"proc:{proc.name}", "sim", parent=proc.obs_parent
            )
            proc.obs_span = span.sid
        elif isinstance(event, Process):
            sid = event.obs_span  # type: ignore[attr-defined]
            if sid is not None and sid in self._open:
                self.end(sid, ok=bool(event._ok))
        prev = self._prev_hook
        if prev is not None:
            prev(t, prio, seq, event)

    # -- parent context ----------------------------------------------------
    def push_parent(self, sid: int) -> None:
        """Make ``sid`` the ambient parent for records with no other link."""
        self._ambient.append(sid)

    def pop_parent(self) -> None:
        self._ambient.pop()

    def _resolve_parent(self, parent: Optional[int]) -> Optional[int]:
        if parent is not None:
            return parent
        if self.sim is not None:
            proc = self.sim.active_process
            if proc is not None and proc.obs_span is not None:
                return proc.obs_span
        return self._ambient[-1] if self._ambient else None

    def _proc_name(self) -> str:
        if self.sim is not None:
            proc = self.sim.active_process
            if proc is not None:
                return proc.name
        return ""

    # -- recording ---------------------------------------------------------
    def _record(
        self,
        kind: str,
        name: str,
        cat: str,
        parent: Optional[int],
        t: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> SpanRecord:
        t0 = self.now() if t is None else float(t)
        record = SpanRecord(
            sid=next(self._ids),
            name=name,
            cat=cat,
            kind=kind,
            t0=t0,
            t1=t0 if kind == "instant" else None,
            parent=self._resolve_parent(parent),
            proc=self._proc_name(),
        )
        if attrs:
            record.attrs.update(attrs)
        self.records.append(record)
        if kind == "span":
            self._open[record.sid] = record
        return record

    def begin(
        self,
        name: str,
        cat: str = "user",
        parent: Optional[int] = None,
        t: Optional[float] = None,
        **attrs: Any,
    ) -> int:
        """Open a span; returns its id for :meth:`end` and child links."""
        return self._record("span", name, cat, parent, t, attrs).sid

    def end(self, sid: int, t: Optional[float] = None, **attrs: Any) -> SpanRecord:
        """Close an open span at the current (or given) simulated time."""
        record = self._open.pop(sid, None)
        if record is None:
            raise ObsError(f"span #{sid} is not open")
        record.t1 = self.now() if t is None else float(t)
        if attrs:
            record.attrs.update(attrs)
        return record

    def instant(
        self,
        name: str,
        cat: str = "user",
        parent: Optional[int] = None,
        t: Optional[float] = None,
        **attrs: Any,
    ) -> int:
        """Record a point event; returns its id for child links."""
        return self._record("instant", name, cat, parent, t, attrs).sid

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "user",
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> Iterator[int]:
        """Span over a ``with`` block, ambient-parenting nested records."""
        sid = self.begin(name, cat=cat, parent=parent, **attrs)
        self.push_parent(sid)
        try:
            yield sid
        finally:
            self.pop_parent()
            self.end(sid)

    def finish(self) -> "TraceRecorder":
        """Close every still-open span at the current time (run teardown)."""
        for sid in sorted(self._open):
            self.end(sid, unfinished=True)
        return self

    # -- access ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def find(self, name: str) -> List[SpanRecord]:
        """All records with the given name, in record order."""
        return [r for r in self.records if r.name == name]
