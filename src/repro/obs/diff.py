"""Trace and metrics diffing: where two runs first went different ways.

A seeded run's trace is a pure function of ``(code, seed, config)``, so
two traces that *should* agree — same seed before/after a refactor, a
replayed fault schedule, a cache-served vs freshly-run sweep cell —
either match structurally or diverge at a first point that localizes the
behavioural change.  This module aligns two span trees and reports that
point with its causal context.

Alignment never uses span ids or timestamps (both shift under unrelated
edits: an extra instant renumbers every later sid; a nanosecond of extra
work moves every later ``t0``).  Instead each record gets a **structural
key**: the root-to-node path of ``(name, ordinal)`` pairs, where the
ordinal counts earlier same-named siblings under the same parent, in
``(t0, sid)`` order.  Two records in different runs correspond iff their
keys are equal — "the third ``steer.request`` under the monitor process"
names the same logical event in both runs regardless of when it happened
or what sid it drew.

``diff_traces`` classifies keys as matched / changed (same key, different
attributes or outcome) / only-in-A / only-in-B and pins the **first
divergence** — the earliest changed-or-unmatched record in virtual time —
together with its root-first causal chain, so the report reads like the
adaptation timelines of ``repro trace``: *this* violation led to *this*
decision, and here the runs parted.

``diff_metrics`` compares two registry snapshots: counter/gauge deltas,
histogram count shifts, and series length/endpoint drift (covering the
``usage.*`` utilization series of :mod:`repro.obs.usage`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .export import ordered
from .query import chain
from .record import SpanRecord

__all__ = [
    "DiffResult",
    "Divergence",
    "diff_metrics",
    "diff_traces",
    "format_key",
    "structural_keys",
]

#: Attribute keys ignored when deciding whether two matched records
#: "changed": timing attrs vary freely between runs without implying a
#: behavioural difference (virtual durations are compared separately).
_VOLATILE_ATTRS = frozenset({"virtual_duration"})

Key = Tuple[Tuple[str, int], ...]


def structural_keys(records: Sequence[SpanRecord]) -> Dict[int, Key]:
    """Map each record's sid to its structural key.

    The key is the root-to-node path of ``(name, ordinal)`` pairs;
    ordinals count same-named siblings under the same parent in
    ``(t0, sid)`` order.  Records whose parent is missing from the input
    (truncated export) are treated as roots, deterministically.
    """
    by_sid = {record.sid: record for record in records}
    # Pass 1: per-(parent, name) ordinals in (t0, sid) order.
    steps: Dict[int, Tuple[Optional[int], str, int]] = {}
    counters: Dict[Tuple[Optional[int], str], int] = {}
    for record in ordered(records):
        parent = record.parent if record.parent in by_sid else None
        ordinal = counters.get((parent, record.name), 0)
        counters[(parent, record.name)] = ordinal + 1
        steps[record.sid] = (parent, record.name, ordinal)
    # Pass 2: full paths by walking parent links (memoized).
    keys: Dict[int, Key] = {}

    def resolve(sid: int) -> Key:
        key = keys.get(sid)
        if key is None:
            parent, name, ordinal = steps[sid]
            prefix: Key = resolve(parent) if parent is not None else ()
            key = prefix + ((name, ordinal),)
            keys[sid] = key
        return key

    for sid in steps:
        resolve(sid)
    return keys


def format_key(key: Key) -> str:
    """Human-readable path form: ``proc:client[0]/steer.request[2]``."""
    return "/".join(f"{name}[{ordinal}]" for name, ordinal in key)


def _fingerprint(record: SpanRecord) -> dict:
    """The comparable substance of a record (no sids, no timestamps)."""
    return {
        "kind": record.kind,
        "cat": record.cat,
        "proc": record.proc,
        "attrs": {
            k: v
            for k, v in sorted(record.attrs.items())
            if k not in _VOLATILE_ATTRS
        },
    }


class Divergence:
    """The first structural disagreement between two runs."""

    __slots__ = ("kind", "key", "record", "side", "other", "causal_chain")

    def __init__(
        self,
        kind: str,
        key: Key,
        record: SpanRecord,
        side: str,
        other: Optional[SpanRecord],
        causal_chain: List[SpanRecord],
    ):
        #: "changed" | "only_a" | "only_b".
        self.kind = kind
        self.key = key
        #: The diverging record (from run A for "changed"/"only_a").
        self.record = record
        self.side = side
        #: The matched record on the other side ("changed" only).
        self.other = other
        #: Root-first causal chain of :attr:`record` in its own run.
        self.causal_chain = causal_chain

    def to_dict(self) -> dict:
        payload = {
            "kind": self.kind,
            "key": format_key(self.key),
            "side": self.side,
            "t": self.record.t0,
            "name": self.record.name,
            "record": self.record.to_dict(),
            "chain": [
                {"name": r.name, "t": r.t0, "attrs": dict(sorted(r.attrs.items()))}
                for r in self.causal_chain
            ],
        }
        if self.other is not None:
            payload["other"] = self.other.to_dict()
        return payload


class DiffResult:
    """Outcome of :func:`diff_traces` over two record lists."""

    def __init__(
        self,
        matched: int,
        changed: List[Tuple[Key, SpanRecord, SpanRecord]],
        only_a: List[Tuple[Key, SpanRecord]],
        only_b: List[Tuple[Key, SpanRecord]],
        first_divergence: Optional[Divergence],
    ):
        #: Number of keys present in both runs with equal fingerprints.
        self.matched = matched
        #: Keys present in both runs whose fingerprints differ.
        self.changed = changed
        self.only_a = only_a
        self.only_b = only_b
        self.first_divergence = first_divergence

    @property
    def identical(self) -> bool:
        return not (self.changed or self.only_a or self.only_b)

    @property
    def divergences(self) -> int:
        return len(self.changed) + len(self.only_a) + len(self.only_b)

    def to_dict(self) -> dict:
        return {
            "identical": self.identical,
            "matched": self.matched,
            "divergences": self.divergences,
            "changed": [
                {
                    "key": format_key(key),
                    "a": a.to_dict(),
                    "b": b.to_dict(),
                }
                for key, a, b in self.changed
            ],
            "only_a": [
                {"key": format_key(key), "record": rec.to_dict()}
                for key, rec in self.only_a
            ],
            "only_b": [
                {"key": format_key(key), "record": rec.to_dict()}
                for key, rec in self.only_b
            ],
            "first_divergence": (
                None
                if self.first_divergence is None
                else self.first_divergence.to_dict()
            ),
        }


def diff_traces(
    records_a: Sequence[SpanRecord], records_b: Sequence[SpanRecord]
) -> DiffResult:
    """Align two runs' span trees structurally and report divergences.

    Returns a :class:`DiffResult`; ``result.identical`` means every
    structural key appears in both runs with the same substance (name
    tree, categories, processes, attributes) — timestamps and sids are
    free to differ.  The first divergence is the earliest (by the
    diverging record's own ``(t0, sid)``) changed or one-sided record,
    with its causal chain for context.
    """
    keys_a = structural_keys(records_a)
    keys_b = structural_keys(records_b)
    index_a = {keys_a[r.sid]: r for r in records_a}
    index_b = {keys_b[r.sid]: r for r in records_b}

    matched = 0
    changed: List[Tuple[Key, SpanRecord, SpanRecord]] = []
    only_a: List[Tuple[Key, SpanRecord]] = []
    only_b: List[Tuple[Key, SpanRecord]] = []

    for record in ordered(records_a):
        key = keys_a[record.sid]
        other = index_b.get(key)
        if other is None:
            only_a.append((key, record))
        elif _fingerprint(record) == _fingerprint(other):
            matched += 1
        else:
            changed.append((key, record, other))
    for record in ordered(records_b):
        if keys_b[record.sid] not in index_a:
            only_b.append((keys_b[record.sid], record))

    candidates: List[Tuple[float, int, int, Divergence]] = []
    if changed:
        key, rec, other = changed[0]
        candidates.append(
            (rec.t0, rec.sid, 0,
             Divergence("changed", key, rec, "a", other,
                        chain(records_a, rec.sid)))
        )
    if only_a:
        key, rec = only_a[0]
        candidates.append(
            (rec.t0, rec.sid, 1,
             Divergence("only_a", key, rec, "a", None,
                        chain(records_a, rec.sid)))
        )
    if only_b:
        key, rec = only_b[0]
        candidates.append(
            (rec.t0, rec.sid, 2,
             Divergence("only_b", key, rec, "b", None,
                        chain(records_b, rec.sid)))
        )
    first = min(candidates)[3] if candidates else None
    return DiffResult(matched, changed, only_a, only_b, first)


# -- metrics ---------------------------------------------------------------

def _series_summary(payload: dict) -> dict:
    samples = payload.get("samples", [])
    return {
        "samples": len(samples),
        "last_t": samples[-1][0] if samples else None,
        "last_value": samples[-1][1] if samples else None,
    }


def diff_metrics(snap_a: dict, snap_b: dict, tol: float = 1e-12) -> dict:
    """Compare two ``MetricsRegistry.snapshot()`` dicts.

    Returns ``{"identical": bool, "only_a": [...], "only_b": [...],
    "changed": {name: {...}}}`` where each changed entry carries a
    kind-appropriate delta: counters/gauges get ``a``/``b``/``delta``,
    histograms get count/total deltas, series get length and endpoint
    drift.  Numeric differences within ``tol`` are treated as equal.
    """
    names_a, names_b = set(snap_a), set(snap_b)
    changed: Dict[str, dict] = {}

    def close(x, y) -> bool:
        if x is None or y is None:
            return x is y
        return abs(float(x) - float(y)) <= tol

    for name in sorted(names_a & names_b):
        a, b = snap_a[name], snap_b[name]
        if a.get("kind") != b.get("kind"):
            changed[name] = {"kind": "mismatch", "a": a.get("kind"),
                             "b": b.get("kind")}
            continue
        kind = a.get("kind")
        if kind in ("counter", "gauge"):
            if not close(a.get("value"), b.get("value")):
                av, bv = a.get("value"), b.get("value")
                changed[name] = {
                    "kind": kind, "a": av, "b": bv,
                    "delta": (None if av is None or bv is None else bv - av),
                }
        elif kind == "histogram":
            if (a["count"] != b["count"] or a["counts"] != b["counts"]
                    or not close(a["total"], b["total"])):
                changed[name] = {
                    "kind": kind,
                    "count_delta": b["count"] - a["count"],
                    "total_delta": b["total"] - a["total"],
                    "counts_a": a["counts"],
                    "counts_b": b["counts"],
                }
        elif kind == "series":
            sa, sb = _series_summary(a), _series_summary(b)
            if (sa["samples"] != sb["samples"]
                    or not close(sa["last_t"], sb["last_t"])
                    or not close(sa["last_value"], sb["last_value"])):
                changed[name] = {"kind": kind, "a": sa, "b": sb}
        elif a != b:  # pragma: no cover - future metric kinds
            changed[name] = {"kind": kind, "a": a, "b": b}

    only_a = sorted(names_a - names_b)
    only_b = sorted(names_b - names_a)
    return {
        "identical": not (changed or only_a or only_b),
        "only_a": only_a,
        "only_b": only_b,
        "changed": changed,
    }
