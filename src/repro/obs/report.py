"""Self-contained HTML reports: one experiment, or two runs compared.

``render_report`` turns one traced run (span records + metrics snapshot
+ optional usage summary) into a single HTML file with no external
assets — inline CSS and inline SVG, no JavaScript — so the file can be
attached to a CI run or mailed around and still render identically.
Sections: run header, adaptation timeline (configuration bands with
event ticks), per-resource utilization strips, configuration dwell
times, fault events, and the metrics table.

``render_comparison`` renders two runs side by side around a
:class:`~repro.obs.diff.DiffResult`: the verdict (identical or first
divergence with its causal chain), the matched/changed/only counts, and
the metrics deltas.

Determinism: the output is a pure function of the inputs — no wall
clocks, no random ids, stable iteration order everywhere — so report
files diff cleanly across commits.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from .diff import DiffResult, format_key
from .export import ordered
from .query import dwell_times
from .record import SpanRecord

__all__ = ["render_comparison", "render_report"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 60em; color: #1a1a2e; }
h1 { font-size: 1.4em; border-bottom: 2px solid #16213e; padding-bottom: .3em; }
h2 { font-size: 1.1em; margin-top: 1.6em; color: #16213e; }
table { border-collapse: collapse; font-size: .85em; margin: .5em 0; }
th, td { border: 1px solid #cbd5e1; padding: .25em .6em; text-align: left; }
th { background: #eef2f7; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #15803d; font-weight: 600; }
.bad { color: #b91c1c; font-weight: 600; }
.strip { margin: .35em 0; }
.strip .label { font-size: .8em; color: #475569; }
svg { display: block; }
code { background: #f1f5f9; padding: 0 .25em; border-radius: 3px; }
.chain { font-size: .85em; }
.chain li { margin: .15em 0; }
footer { margin-top: 2.5em; font-size: .75em; color: #64748b;
         border-top: 1px solid #cbd5e1; padding-top: .5em; }
"""

# A small qualitative palette for configuration bands (cycled).
_BAND_COLORS = ("#93c5fd", "#fcd34d", "#86efac", "#f9a8d4", "#c4b5fd",
                "#fdba74", "#a5f3fc", "#d9f99d")


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _trace_extent(records: Sequence[SpanRecord]) -> float:
    end = 0.0
    for record in records:
        end = max(end, record.t0, record.t1 if record.t1 is not None else 0.0)
    return end


def _config_marks(records: Sequence[SpanRecord]) -> List[Tuple[float, str]]:
    return [
        (record.t0, str(record.attrs.get("config", "?")))
        for record in ordered(records)
        if record.name in ("config.initial", "config.switch")
    ]


def _fault_events(records: Sequence[SpanRecord]) -> List[SpanRecord]:
    return [
        record
        for record in ordered(records)
        if record.cat == "fault" or record.name.startswith("fault.")
    ]


def _recovery_events(records: Sequence[SpanRecord]) -> List[SpanRecord]:
    """Supervision/failover/brownout instants (cat ``recovery``)."""
    return [
        record
        for record in ordered(records)
        if record.cat == "recovery" or record.name.startswith("recovery.")
    ]


def _timeline_svg(
    marks: List[Tuple[float, str]],
    faults: List[SpanRecord],
    t_end: float,
    width: int = 720,
    height: int = 46,
    recovery: Sequence[SpanRecord] = (),
) -> str:
    """Configuration bands with fault (red) and recovery (green) ticks."""
    if t_end <= 0.0:
        t_end = 1.0

    def x(t: float) -> float:
        return round(width * min(max(t, 0.0), t_end) / t_end, 2)

    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'viewBox="0 0 {width} {height}">'
    ]
    colors: Dict[str, str] = {}
    for t0, label in marks:
        if label not in colors:
            colors[label] = _BAND_COLORS[len(colors) % len(_BAND_COLORS)]
    if not marks:
        parts.append(
            f'<rect x="0" y="8" width="{width}" height="22" fill="#e2e8f0"/>'
        )
    for (t0, label), nxt in zip(marks, marks[1:] + [None]):
        t1 = t_end if nxt is None else nxt[0]
        parts.append(
            f'<rect x="{x(t0)}" y="8" width="{max(0.5, x(t1) - x(t0))}" '
            f'height="22" fill="{colors[label]}">'
            f"<title>{_esc(label)}: {t0:.2f}s - {t1:.2f}s</title></rect>"
        )
    for record in faults:
        parts.append(
            f'<line x1="{x(record.t0)}" y1="4" x2="{x(record.t0)}" y2="34" '
            f'stroke="#b91c1c" stroke-width="1.5">'
            f"<title>{_esc(record.name)} @ {record.t0:.2f}s</title></line>"
        )
    for record in recovery:
        parts.append(
            f'<line x1="{x(record.t0)}" y1="10" x2="{x(record.t0)}" y2="38" '
            f'stroke="#15803d" stroke-width="1.5" stroke-dasharray="2,2">'
            f"<title>{_esc(record.name)} @ {record.t0:.2f}s</title></line>"
        )
    parts.append(
        f'<text x="0" y="{height - 2}" font-size="9" fill="#64748b">0s</text>'
        f'<text x="{width - 40}" y="{height - 2}" font-size="9" '
        f'fill="#64748b" text-anchor="end">{t_end:.1f}s</text>'
    )
    parts.append("</svg>")
    legend = " ".join(
        f'<span style="background:{color};padding:0 .5em;margin-right:.5em">'
        f"</span>{_esc(label)}"
        for label, color in colors.items()
    )
    if legend:
        parts.append(f'<div class="label">{legend}</div>')
    return "".join(parts)


def _series_svg(
    samples: Sequence[Tuple[float, float]],
    t_end: float,
    width: int = 720,
    height: int = 40,
    v_max: Optional[float] = None,
) -> str:
    """One utilization strip: a filled step-ish polyline, 0..v_max."""
    if t_end <= 0.0:
        t_end = 1.0
    if v_max is None:
        v_max = max((v for _, v in samples), default=1.0)
        v_max = max(v_max, 1e-9)
    pts = []
    for t, v in samples:
        px = round(width * min(max(t, 0.0), t_end) / t_end, 2)
        py = round(height - (height - 2) * min(v / v_max, 1.0) - 1, 2)
        pts.append(f"{px},{py}")
    poly = ""
    if pts:
        poly = (
            f'<polyline points="0,{height - 1} {" ".join(pts)}" fill="none" '
            f'stroke="#2563eb" stroke-width="1.2"/>'
        )
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}">'
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="#f8fafc" '
        f'stroke="#e2e8f0"/>{poly}</svg>'
    )


def _crowd_counter(snapshot: dict, cls: str, column: str) -> int:
    payload = snapshot.get(f"crowd.{cls}.{column}", {})
    return int(payload.get("value", 0))


def _crowd_section(metrics_snapshot: dict, t_end: float) -> str:
    """Per-class QoS satisfaction bars + arrival-rate timelines.

    Present only when the run drove a :class:`repro.crowd.CrowdSource`
    (the ``crowd.<class>.*`` metrics exist); rendered with the same
    no-JS machinery as every other section.
    """
    classes = sorted(
        {
            name.split(".")[1]
            for name in metrics_snapshot
            if name.startswith("crowd.") and name.count(".") == 2
        }
    )
    if not classes:
        return ""
    body: List[str] = ["<h2>Crowd</h2>"]

    body.append("<table><tr><th>class</th><th>issued</th><th>served</th>"
                "<th>shed</th><th>lost</th><th>QoS satisfaction</th></tr>")
    for cls in classes:
        issued = _crowd_counter(metrics_snapshot, cls, "issued")
        satisfied = _crowd_counter(metrics_snapshot, cls, "satisfied")
        violated = _crowd_counter(metrics_snapshot, cls, "violated")
        resolved = satisfied + violated
        frac = satisfied / resolved if resolved else 1.0
        bar_w = int(round(200 * frac))
        bar = (
            f'<svg width="220" height="14" viewBox="0 0 220 14">'
            f'<rect x="0" y="1" width="200" height="12" fill="#fee2e2"/>'
            f'<rect x="0" y="1" width="{bar_w}" height="12" fill="#16a34a"/>'
            f'</svg> <span class="num">{100.0 * frac:.1f}%</span>'
        )
        body.append(
            f"<tr><td><code>{_esc(cls)}</code></td>"
            f'<td class="num">{issued}</td>'
            f'<td class="num">{_crowd_counter(metrics_snapshot, cls, "served")}'
            f"</td>"
            f'<td class="num">{_crowd_counter(metrics_snapshot, cls, "shed")}'
            f"</td>"
            f'<td class="num">{_crowd_counter(metrics_snapshot, cls, "lost")}'
            f"</td>"
            f"<td>{bar}</td></tr>"
        )
    body.append("</table>")

    for cls in classes:
        payload = metrics_snapshot.get(f"crowd.{cls}.rate", {})
        samples = [tuple(s) for s in payload.get("samples", [])]
        if not samples:
            continue
        body.append(
            f'<div class="strip"><div class="label">'
            f"<code>crowd.{_esc(cls)}.rate</code> (req/s)</div>"
            f"{_series_svg(samples, t_end)}</div>"
        )
    return "".join(body)


def _metrics_rows(snapshot: dict) -> str:
    rows = []
    for name in sorted(snapshot):
        payload = snapshot[name]
        kind = payload.get("kind", "?")
        if kind == "counter":
            value = _fmt(payload.get("value"))
        elif kind == "gauge":
            value = f"{_fmt(payload.get('value'))} ({payload.get('updates')} updates)"
        elif kind == "histogram":
            value = (
                f"n={payload.get('count')} mean={_fmt(payload.get('mean'))} "
                f"min={_fmt(payload.get('min'))} max={_fmt(payload.get('max'))}"
            )
        else:
            value = f"{len(payload.get('samples', []))} samples"
        rows.append(
            f"<tr><td><code>{_esc(name)}</code></td><td>{_esc(kind)}</td>"
            f'<td class="num">{_esc(value)}</td></tr>'
        )
    return "".join(rows)


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n"
        f'<html lang="en"><head><meta charset="utf-8">'
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>{body}"
        "<footer>Generated by <code>repro report</code> — deterministic: "
        "a pure function of (experiment, seed).</footer></body></html>\n"
    )


def render_report(
    records: Sequence[SpanRecord],
    metrics_snapshot: dict,
    title: str,
    usage_summary: Optional[dict] = None,
    perf_summary: Optional[dict] = None,
) -> str:
    """One run's self-contained HTML report.

    ``perf_summary`` (a :meth:`repro.obs.KernelProfiler.summary` dict)
    adds a kernel-profile section; it is opt-in (``repro report --perf``)
    because its wall-clock side is host telemetry, not deterministic run
    state.
    """
    t_end = _trace_extent(records)
    marks = _config_marks(records)
    faults = _fault_events(records)
    recovery = _recovery_events(records)
    body: List[str] = []

    body.append("<h2>Run</h2><table>")
    body.append(
        f'<tr><th>trace records</th><td class="num">{len(records)}</td></tr>'
        f'<tr><th>metrics</th><td class="num">{len(metrics_snapshot)}</td></tr>'
        f'<tr><th>virtual duration</th><td class="num">{t_end:.3f}s</td></tr>'
        f'<tr><th>configuration switches</th>'
        f'<td class="num">{max(0, len(marks) - 1)}</td></tr>'
        f'<tr><th>fault events</th><td class="num">{len(faults)}</td></tr>'
        f'<tr><th>recovery events</th><td class="num">{len(recovery)}</td></tr>'
    )
    body.append("</table>")

    body.append("<h2>Adaptation timeline</h2>")
    body.append(_timeline_svg(marks, faults, t_end, recovery=recovery))

    dwell = dwell_times(records)
    if dwell:
        body.append("<h2>Configuration dwell times</h2><table>")
        body.append("<tr><th>configuration</th><th>dwell</th><th>share</th></tr>")
        total = sum(dwell.values()) or 1.0
        for label, seconds in dwell.items():
            body.append(
                f"<tr><td><code>{_esc(label)}</code></td>"
                f'<td class="num">{seconds:.3f}s</td>'
                f'<td class="num">{100.0 * seconds / total:.1f}%</td></tr>'
            )
        body.append("</table>")

    # Top-level resource strips only, not per-proc/per-config breakdowns.
    strips = [
        name for name, payload in sorted(metrics_snapshot.items())
        if payload.get("kind") == "series" and name.startswith("usage.")
        and ".proc." not in name and ".config." not in name
    ]
    if strips:
        body.append("<h2>Resource utilization</h2>")
        for name in strips:
            samples = [tuple(s) for s in metrics_snapshot[name]["samples"]]
            v_max = 1.0 if not name.endswith(".resident") else None
            body.append(
                f'<div class="strip"><div class="label">'
                f"<code>{_esc(name)}</code></div>"
                f"{_series_svg(samples, t_end, v_max=v_max)}</div>"
            )

    crowd_section = _crowd_section(metrics_snapshot, t_end)
    if crowd_section:
        body.append(crowd_section)

    if usage_summary:
        body.append("<h2>Usage account</h2><table>")
        body.append(
            "<tr><th>resource</th><th>kind</th><th>served</th>"
            "<th>capacity</th><th>utilization</th><th>top consumer</th></tr>"
        )
        for name in sorted(usage_summary.get("resources", {})):
            res = usage_summary["resources"][name]
            owners = res.get("by_owner", {})
            top = max(owners, key=lambda k: owners[k]) if owners else "-"
            body.append(
                f"<tr><td><code>{_esc(name)}</code></td><td>{_esc(res['kind'])}</td>"
                f'<td class="num">{res["served"]:.4g}</td>'
                f'<td class="num">{res["capacity"]:.4g}</td>'
                f'<td class="num">{100.0 * res["utilization"]:.2f}%</td>'
                f"<td><code>{_esc(top)}</code></td></tr>"
            )
        for name in sorted(usage_summary.get("memory", {})):
            mem = usage_summary["memory"][name]
            body.append(
                f"<tr><td><code>{_esc(name)}</code></td><td>memory</td>"
                f'<td class="num">{mem["faults"]} faults</td>'
                f'<td class="num">{mem["total_pages"]} pages</td>'
                f'<td class="num">peak {mem["peak_resident_pages"]}</td>'
                f"<td>-</td></tr>"
            )
        body.append("</table>")

    if faults:
        body.append("<h2>Fault events</h2><table>")
        body.append("<tr><th>t</th><th>event</th><th>details</th></tr>")
        for record in faults:
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(record.attrs.items())
            )
            body.append(
                f'<tr><td class="num">{record.t0:.3f}</td>'
                f"<td><code>{_esc(record.name)}</code></td>"
                f"<td>{_esc(attrs)}</td></tr>"
            )
        body.append("</table>")

    if perf_summary:
        sim_side = perf_summary.get("sim", {})
        wall = perf_summary.get("wall", {})
        ties = sim_side.get("ties", {})
        fluid = sim_side.get("fluid", {})
        body.append("<h2>Kernel profile</h2><table>")
        body.append(
            f'<tr><th>events processed</th>'
            f'<td class="num">{sim_side.get("steps", 0)}</td></tr>'
            f'<tr><th>heap pushes / peak size</th>'
            f'<td class="num">{sim_side.get("pushes", 0)} / '
            f'{sim_side.get("max_heap", 0)}</td></tr>'
            f'<tr><th>same-instant tie windows</th>'
            f'<td class="num">{ties.get("windows", 0)} '
            f'({ties.get("tied_events", 0)} tied events, '
            f'max {ties.get("max_window", 0)})</td></tr>'
            f'<tr><th>fluid updates / reschedules</th>'
            f'<td class="num">{fluid.get("updates", 0)} / '
            f'{fluid.get("reschedules", 0)} '
            f'(max fan-out {fluid.get("fanout_max", 0)})</td></tr>'
            f'<tr><th>wall-clock attributed</th>'
            f'<td class="num">{wall.get("total_s", 0.0):.4f}s over '
            f'{len(wall.get("buckets", {}))} buckets '
            f'(coverage {100 * wall.get("coverage", 0.0):.1f}%)</td></tr>'
        )
        body.append("</table>")
        buckets = wall.get("buckets", {})
        if buckets:
            body.append(
                "<h3>Cost buckets (host wall-clock — not deterministic)</h3>"
                "<table><tr><th>bucket</th><th>share</th><th>seconds</th>"
                "<th>count</th></tr>"
            )
            ranked = sorted(
                buckets.items(), key=lambda kv: (-kv[1]["seconds"], kv[0])
            )
            for name, bucket in ranked[:15]:
                body.append(
                    f"<tr><td><code>{_esc(name)}</code></td>"
                    f'<td class="num">{100 * bucket["share"]:.1f}%</td>'
                    f'<td class="num">{bucket["seconds"]:.6f}</td>'
                    f'<td class="num">{bucket["count"]}</td></tr>'
                )
            body.append("</table>")

    body.append("<h2>Metrics</h2><table>")
    body.append("<tr><th>name</th><th>kind</th><th>value</th></tr>")
    body.append(_metrics_rows(metrics_snapshot))
    body.append("</table>")

    return _page(title, "".join(body))


def render_comparison(
    label_a: str,
    label_b: str,
    trace_diff: DiffResult,
    metrics_diff: dict,
    title: str,
) -> str:
    """Two-run comparison report around a :class:`DiffResult`."""
    body: List[str] = []
    identical = trace_diff.identical and metrics_diff.get("identical", False)
    verdict = (
        '<span class="ok">runs are structurally identical</span>'
        if identical
        else f'<span class="bad">{trace_diff.divergences} trace divergence(s), '
        f"{len(metrics_diff.get('changed', {}))} metric change(s)</span>"
    )
    body.append(f"<h2>Verdict</h2><p>{verdict}</p>")
    body.append("<table>")
    body.append(
        f"<tr><th></th><th>A: {_esc(label_a)}</th>"
        f"<th>B: {_esc(label_b)}</th></tr>"
        f'<tr><th>matched spans</th><td class="num" colspan="2">'
        f"{trace_diff.matched}</td></tr>"
        f'<tr><th>changed</th><td class="num" colspan="2">'
        f"{len(trace_diff.changed)}</td></tr>"
        f'<tr><th>only in A</th><td class="num" colspan="2">'
        f"{len(trace_diff.only_a)}</td></tr>"
        f'<tr><th>only in B</th><td class="num" colspan="2">'
        f"{len(trace_diff.only_b)}</td></tr>"
    )
    body.append("</table>")

    divergence = trace_diff.first_divergence
    if divergence is not None:
        body.append("<h2>First divergence</h2>")
        body.append(
            f"<p><code>{_esc(format_key(divergence.key))}</code> "
            f"({_esc(divergence.kind)}, side {_esc(divergence.side)}) at "
            f"t={divergence.record.t0:.4f}s</p>"
        )
        body.append('<ol class="chain">')
        for record in divergence.causal_chain:
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(record.attrs.items())
            )
            body.append(
                f"<li><code>{_esc(record.name)}</code> @ {record.t0:.4f}s "
                f"{_esc(attrs)}</li>"
            )
        body.append("</ol>")
        if divergence.other is not None:
            body.append(
                "<p>Counterpart in B: "
                f"<code>{_esc(divergence.other.name)}</code> @ "
                f"{divergence.other.t0:.4f}s</p>"
            )

    changed = metrics_diff.get("changed", {})
    only_a = metrics_diff.get("only_a", [])
    only_b = metrics_diff.get("only_b", [])
    if changed or only_a or only_b:
        body.append("<h2>Metric deltas</h2><table>")
        body.append("<tr><th>metric</th><th>A</th><th>B</th><th>delta</th></tr>")
        for name in sorted(changed):
            entry = changed[name]
            a = entry.get("a", entry.get("counts_a", ""))
            b = entry.get("b", entry.get("counts_b", ""))
            delta = entry.get("delta", entry.get("count_delta", ""))
            body.append(
                f"<tr><td><code>{_esc(name)}</code></td>"
                f'<td class="num">{_esc(_fmt(a))}</td>'
                f'<td class="num">{_esc(_fmt(b))}</td>'
                f'<td class="num">{_esc(_fmt(delta))}</td></tr>'
            )
        for name in only_a:
            body.append(
                f"<tr><td><code>{_esc(name)}</code></td>"
                f'<td class="num">present</td><td class="num">-</td><td></td></tr>'
            )
        for name in only_b:
            body.append(
                f"<tr><td><code>{_esc(name)}</code></td>"
                f'<td class="num">-</td><td class="num">present</td><td></td></tr>'
            )
        body.append("</table>")

    return _page(title, "".join(body))
