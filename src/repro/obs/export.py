"""Trace exporters: JSONL, Chrome ``trace_event``, and summary dicts.

Every exporter consumes the passive :class:`~repro.obs.record.SpanRecord`
list and emits output in the canonical ``(t0, sid)`` order, so a seeded
run exports byte-identically on every machine.

- :func:`to_jsonl` / :func:`from_jsonl` — one JSON object per line; the
  lossless interchange format (``from_jsonl(to_jsonl(r))`` round-trips),
  and what ``repro trace <exp> --json`` writes.
- :func:`to_chrome` — the Chrome ``trace_event`` format.  Load the file
  in ``about://tracing`` (or Perfetto) to browse the run; simulated
  seconds are mapped to microseconds so the UI's units stay readable.
- :func:`summary` — a plain dict of span counts per category plus the
  metrics snapshot, for quick programmatic assertions.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .metrics import MetricsRegistry
from .record import SpanRecord

__all__ = ["from_jsonl", "ordered", "summary", "to_chrome", "to_jsonl"]


def ordered(records: Sequence[SpanRecord]) -> List[SpanRecord]:
    """Canonical export order: start time, then span id (stable)."""
    return sorted(records, key=lambda r: (r.t0, r.sid))


def to_jsonl(records: Sequence[SpanRecord]) -> str:
    """One JSON object per line, in canonical order."""
    lines = [
        json.dumps(record.to_dict(), sort_keys=True) for record in ordered(records)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def from_jsonl(text: str) -> List[SpanRecord]:
    """Parse :func:`to_jsonl` output back into records."""
    return [
        SpanRecord.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def to_chrome(
    records: Sequence[SpanRecord], time_scale: float = 1e6
) -> dict:
    """Chrome ``trace_event`` JSON (object format, ``traceEvents`` list).

    Spans become complete (``ph="X"``) events, instants become thread-scoped
    instant (``ph="i"``) events.  Each distinct recording process gets its
    own thread id in first-appearance order, with ``thread_name`` metadata
    so the tracing UI shows process names instead of bare numbers.
    """
    tids: Dict[str, int] = {}
    events: List[dict] = []
    for record in ordered(records):
        track = record.proc or "(callbacks)"
        tid = tids.get(track)
        if tid is None:
            tid = len(tids)
            tids[track] = tid
        entry = {
            "name": record.name,
            "cat": record.cat,
            "pid": 0,
            "tid": tid,
            "ts": record.t0 * time_scale,
            "args": {
                "sid": record.sid,
                "parent": record.parent,
                **dict(sorted(record.attrs.items())),
            },
        }
        if record.kind == "span":
            entry["ph"] = "X"
            t1 = record.t1 if record.t1 is not None else record.t0
            entry["dur"] = (t1 - record.t0) * time_scale
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        events.append(entry)
    for track in sorted(tids, key=lambda name: tids[name]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summary(
    records: Sequence[SpanRecord],
    metrics: Optional[MetricsRegistry] = None,
) -> dict:
    """Plain-dict run overview: record counts, time range, metrics."""
    by_cat: Dict[str, int] = {}
    by_name: Dict[str, int] = {}
    for record in records:
        by_cat[record.cat] = by_cat.get(record.cat, 0) + 1
        by_name[record.name] = by_name.get(record.name, 0) + 1
    times = [record.t0 for record in records]
    times += [record.t1 for record in records if record.t1 is not None]
    return {
        "records": len(records),
        "spans": sum(1 for r in records if r.kind == "span"),
        "instants": sum(1 for r in records if r.kind == "instant"),
        "t_min": min(times) if times else None,
        "t_max": max(times) if times else None,
        "by_category": {k: by_cat[k] for k in sorted(by_cat)},
        "by_name": {k: by_name[k] for k in sorted(by_name)},
        "metrics": metrics.snapshot() if metrics is not None else {},
    }
