"""Observability CLI: trace, metrics, usage, diff, and report.

Runs a traced experiment and renders what the recorder captured::

    python -m repro.cli trace chaos              # human-readable timeline
    python -m repro.cli trace chaos --json       # JSONL span records
    python -m repro.cli trace chaos --chrome     # chrome://tracing JSON
    python -m repro.cli metrics fig6a            # metrics table
    python -m repro.cli metrics chaos --json     # metrics snapshot JSON
    python -m repro.cli metrics chaos --format csv   # deterministic CSV
    python -m repro.cli usage chaos              # where the resources went
    python -m repro.cli diff chaos chaos --seed-b 1  # first divergence
    python -m repro.cli diff a.jsonl b.jsonl     # diff two trace exports
    python -m repro.cli report chaos --out report.html
    python -m repro.cli report chaos --compare chaos --seed-b 1
    python -m repro.cli perf chaos              # kernel cost buckets
    python -m repro.cli perf chaos --flame      # collapsed-stack folded
    python -m repro.cli perf fig5 --json        # full profile summary
    python -m repro.cli dash fig5-sweep chaos recovery --out fleet.html

Everything printed is a pure function of ``(experiment, seed)``: traced
runs are byte-identical to untraced ones, and the trace itself is
deterministic (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .diff import diff_metrics, diff_traces, format_key
from .export import from_jsonl, ordered, summary, to_chrome, to_jsonl
from .query import adaptation_chains, dwell_times
from .record import TraceRecorder
from .usage import UsageAccountant

__all__ = ["obs_main", "TRACEABLE"]


def _run_chaos(seed: int, recorder=None, usage=None, profiler=None) -> None:
    from ..experiments.chaos import run_chaos

    run_chaos(seed=seed, recorder=recorder, usage=usage, profiler=profiler)


def _run_recovery(seed: int, recorder=None, usage=None, profiler=None) -> None:
    from ..experiments.recovery import run_recovery

    run_recovery(seed=seed, recorder=recorder, usage=usage, profiler=profiler)


def _run_crowd(seed: int, recorder=None, usage=None, profiler=None) -> None:
    from ..experiments.crowd import run_crowd

    run_crowd(seed=seed, recorder=recorder, usage=usage, profiler=profiler)


def _run_fig5(seed: int, recorder=None, usage=None, profiler=None) -> None:
    from ..experiments.fig5 import fig5_database

    fig5_database(seed=seed, recorder=recorder, usage=usage, profiler=profiler)


def _run_fig5sess(seed: int, recorder=None, usage=None, profiler=None) -> None:
    from ..experiments.fig5 import run_fig5_session

    run_fig5_session(seed=seed, recorder=recorder, usage=usage, profiler=profiler)


def _run_fig6a(seed: int, recorder=None, usage=None, profiler=None) -> None:
    from ..experiments.fig6 import fig6a_database

    fig6a_database(seed=seed, recorder=recorder, usage=usage, profiler=profiler)


def _run_fig6b(seed: int, recorder=None, usage=None, profiler=None) -> None:
    from ..experiments.fig6 import fig6b_database

    fig6b_database(seed=seed, recorder=recorder, usage=usage, profiler=profiler)


#: experiment name -> runner(seed, recorder=None, usage=None, profiler=None).
TRACEABLE: Dict[str, Callable] = {
    "chaos": _run_chaos,
    "recovery": _run_recovery,
    "crowd": _run_crowd,
    "fig5": _run_fig5,
    "fig5sess": _run_fig5sess,
    "fig6a": _run_fig6a,
    "fig6b": _run_fig6b,
}


def _record_line(record) -> str:
    if record.kind == "span" and record.t1 is not None:
        when = f"{record.t0:10.4f} +{record.duration:<8.4f}"
    else:
        when = f"{record.t0:10.4f}  {'':8s}"
    parent = f" <-#{record.parent}" if record.parent is not None else ""
    attrs = ""
    if record.attrs:
        attrs = " " + " ".join(
            f"{k}={v}" for k, v in sorted(record.attrs.items())
        )
    proc = f" [{record.proc}]" if record.proc else ""
    return f"{when} #{record.sid}{parent} {record.cat}/{record.name}{proc}{attrs}"


def _render_timeline(recorder: TraceRecorder, limit: Optional[int]) -> str:
    lines = []
    records = ordered(recorder.records)
    shown = records if limit is None else records[:limit]
    lines.append(f"== trace: {len(records)} records ==")
    for record in shown:
        lines.append(_record_line(record))
    if limit is not None and len(records) > limit:
        lines.append(f"... {len(records) - limit} more (use --limit 0 for all)")
    chains = adaptation_chains(recorder.records)
    lines.append(f"== adaptation chains: {len(chains)} ==")
    for chain_records in chains:
        steps = " -> ".join(
            f"{r.name}@{r.t0:.3f}" for r in chain_records if r.cat != "sim"
        )
        lines.append(f"  {steps}")
    dwell = dwell_times(recorder.records)
    if dwell:
        lines.append("== configuration dwell times ==")
        for label, total in dwell.items():
            lines.append(f"  {label}: {total:.3f}s")
    return "\n".join(lines)


def _render_metrics(recorder: TraceRecorder) -> str:
    lines = [f"== metrics: {len(recorder.metrics)} ==\n"]
    for name, payload in recorder.metrics.snapshot().items():
        kind = payload["kind"]
        if kind == "counter":
            lines.append(f"  {name:36s} counter   {payload['value']:g}")
        elif kind == "gauge":
            lines.append(
                f"  {name:36s} gauge     {payload['value']} "
                f"({payload['updates']} updates)"
            )
        elif kind == "histogram":
            lines.append(
                f"  {name:36s} histogram n={payload['count']} "
                f"mean={payload['mean']} min={payload['min']} "
                f"max={payload['max']}"
            )
            edges = payload["edges"]
            labels = [f"<={e:g}" for e in edges] + [f">{edges[-1]:g}"]
            buckets = " ".join(
                f"{label}:{count}"
                for label, count in zip(labels, payload["counts"])
            )
            lines.append(f"  {'':36s}           {buckets}")
        else:
            lines.append(
                f"  {name:36s} series    {len(payload['samples'])} samples"
            )
    return "\n".join(lines)


def _metrics_csv(snapshot: dict) -> str:
    """Long-format CSV with a fixed, deterministic column and row order.

    Columns are always ``name,kind,field,t,value``; rows are ordered by
    metric name (sorted), then by a fixed per-kind field order, then by
    sample index — so two identical snapshots produce identical bytes.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["name", "kind", "field", "t", "value"])
    for name in sorted(snapshot):
        payload = snapshot[name]
        kind = payload["kind"]
        if kind == "counter":
            writer.writerow([name, kind, "value", "", payload["value"]])
        elif kind == "gauge":
            writer.writerow([name, kind, "value", "", payload["value"]])
            writer.writerow([name, kind, "updates", "", payload["updates"]])
        elif kind == "histogram":
            for field in ("count", "total", "min", "max", "mean"):
                writer.writerow([name, kind, field, "", payload[field]])
            edges = payload["edges"]
            labels = [f"le_{e:g}" for e in edges] + ["overflow"]
            for label, count in zip(labels, payload["counts"]):
                writer.writerow([name, kind, label, "", count])
        else:  # series
            for t, value in payload["samples"]:
                writer.writerow([name, kind, "sample", repr(t), value])
    return buf.getvalue().rstrip("\n")


def _render_usage(usage: UsageAccountant) -> str:
    s = usage.summary()
    lines = [
        f"== usage account: {len(s['resources'])} resources, "
        f"{len(s['memory'])} memories, {s['elapsed']:.3f}s =="
    ]
    for name, res in s["resources"].items():
        lines.append(
            f"  {name:24s} {res['kind']:5s} util={100 * res['utilization']:6.2f}%  "
            f"served={res['served']:.6g}  capacity={res['capacity']:.6g}"
        )
        for owner, amount in res["by_owner"].items():
            lines.append(f"    {'by process':22s} {owner}: {amount:.6g}")
        for config, amount in res["by_config"].items():
            lines.append(f"    {'by configuration':22s} {config}: {amount:.6g}")
    for name, mem in s["memory"].items():
        lines.append(
            f"  {name:24s} mem   faults={mem['faults']}  "
            f"peak_resident={mem['peak_resident_pages']}/{mem['total_pages']}"
        )
        for config, faults in mem["faults_by_config"].items():
            lines.append(f"    {'faults by config':22s} {config}: {faults}")
    if s["config_marks"]:
        lines.append("  -- configuration attribution marks --")
        for t, label in s["config_marks"]:
            lines.append(f"    t={t:10.4f}  {label}")
    return "\n".join(lines)


def _render_perf(profiler, experiment: str, seed: int) -> str:
    s = profiler.summary()
    sim, wall = s["sim"], s["wall"]
    lines = [
        f"== kernel profile: {experiment} (seed {seed}) ==",
        f"  steps={sim['steps']}  pushes={sim['pushes']}  "
        f"max_heap={sim['max_heap']}",
        f"  sampling: {sim['sampling']['mode']} "
        f"({sim['sampling']['sampled_steps']}/{sim['steps']} steps observed)",
        "  event mix: " + "  ".join(
            f"{kind}:{n}" for kind, n in sim["event_mix"].items()
        ),
        f"  tie windows: {sim['ties']['windows']} "
        f"({sim['ties']['tied_events']} tied events, "
        f"max window {sim['ties']['max_window']})",
    ]
    fluid = sim["fluid"]
    if fluid["shares"]:
        lines.append(
            f"  fluid: {fluid['updates']} updates, "
            f"{fluid['reschedules']} reschedules, "
            f"fan-out sum {fluid['fanout_sum']} "
            f"(max {fluid['fanout_max']} flows/update)"
        )
        for name, entry in fluid["shares"].items():
            mutations = "  ".join(
                f"{kind}:{entry[kind]}"
                for kind in ("submit", "cancel", "set_speed", "set_weight", "set_cap")
                if entry[kind]
            )
            lines.append(f"    {name}: {mutations or 'no mutations'}")
    lines.append(
        f"  wall: {wall['total_s']:.4f}s attributed over "
        f"{len(wall['buckets'])} buckets "
        f"(coverage {100 * wall['coverage']:.1f}%)"
    )
    ranked = sorted(
        wall["buckets"].items(), key=lambda kv: (-kv[1]["seconds"], kv[0])
    )
    for name, bucket in ranked[:20]:
        lines.append(
            f"    {100 * bucket['share']:5.1f}%  {bucket['seconds']:9.6f}s  "
            f"x{bucket['count']:<7d} {name}"
        )
    if len(ranked) > 20:
        lines.append(f"    ... {len(ranked) - 20} more buckets (use --json)")
    return "\n".join(lines)


def _render_diff(result, metrics_delta: Optional[dict]) -> str:
    lines = []
    if result.identical and (metrics_delta is None or metrics_delta["identical"]):
        lines.append(
            f"== traces are structurally identical "
            f"({result.matched} spans matched) =="
        )
    else:
        lines.append(
            f"== {result.divergences} divergence(s): "
            f"{result.matched} matched, {len(result.changed)} changed, "
            f"{len(result.only_a)} only-in-A, {len(result.only_b)} only-in-B =="
        )
    divergence = result.first_divergence
    if divergence is not None:
        lines.append(
            f"first divergence ({divergence.kind}, side {divergence.side}) "
            f"at t={divergence.record.t0:.4f}:"
        )
        lines.append(f"  key: {format_key(divergence.key)}")
        lines.append("  causal chain (root first):")
        for record in divergence.causal_chain:
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(record.attrs.items())
            )
            lines.append(f"    {record.name}@{record.t0:.4f} {attrs}".rstrip())
        if divergence.other is not None:
            lines.append(
                f"  counterpart in B: {divergence.other.name}"
                f"@{divergence.other.t0:.4f}"
            )
    if metrics_delta is not None and not metrics_delta["identical"]:
        lines.append(
            f"metric deltas: {len(metrics_delta['changed'])} changed, "
            f"{len(metrics_delta['only_a'])} only-in-A, "
            f"{len(metrics_delta['only_b'])} only-in-B"
        )
        for name, entry in metrics_delta["changed"].items():
            if "delta" in entry and entry["delta"] is not None:
                lines.append(
                    f"  {name}: {entry['a']} -> {entry['b']} "
                    f"(delta {entry['delta']:+g})"
                )
            else:
                lines.append(f"  {name}: changed ({entry['kind']})")
    return "\n".join(lines)


def _write_or_print(text: str, out: Optional[Path]) -> None:
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + ("" if text.endswith("\n") else "\n"))
        print(f"wrote {out}")
    else:
        print(text)


def _traced_run(experiment: str, seed: int, with_usage: bool, profiler=None):
    """Run one experiment traced (and optionally usage-accounted)."""
    recorder = TraceRecorder()
    usage = None
    if with_usage:
        # Share the recorder's registry so usage.* series appear in the
        # metrics snapshot (and therefore in reports and CSV exports).
        usage = UsageAccountant(metrics=recorder.metrics)
    TRACEABLE[experiment](seed, recorder=recorder, usage=usage, profiler=profiler)
    return recorder, usage


def _load_side(source: str, seed: int):
    """A diff operand: a trace-JSONL path, or an experiment to run."""
    path = Path(source)
    if source.endswith(".jsonl") or path.is_file():
        records = from_jsonl(path.read_text())
        return f"{source}", records, None
    if source not in TRACEABLE:
        raise SystemExit(
            f"repro diff: {source!r} is neither a trace .jsonl file nor an "
            f"experiment ({', '.join(sorted(TRACEABLE))})"
        )
    recorder, _ = _traced_run(source, seed, with_usage=False)
    return f"{source}@seed={seed}", recorder.records, recorder.metrics.snapshot()


#: Scenarios ``repro dash`` can run traced *with a payload* (the figure
#: experiments that return ``(figure, payload)`` and accept instrumentation).
_DASH_RUNNERS: Dict[str, str] = {
    "fig5sess": "repro.experiments.fig5:run_fig5_session",
    "chaos": "repro.experiments.chaos:run_chaos",
    "recovery": "repro.experiments.recovery:run_recovery",
    "crowd": "repro.experiments.crowd:run_crowd",
}

#: The built-in ``fig5-sweep`` source: a 2x2 (cpu share x fovea size)
#: grid of Experiment-3 profiling cells run through the exec engine.
_FIG5_SWEEP_SHARES = (0.4, 0.9)
_FIG5_SWEEP_FOVEAS = (80, 160)


def _dash_traced_cell(source: str, seed: int):
    from importlib import import_module

    from .dash import dashboard_cell_from_run

    module_name, _, attr = _DASH_RUNNERS[source].partition(":")
    runner = getattr(import_module(module_name), attr)
    recorder = TraceRecorder()
    usage = UsageAccountant(metrics=recorder.metrics)
    _fig, payload = runner(seed=seed, recorder=recorder, usage=usage)
    return dashboard_cell_from_run(
        f"{source}@seed={seed}", recorder, usage=usage, payload=payload,
        group=source, seed=seed,
    )


def _fig5_sweep_cells(seed: int, cache: Path, jobs: int) -> List[dict]:
    """The 2x2 fig5 sweep as result-store cells (cache-backed, parallel)."""
    from ..exec import AppSpec, JobSpec, ResultStore, SweepEngine
    from ..exec.profile_jobs import app_spec_payload
    from ..experiments.fig5 import EXP3_BW
    from .dash import dashboard_cell

    app_spec = AppSpec(
        "repro.apps.visualization:make_viz_app",
        workload="repro.experiments.fig5:exp3_workload",
        workload_kwargs={"n_images": 2},
    )
    labels, specs = [], []
    for share in _FIG5_SWEEP_SHARES:
        for fovea in _FIG5_SWEEP_FOVEAS:
            payload = app_spec_payload(
                app_spec,
                config={"dR": fovea, "c": "lzw", "l": 4},
                point={"client.cpu": share, "client.network": EXP3_BW},
                mode="ideal",
                max_run_time=3600.0,
            )
            payload["with_usage"] = True
            labels.append(f"fig5 dR={fovea} cpu={share:g} seed={seed}")
            specs.append(
                JobSpec(
                    kind="repro.exec.profile_jobs:measure_cell",
                    payload=payload, seed=seed,
                    key=f"cpu={share:g}/dR={fovea}",
                )
            )
    engine = SweepEngine(jobs=jobs, store=ResultStore(cache))
    report = engine.run(specs)
    return [
        dashboard_cell(
            label, group="fig5-sweep",
            payload=report.value(spec.key),
            usage=next(
                (r.usage for r in report.outcomes if r.key == spec.key), None
            ),
            seed=seed,
        )
        for label, spec in zip(labels, specs)
    ]


def _dash_main(argv: List[str]) -> int:
    """Entry point for ``repro dash <sources...>`` (multi-run dashboard)."""
    from .dash import load_store_cells, render_dashboard

    parser = argparse.ArgumentParser(
        prog="repro dash",
        description="Aggregate N runs/cells into one fleet-dashboard HTML page.",
    )
    parser.add_argument(
        "sources", nargs="+",
        help="traced experiments (%s), 'fig5-sweep' (2x2 grid via the exec "
        "engine), or repro.exec result-store directories"
        % ", ".join(sorted(_DASH_RUNNERS)),
    )
    parser.add_argument("--seed", type=int, default=0, help="seed for every run")
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the fig5-sweep source",
    )
    parser.add_argument(
        "--cache", type=Path, default=Path(".repro_cache/dash"),
        help="result-store directory backing the fig5-sweep source",
    )
    parser.add_argument("--title", default=None, help="page title")
    parser.add_argument(
        "--out", type=Path, default=Path("fleet_dashboard.html"),
        help="output HTML file",
    )
    args = parser.parse_args(argv)

    cells: List[dict] = []
    for source in args.sources:
        if source in _DASH_RUNNERS:
            cells.append(_dash_traced_cell(source, args.seed))
        elif source == "fig5-sweep":
            cells.extend(_fig5_sweep_cells(args.seed, args.cache, args.jobs))
        elif Path(source).is_dir():
            store_cells = load_store_cells(source)
            if not store_cells:
                raise SystemExit(
                    f"repro dash: no result-store entries under {source!r}"
                )
            cells.extend(store_cells)
        else:
            raise SystemExit(
                f"repro dash: {source!r} is neither a runnable scenario "
                f"({', '.join(sorted(_DASH_RUNNERS))}), 'fig5-sweep', nor a "
                "result-store directory"
            )
    title = args.title or (
        f"repro fleet dashboard: {', '.join(args.sources)} (seed {args.seed})"
    )
    _write_or_print(render_dashboard(cells, title=title), args.out)
    return 0


def obs_main(argv: List[str]) -> int:
    """Entry point for ``repro trace|metrics|usage|diff|report|dash ...``."""
    mode = argv[0]  # vetted by the dispatcher
    if mode == "dash":
        return _dash_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog=f"repro {mode}",
        description="Run an experiment with tracing and render the result.",
    )
    if mode == "diff":
        parser.add_argument(
            "a", help="experiment name or trace .jsonl file (run A)"
        )
        parser.add_argument(
            "b", help="experiment name or trace .jsonl file (run B)"
        )
        parser.add_argument(
            "--seed", type=int, default=0, help="seed for run A (and B unless --seed-b)"
        )
        parser.add_argument(
            "--seed-b", type=int, default=None, help="seed for run B"
        )
    else:
        parser.add_argument(
            "experiment", choices=sorted(TRACEABLE), help="experiment to run"
        )
        parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON instead of the human rendering",
    )
    if mode == "trace":
        parser.add_argument(
            "--chrome", action="store_true",
            help="chrome://tracing / Perfetto trace_event JSON",
        )
        parser.add_argument(
            "--limit", type=int, default=40,
            help="max timeline rows in human output (0 = all)",
        )
    if mode == "metrics":
        parser.add_argument(
            "--format", choices=("table", "csv", "json"), default="table",
            help="output format (csv columns/rows are deterministic)",
        )
    if mode == "usage":
        parser.add_argument(
            "--resolution", type=float, default=1.0,
            help="virtual-time resolution of the utilization series",
        )
    if mode == "report":
        parser.add_argument(
            "--compare", default=None, metavar="B",
            help="second experiment (or trace .jsonl) for a comparison report",
        )
        parser.add_argument(
            "--seed-b", type=int, default=None,
            help="seed for the comparison run (defaults to --seed)",
        )
        parser.add_argument(
            "--perf", action="store_true",
            help="attach a kernel profiler and add a perf section",
        )
    if mode == "perf":
        parser.add_argument(
            "--flame", action="store_true",
            help="collapsed-stack folded output for flamegraph tools",
        )
        parser.add_argument(
            "--chrome", action="store_true",
            help="chrome://tracing flame-chart JSON of the cost buckets",
        )
    parser.add_argument(
        "--out", type=Path, default=None, help="write to file instead of stdout"
    )
    args = parser.parse_args(argv[1:])

    if mode == "diff":
        seed_b = args.seed if args.seed_b is None else args.seed_b
        label_a, records_a, snap_a = _load_side(args.a, args.seed)
        label_b, records_b, snap_b = _load_side(args.b, seed_b)
        result = diff_traces(records_a, records_b)
        metrics_delta = (
            diff_metrics(snap_a, snap_b)
            if snap_a is not None and snap_b is not None
            else None
        )
        if args.json:
            payload = {"a": label_a, "b": label_b, **result.to_dict()}
            if metrics_delta is not None:
                payload["metrics"] = metrics_delta
            text = json.dumps(payload, indent=1, sort_keys=True)
        else:
            text = f"A: {label_a}\nB: {label_b}\n" + _render_diff(
                result, metrics_delta
            )
        _write_or_print(text, args.out)
        identical = result.identical and (
            metrics_delta is None or metrics_delta["identical"]
        )
        return 0 if identical else 1

    if mode == "usage":
        recorder = TraceRecorder()
        usage = UsageAccountant(
            metrics=recorder.metrics, resolution=args.resolution
        )
        TRACEABLE[args.experiment](args.seed, recorder=recorder, usage=usage)
        if args.json:
            payload = {
                "experiment": args.experiment,
                "seed": args.seed,
                "usage": usage.summary(),
            }
            text = json.dumps(payload, indent=1, sort_keys=True)
        else:
            text = _render_usage(usage)
        _write_or_print(text, args.out)
        return 0

    if mode == "perf":
        from .perf import KernelProfiler, to_chrome_profile, to_folded

        # Full fidelity (every step observed): a one-off profile capture
        # wants exact attribution and census, not low overhead.
        profiler = KernelProfiler(full=True)
        TRACEABLE[args.experiment](args.seed, profiler=profiler)
        if args.flame:
            text = to_folded(profiler)
        elif args.chrome:
            text = json.dumps(to_chrome_profile(profiler), sort_keys=True)
        elif args.json:
            payload = {
                "experiment": args.experiment,
                "seed": args.seed,
                "perf": profiler.summary(),
            }
            text = json.dumps(payload, indent=1, sort_keys=True)
        else:
            text = _render_perf(profiler, args.experiment, args.seed)
        _write_or_print(text, args.out)
        return 0

    if mode == "report":
        from .report import render_comparison, render_report

        profiler = None
        if args.perf and args.compare is None:
            from .perf import KernelProfiler

            profiler = KernelProfiler(full=True)
        recorder, usage = _traced_run(
            args.experiment, args.seed, with_usage=True, profiler=profiler
        )
        if args.compare is None:
            text = render_report(
                recorder.records,
                recorder.metrics.snapshot(),
                title=f"repro report: {args.experiment} (seed {args.seed})",
                usage_summary=usage.summary(),
                perf_summary=(
                    profiler.summary() if profiler is not None else None
                ),
            )
        else:
            seed_b = args.seed if args.seed_b is None else args.seed_b
            label_b, records_b, snap_b = _load_side(args.compare, seed_b)
            result = diff_traces(recorder.records, records_b)
            metrics_delta = diff_metrics(
                recorder.metrics.snapshot(), snap_b if snap_b is not None else {}
            ) if snap_b is not None else {"identical": result.identical,
                                          "only_a": [], "only_b": [],
                                          "changed": {}}
            text = render_comparison(
                f"{args.experiment}@seed={args.seed}",
                label_b,
                result,
                metrics_delta,
                title=f"repro report: {args.experiment} vs {args.compare}",
            )
        out = args.out
        if out is None:
            out = Path(f"report_{args.experiment}.html")
        _write_or_print(text, out)
        return 0

    recorder = TraceRecorder()
    TRACEABLE[args.experiment](args.seed, recorder=recorder)

    if mode == "metrics":
        fmt = args.format
        if args.json:
            fmt = "json"
        if fmt == "json":
            payload = {
                "experiment": args.experiment,
                "seed": args.seed,
                "metrics": recorder.metrics.snapshot(),
                "summary": summary(recorder.records),
            }
            text = json.dumps(payload, indent=1, sort_keys=True)
        elif fmt == "csv":
            text = _metrics_csv(recorder.metrics.snapshot())
        else:
            text = _render_metrics(recorder)
    elif args.chrome:
        text = json.dumps(to_chrome(recorder.records), sort_keys=True)
    elif args.json:
        text = to_jsonl(recorder.records)
    else:
        text = _render_timeline(
            recorder, None if args.limit == 0 else args.limit
        )
    _write_or_print(text, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli
    sys.exit(obs_main(sys.argv[1:]))
