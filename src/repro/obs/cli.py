"""Observability CLI: ``repro trace`` and ``repro metrics``.

Runs a traced experiment and renders what the recorder captured::

    python -m repro.cli trace chaos              # human-readable timeline
    python -m repro.cli trace chaos --json       # JSONL span records
    python -m repro.cli trace chaos --chrome     # chrome://tracing JSON
    python -m repro.cli metrics fig6a            # metrics table
    python -m repro.cli metrics chaos --json     # metrics snapshot JSON

Everything printed is a pure function of ``(experiment, seed)``: traced
runs are byte-identical to untraced ones, and the trace itself is
deterministic (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .export import ordered, summary, to_chrome, to_jsonl
from .query import adaptation_chains, dwell_times
from .record import TraceRecorder

__all__ = ["obs_main", "TRACEABLE"]


def _run_chaos(seed: int, recorder: TraceRecorder) -> None:
    from ..experiments.chaos import run_chaos

    run_chaos(seed=seed, recorder=recorder)


def _run_fig5(seed: int, recorder: TraceRecorder) -> None:
    from ..experiments.fig5 import fig5_database

    fig5_database(seed=seed, recorder=recorder)


def _run_fig6a(seed: int, recorder: TraceRecorder) -> None:
    from ..experiments.fig6 import fig6a_database

    fig6a_database(seed=seed, recorder=recorder)


def _run_fig6b(seed: int, recorder: TraceRecorder) -> None:
    from ..experiments.fig6 import fig6b_database

    fig6b_database(seed=seed, recorder=recorder)


#: experiment name -> runner(seed, recorder).
TRACEABLE: Dict[str, Callable[[int, TraceRecorder], None]] = {
    "chaos": _run_chaos,
    "fig5": _run_fig5,
    "fig6a": _run_fig6a,
    "fig6b": _run_fig6b,
}


def _record_line(record) -> str:
    if record.kind == "span" and record.t1 is not None:
        when = f"{record.t0:10.4f} +{record.duration:<8.4f}"
    else:
        when = f"{record.t0:10.4f}  {'':8s}"
    parent = f" <-#{record.parent}" if record.parent is not None else ""
    attrs = ""
    if record.attrs:
        attrs = " " + " ".join(
            f"{k}={v}" for k, v in sorted(record.attrs.items())
        )
    proc = f" [{record.proc}]" if record.proc else ""
    return f"{when} #{record.sid}{parent} {record.cat}/{record.name}{proc}{attrs}"


def _render_timeline(recorder: TraceRecorder, limit: Optional[int]) -> str:
    lines = []
    records = ordered(recorder.records)
    shown = records if limit is None else records[:limit]
    lines.append(f"== trace: {len(records)} records ==")
    for record in shown:
        lines.append(_record_line(record))
    if limit is not None and len(records) > limit:
        lines.append(f"... {len(records) - limit} more (use --limit 0 for all)")
    chains = adaptation_chains(recorder.records)
    lines.append(f"== adaptation chains: {len(chains)} ==")
    for chain_records in chains:
        steps = " -> ".join(
            f"{r.name}@{r.t0:.3f}" for r in chain_records if r.cat != "sim"
        )
        lines.append(f"  {steps}")
    dwell = dwell_times(recorder.records)
    if dwell:
        lines.append("== configuration dwell times ==")
        for label, total in dwell.items():
            lines.append(f"  {label}: {total:.3f}s")
    return "\n".join(lines)


def _render_metrics(recorder: TraceRecorder) -> str:
    lines = [f"== metrics: {len(recorder.metrics)} ==\n"]
    for name, payload in recorder.metrics.snapshot().items():
        kind = payload["kind"]
        if kind == "counter":
            lines.append(f"  {name:36s} counter   {payload['value']:g}")
        elif kind == "gauge":
            lines.append(
                f"  {name:36s} gauge     {payload['value']} "
                f"({payload['updates']} updates)"
            )
        elif kind == "histogram":
            lines.append(
                f"  {name:36s} histogram n={payload['count']} "
                f"mean={payload['mean']} min={payload['min']} "
                f"max={payload['max']}"
            )
            edges = payload["edges"]
            labels = [f"<={e:g}" for e in edges] + [f">{edges[-1]:g}"]
            buckets = " ".join(
                f"{label}:{count}"
                for label, count in zip(labels, payload["counts"])
            )
            lines.append(f"  {'':36s}           {buckets}")
        else:
            lines.append(
                f"  {name:36s} series    {len(payload['samples'])} samples"
            )
    return "\n".join(lines)


def _write_or_print(text: str, out: Optional[Path]) -> None:
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + ("" if text.endswith("\n") else "\n"))
        print(f"wrote {out}")
    else:
        print(text)


def obs_main(argv: List[str]) -> int:
    """Entry point for ``repro trace ...`` / ``repro metrics ...``."""
    mode = argv[0]  # "trace" | "metrics", vetted by the dispatcher
    parser = argparse.ArgumentParser(
        prog=f"repro {mode}",
        description="Run an experiment with tracing and render the result.",
    )
    parser.add_argument(
        "experiment", choices=sorted(TRACEABLE), help="experiment to trace"
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--json", action="store_true",
        help="JSONL span records (trace) / snapshot JSON (metrics)",
    )
    if mode == "trace":
        parser.add_argument(
            "--chrome", action="store_true",
            help="chrome://tracing / Perfetto trace_event JSON",
        )
        parser.add_argument(
            "--limit", type=int, default=40,
            help="max timeline rows in human output (0 = all)",
        )
    parser.add_argument(
        "--out", type=Path, default=None, help="write to file instead of stdout"
    )
    args = parser.parse_args(argv[1:])

    recorder = TraceRecorder()
    TRACEABLE[args.experiment](args.seed, recorder)

    if mode == "metrics":
        if args.json:
            payload = {
                "experiment": args.experiment,
                "seed": args.seed,
                "metrics": recorder.metrics.snapshot(),
                "summary": summary(recorder.records),
            }
            text = json.dumps(payload, indent=1, sort_keys=True)
        else:
            text = _render_metrics(recorder)
    elif args.chrome:
        text = json.dumps(to_chrome(recorder.records), sort_keys=True)
    elif args.json:
        text = to_jsonl(recorder.records)
    else:
        text = _render_timeline(
            recorder, None if args.limit == 0 else args.limit
        )
    _write_or_print(text, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli
    sys.exit(obs_main(sys.argv[1:]))
