"""Interactive inspection context: build, step, inspect, intervene.

A vivarium-style REPL/notebook workflow for the adaptation loop.  An
:class:`InteractiveContext` constructs any registered scenario through
its ``build_<name>()`` split (see :mod:`repro.experiments.scene`), then
hands the simulator to the user one event — or one virtual second — at
a time::

    from repro.obs import InteractiveContext

    ctx = InteractiveContext("fig5", seed=0)
    ctx.run_until(21.0)                       # just after the CPU drop
    ctx.inspect.monitor()["estimates"]        # what the monitor believes
    ctx.run_until(lambda c: c.switches())     # wait for the re-selection
    ctx.inspect.controller()["phase"]
    ctx.inject({"events": [{"kind": "crash", "host": "server",
                            "at": 40.0, "until": 45.0}]})
    fig, payload = ctx.finish()

Three guarantees, all regression-tested:

- **Passivity** — every inspector is read-only: FluidShare state is read
  through the passive :meth:`~repro.sim.FluidShare.peek` projection,
  never ``sync``/``snapshot`` (which re-arm completion timers), and
  nothing an inspector touches schedules events, draws randomness, or
  advances lazy accumulators.  A run driven through ``step()``/
  ``run_until()`` with inspectors read at every pause is byte-identical
  to the uninterrupted run.  The OBS104 lint rule enforces the no-mutate
  discipline statically.
- **Determinism of interventions** — ``inject``/``force_config``/
  ``perturb`` are recorded (virtual time + event ordinal + arguments)
  into a JSON-able script; :func:`replay` re-applies the script at the
  exact same event boundaries, reproducing the intervened run
  bit-for-bit.
- **Finalization fidelity** — ``finish()`` runs the scenario to its
  horizon and produces the same figure/payload the monolithic
  ``run_<name>()`` entry point returns.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .record import TraceRecorder
from .usage import UsageAccountant

__all__ = [
    "InteractiveContext",
    "ScenarioInspector",
    "SCENARIOS",
    "register_scenario",
    "replay",
]

#: Scenario name -> dotted ``module:callable`` returning a Scene.  The
#: sweep-style figures (fig3/fig4/fig6/fig7 grids) are *not* steppable —
#: they run many independent testbeds through the exec engine; drive
#: those through ``repro dash`` / ``repro sweep`` instead.
SCENARIOS: Dict[str, str] = {
    "fig5": "repro.experiments.fig5:build_fig5_session",
    "chaos": "repro.experiments.chaos:build_chaos",
    "recovery": "repro.experiments.recovery:build_recovery",
    "crowd": "repro.experiments.crowd:build_crowd",
}


def register_scenario(name: str, builder: str) -> None:
    """Register a ``module:callable`` Scene builder under ``name``."""
    if ":" not in builder:
        raise ValueError(f"builder must be 'module:callable', got {builder!r}")
    SCENARIOS[name] = builder


def _resolve(ref: str) -> Callable:
    import importlib

    module_name, _, attr = ref.partition(":")
    return getattr(importlib.import_module(module_name), attr)


class ScenarioInspector:
    """Read-only views of a live scenario's internal state.

    Every accessor is passive: plain attribute reads, passive fluid
    projections (:meth:`FluidShare.peek`), and pure summaries.  None of
    them may call mutating kernel/runtime APIs (``set_speed``, ``send``,
    ``succeed``, ``schedule_callback``, ``sync``, ``select`` ...) — the
    OBS104 lint rule checks this class statically, and the interactive
    byte-identity tests check it dynamically.
    """

    def __init__(self, scene):
        self._scene = scene

    # -- kernel-level state -------------------------------------------------
    def queues(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Mailbox depths and waiter counts per host/port."""
        out: Dict[str, Dict[str, Dict[str, int]]] = {}
        testbed = self._scene.testbed
        for host_name in sorted(testbed.hosts):
            host = testbed.hosts[host_name]
            ports = {}
            for port in sorted(host._mailboxes):
                box = host._mailboxes[port]
                ports[port] = {
                    "depth": len(box.items),
                    "getters": len(box._get_waiters),
                    "putters": len(box._put_waiters),
                }
            out[host_name] = ports
        return out

    def shares(self) -> Dict[str, dict]:
        """Passive projections of every CPU and link FluidShare."""
        out: Dict[str, dict] = {}
        testbed = self._scene.testbed
        for host_name in sorted(testbed.hosts):
            out[f"cpu.{host_name}"] = testbed.hosts[host_name].cpu.share.peek()
        for link in testbed.network.links():
            entry = link.share.peek()
            entry["up"] = link.up
            entry["latency"] = link.latency
            out[f"link.{link.name}"] = entry
        return out

    def usage(self) -> Optional[dict]:
        """Utilization account so far (``UsageAccountant.summary()``)."""
        accountant = self._scene.usage
        if accountant is None:
            return None
        return accountant.summary()

    # -- runtime / adaptation state -----------------------------------------
    def monitor(self) -> Optional[dict]:
        """The controller-side monitoring agent's current beliefs."""
        controller = self._scene.controller
        if controller is None:
            return None
        agent = controller.monitor
        return {
            "watch": list(agent.watch),
            "estimates": dict(agent.estimates()),
            "conditions": {
                name: [lo, hi]
                for name, (lo, hi) in sorted(agent.conditions.items())
            },
            "violations": agent.violations,
        }

    def exchange(self) -> Dict[str, dict]:
        """Both estimate-exchange endpoints: peers, freshness, TTL state."""
        out: Dict[str, dict] = {}
        for label in ("client", "server"):
            ex = getattr(self._scene, f"{label}_exchange")
            if ex is None:
                continue
            out[label] = {
                "peers": list(ex.peers),
                "stale_after": ex.stale_after,
                "remote_estimates": {
                    peer: [value, at]
                    for peer, (value, at) in sorted(ex.remote_estimates.items())
                },
                "peer_last_seen": dict(sorted(ex.peer_last_seen.items())),
                "updates_received": ex.updates_received,
                "expired": ex.expired,
            }
        return out

    def controller(self) -> Optional[dict]:
        """Adaptation-controller phase, decision, and candidate set."""
        ctl = self._scene.controller
        if ctl is None:
            return None
        if ctl._reconfiguring:
            phase = "reconfiguring"
        elif ctl._settling:
            phase = "settling"
        elif ctl._pinned:
            phase = "pinned"
        else:
            phase = "steady"
        decision = ctl.current_decision
        rt = self._scene.rt
        return {
            "phase": phase,
            "pinned": ctl._pinned,
            "inflight": ctl._inflight is not None,
            "current_config": (
                rt.controls.current.label() if rt is not None else None
            ),
            "decision": (
                None
                if decision is None
                else {
                    "config": decision.config.label(),
                    "constraint_index": decision.constraint_index,
                    "conditions": {
                        name: [lo, hi]
                        for name, (lo, hi) in sorted(decision.conditions.items())
                    },
                }
            ),
            "candidates": [c.label() for c in ctl.scheduler.candidates],
            "lost_peers": sorted(ctl.lost_peers),
            "events": [
                {
                    "t": e.time,
                    "kind": e.kind,
                    "config": e.config.label() if e.config is not None else None,
                }
                for e in ctl.events
            ],
            "switches": (
                [
                    {"t": t, "from": old.label(), "to": new.label()}
                    for t, old, new in rt.controls.history
                ]
                if rt is not None
                else []
            ),
        }

    # -- recovery / crowd state ---------------------------------------------
    def supervision(self) -> Optional[dict]:
        """Supervision-tree status (service states, restarts, availability).

        Uses the read-only ``Supervisor.summary`` path — never
        ``finalize``, which closes downtime intervals.
        """
        supervisor = self._scene.supervisor
        if supervisor is None:
            return None
        return supervisor.summary(self._scene.sim.now)

    def faults(self) -> Optional[dict]:
        """What the fault injector has applied so far."""
        injector = self._scene.injector
        if injector is None:
            return None
        return {
            "log": [dict(entry) for entry in injector.log],
            "dropped": injector.dropped,
            "delayed": injector.delayed,
            "duplicated": injector.duplicated,
            "rules": len(injector.rules),
        }

    def crowd(self) -> Optional[dict]:
        """Per-class crowd tallies (columnar state, pure read)."""
        source = self._scene.crowd
        if source is None:
            return None
        return {"classes": source.stats(), "totals": source.totals()}

    def overload(self) -> Optional[dict]:
        """Overload-guard admission totals and brownout windows."""
        guard = self._scene.guard
        if guard is None:
            return None
        out = dict(guard.totals())
        brownout = self._scene.brownout
        if brownout is not None:
            out["brownout_windows"] = [[t0, t1] for t0, t1 in brownout.windows]
        return out

    def snapshot(self) -> dict:
        """Everything above, as one JSON-able dict keyed by subsystem."""
        sections = {
            "queues": self.queues(),
            "shares": self.shares(),
            "usage": self.usage(),
            "monitor": self.monitor(),
            "exchange": self.exchange(),
            "controller": self.controller(),
            "supervision": self.supervision(),
            "faults": self.faults(),
            "crowd": self.crowd(),
            "overload": self.overload(),
        }
        return {
            "t": self._scene.sim.now,
            "scenario": self._scene.name,
            "seed": self._scene.seed,
            **{k: v for k, v in sections.items() if v is not None},
        }


class InteractiveContext:
    """Construct a scenario and drive it step-by-step with live inspection.

    Parameters
    ----------
    scenario:
        A name from :data:`SCENARIOS` (``fig5``/``chaos``/``recovery``/
        ``crowd``), or a Scene-builder callable.
    instrument:
        Attach a :class:`TraceRecorder` + :class:`UsageAccountant` (the
        same pairing ``repro trace``/``repro report`` use).  Both are
        strictly passive.
    kwargs:
        Forwarded to the scenario builder (``n_images``, ``until``,
        ``fault_spec``, ...).
    """

    def __init__(
        self,
        scenario: Union[str, Callable],
        /,
        seed: int = 0,
        instrument: bool = True,
        **kwargs: Any,
    ):
        if callable(scenario):
            builder = scenario
            self.scenario = getattr(scenario, "__name__", "custom")
        else:
            if scenario not in SCENARIOS:
                raise KeyError(
                    f"unknown scenario {scenario!r}; registered: "
                    f"{', '.join(sorted(SCENARIOS))}"
                )
            builder = _resolve(SCENARIOS[scenario])
            self.scenario = scenario
        self.recorder = TraceRecorder() if instrument else None
        self.usage = (
            UsageAccountant(metrics=self.recorder.metrics)
            if instrument
            else None
        )
        self.scene = builder(
            seed=seed, recorder=self.recorder, usage=self.usage, **kwargs
        )
        self.seed = seed
        self.inspect = ScenarioInspector(self.scene)
        #: Recorded intervention script (JSON-able; see :func:`replay`).
        self.interventions: List[dict] = []
        #: Events dispatched through this context so far (the replay
        #: anchor: an intervention is re-applied at the same ordinal).
        self.steps = 0
        self._stopped = False
        self.result: Optional[Tuple[Any, Dict]] = None

    # -- clock --------------------------------------------------------------
    @property
    def sim(self):
        return self.scene.sim

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def done(self) -> bool:
        """No more events to dispatch (or the scene was finalized)."""
        return self.result is not None or self._stopped or self.sim.is_idle()

    def _step_once(self) -> None:
        from ..sim import StopSimulation

        self.steps += 1
        try:
            self.sim.step()
        except StopSimulation:
            self._stopped = True

    def step(self, n: int = 1) -> float:
        """Dispatch up to ``n`` events; returns the new virtual time."""
        self._check_live()
        for _ in range(n):
            if self.done or self.sim.peek() > self.scene.until:
                break
            self._step_once()
        return self.now

    def run_until(
        self, target: Union[float, int, Callable[["InteractiveContext"], bool]]
    ) -> float:
        """Advance to a virtual time, or until a predicate turns true.

        A numeric target dispatches every event with ``time <= target``
        (clamped to the scenario horizon) — the same boundary
        ``Simulator.run(until=target)`` stops at, so segmented driving
        stays byte-identical to one uninterrupted run.  A callable is
        invoked as ``target(ctx)`` after construction and after every
        event; the run pauses as soon as it returns true.
        """
        self._check_live()
        if callable(target):
            while not target(self) and not self.done:
                if self.sim.peek() > self.scene.until:
                    break
                self._step_once()
            return self.now
        t = min(float(target), self.scene.until)
        while not self.done and self.sim.peek() <= t:
            self._step_once()
        return self.now

    def switches(self) -> List[dict]:
        """Convenience: configuration switches so far (for predicates)."""
        rt = self.scene.rt
        if rt is None:
            return []
        return [
            {"t": t, "from": old.label(), "to": new.label()}
            for t, old, new in rt.controls.history
        ]

    def finish(self) -> Tuple[Any, Dict]:
        """Run to the scenario horizon and finalize; returns (figure, payload).

        Idempotent — the result is cached, and the payload is identical
        to the monolithic ``run_<scenario>()`` entry point's.
        """
        if self.result is None:
            # Delegate the final leg to the kernel's run() so the clock
            # lands exactly on the horizon before teardown folds usage —
            # the same terminal state the monolithic run_<name>() leaves.
            if not self._stopped and self.scene.until >= self.sim.now:
                self.sim.run(until=self.scene.until)
            self.result = self.scene.finalize()
        return self.result

    def _check_live(self) -> None:
        if self.result is not None:
            raise RuntimeError(
                "scenario already finalized; build a new InteractiveContext"
            )

    # -- interventions ------------------------------------------------------
    def _record_intervention(self, kind: str, args: dict) -> None:
        entry = {"t": self.now, "steps": self.steps, "kind": kind, "args": args}
        self.interventions.append(entry)
        obs = self.sim.obs
        if obs is not None:
            obs.instant(
                f"interactive.{kind}", cat="interactive", steps=self.steps,
                **{k: json.dumps(v, sort_keys=True) for k, v in sorted(args.items())},
            )

    def inject(self, fault_spec: dict) -> None:
        """Inject a :class:`FaultPlan` fragment from here on.

        Absolute ``at`` times in the spec are honored (events already in
        the past fire immediately); per-message rules join the live
        delivery gate.  Creates an injector on demand for fault-free
        scenarios.
        """
        from ..faults import FaultInjector, FaultPlan

        self._check_live()
        plan = FaultPlan.from_spec(fault_spec)
        if self.scene.injector is None:
            self.scene.injector = FaultInjector(
                self.scene.testbed.network, seed=self.scene.seed
            ).install(plan)
        else:
            self.scene.injector.inject(plan)
        self._record_intervention("inject", {"fault_spec": plan.to_spec()})

    def force_config(
        self, config: Union[dict, Any], reason: str = "interactive-pin"
    ) -> None:
        """Pin a configuration, bypassing the scheduler (brownout-style)."""
        from ..tunable import Configuration

        self._check_live()
        if not isinstance(config, Configuration):
            config = Configuration(dict(config))
        self.scene.controller.force_config(config, reason=reason)
        self._record_intervention(
            "force_config",
            {"config": {k: v for k, v in sorted(dict(config).items())},
             "reason": reason},
        )

    def resume_normal(self, reason: str = "interactive-unpin") -> None:
        """Lift a forced-config pin and re-enter normal adaptation."""
        self._check_live()
        self.scene.controller.resume_normal(reason=reason)
        self._record_intervention("resume_normal", {"reason": reason})

    def perturb(self, host: str, **limits: Any) -> None:
        """Perturb a host's resource trace (``cpu_share=``, ``net_bw=`` ...)."""
        from ..sandbox import ResourceLimits

        self._check_live()
        self.scene.rt.sandboxes[host].set_limits(ResourceLimits(**limits))
        self._record_intervention(
            "perturb", {"host": host, **{k: limits[k] for k in sorted(limits)}}
        )

    _APPLY = {"inject", "force_config", "resume_normal", "perturb"}

    def apply(self, entry: dict) -> None:
        """Apply one recorded intervention entry (replay primitive)."""
        kind = entry["kind"]
        if kind not in self._APPLY:
            raise ValueError(f"unknown intervention kind {kind!r}")
        args = dict(entry["args"])
        if kind == "inject":
            self.inject(args["fault_spec"])
        elif kind == "force_config":
            self.force_config(args["config"], reason=args.get("reason", "interactive-pin"))
        elif kind == "resume_normal":
            self.resume_normal(reason=args.get("reason", "interactive-unpin"))
        else:
            host = args.pop("host")
            self.perturb(host, **args)

    def script(self) -> str:
        """The intervention script as canonical JSON (feed to :func:`replay`)."""
        return json.dumps(self.interventions, sort_keys=True)

    # -- mid-flight HTML ----------------------------------------------------
    def snapshot_html(self, title: Optional[str] = None) -> str:
        """A self-contained no-JS HTML page of the state right now.

        A one-cell fleet dashboard: adaptation timeline and utilization
        bars from the records so far, plus the inspector snapshot tables.
        Reading it is passive — rendering mid-flight leaves the run
        byte-identical.
        """
        from .dash import dashboard_cell_from_context, render_dashboard

        cell = dashboard_cell_from_context(self)
        return render_dashboard(
            [cell],
            title=title
            or f"interactive: {self.scenario} (seed {self.seed}) "
            f"@ t={self.now:.3f}",
        )


def replay(
    scenario: Union[str, Callable],
    seed: int,
    script: Union[str, List[dict]],
    /,
    instrument: bool = True,
    **kwargs: Any,
) -> InteractiveContext:
    """Re-run a scenario, re-applying a recorded intervention script.

    Each entry is applied at its recorded event ordinal (``steps``), i.e.
    at the exact same boundary between events as the original session —
    so the replayed run is bit-identical to the intervened original.
    The returned context is left un-finalized; call ``finish()`` on it.
    """
    entries = json.loads(script) if isinstance(script, str) else list(script)
    ctx = InteractiveContext(
        scenario, seed=seed, instrument=instrument, **kwargs
    )
    for entry in entries:
        target = int(entry["steps"])
        while ctx.steps < target and not ctx.done:
            if ctx.sim.peek() > ctx.scene.until:
                break
            ctx._step_once()
        ctx.apply(entry)
    return ctx
