"""Deterministic observability: spans, metrics, exporters, causal queries.

``repro.obs`` is the instrumentation layer for the whole reproduction:
the sim kernel, the adaptation runtime (monitor, scheduler, steering,
exchange), the fault injector, and the profiling driver all emit
structured spans and metrics through one :class:`TraceRecorder` bound to
the simulator (``sim.obs``).  Tracing is strictly passive — it never
schedules events or draws randomness — so enabling it leaves a seeded
run's outcome byte-identical, and disabling it costs one attribute read
per instrumentation site.

See ``docs/observability.md`` for the span/metric model, the exporter
formats, and a worked causal-timeline example; ``repro trace`` and
``repro metrics`` surface all of it on the command line.
"""

from .export import from_jsonl, ordered, summary, to_chrome, to_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    TimeSeries,
)
from .dash import (
    dashboard_cell,
    dashboard_cell_from_context,
    dashboard_cell_from_run,
    load_store_cells,
    render_dashboard,
)
from .diff import DiffResult, diff_metrics, diff_traces, structural_keys
from .interactive import (
    SCENARIOS,
    InteractiveContext,
    ScenarioInspector,
    register_scenario,
    replay,
)
from .perf import KernelProfiler, to_chrome_profile, to_folded
from .query import adaptation_chains, chain, dwell_times, timeline
from .record import ObsError, SpanRecord, TraceRecorder
from .report import render_comparison, render_report
from .usage import UsageAccountant, owner_label

__all__ = [
    "Counter",
    "DiffResult",
    "Gauge",
    "Histogram",
    "InteractiveContext",
    "KernelProfiler",
    "MetricError",
    "MetricsRegistry",
    "ObsError",
    "SCENARIOS",
    "ScenarioInspector",
    "SpanRecord",
    "TimeSeries",
    "TraceRecorder",
    "UsageAccountant",
    "adaptation_chains",
    "chain",
    "dashboard_cell",
    "dashboard_cell_from_context",
    "dashboard_cell_from_run",
    "diff_metrics",
    "diff_traces",
    "dwell_times",
    "from_jsonl",
    "load_store_cells",
    "ordered",
    "owner_label",
    "register_scenario",
    "render_comparison",
    "render_dashboard",
    "render_report",
    "replay",
    "structural_keys",
    "summary",
    "timeline",
    "to_chrome",
    "to_chrome_profile",
    "to_folded",
    "to_jsonl",
]
