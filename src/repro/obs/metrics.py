"""Deterministic metrics registry: counters, gauges, histograms, series.

Every metric lives in a :class:`MetricsRegistry` keyed by a stable name.
Values are plain Python numbers updated by explicit calls — there is no
background sampling thread and no wall clock anywhere, so a registry's
:meth:`~MetricsRegistry.snapshot` is a pure function of the simulated
execution that produced it: two seeded runs yield byte-identical
snapshots.

Four metric kinds cover the repo's needs:

- :class:`Counter` — monotonically increasing total (messages sent,
  probes fired, violations raised);
- :class:`Gauge` — last-written value (current queue depth, active
  configuration index);
- :class:`Histogram` — fixed-bucket distribution (settle latency,
  negotiation depth); bucket edges are chosen at creation and never
  change, so merged/compared snapshots always line up;
- :class:`TimeSeries` — explicit ``(time, value)`` samples, the storage
  behind :class:`repro.sim.trace.Tracer` probes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "TimeSeries",
]


class MetricError(Exception):
    """Raised on metric misuse (name/type conflicts, bad buckets)."""


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease (n={n!r})")
        self.value += n

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (plus how often it was written)."""

    kind = "gauge"
    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value, "updates": self.updates}


class Histogram:
    """Fixed-bucket distribution.

    ``edges`` are strictly increasing upper bounds: an observation ``v``
    lands in the first bucket whose edge satisfies ``v <= edge``; values
    above the last edge land in the implicit overflow bucket, so
    ``len(counts) == len(edges) + 1`` and every value is counted.
    """

    kind = "histogram"
    __slots__ = ("name", "edges", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, edges: Sequence[float]):
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise MetricError(f"histogram {name!r} needs at least one edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise MetricError(
                f"histogram {name!r} edges must be strictly increasing: {edges!r}"
            )
        self.name = name
        self.edges: Tuple[float, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
        }


class TimeSeries:
    """Explicit ``(time, value)`` samples, in record order."""

    kind = "series"
    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, t: float, value: float) -> None:
        self.samples.append((float(t), float(value)))

    def to_dict(self) -> dict:
        return {"kind": self.kind, "samples": [list(s) for s in self.samples]}


Metric = Union[Counter, Gauge, Histogram, TimeSeries]


class MetricsRegistry:
    """Name -> metric table with get-or-create accessors.

    Accessors are idempotent: repeated calls with the same name return the
    same object; a name reused with a different metric kind (or different
    histogram edges) is a :class:`MetricError` — silent shape drift would
    make snapshots incomparable across runs.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        #: Optional time source (the bound recorder's virtual clock);
        #: only convenience helpers use it, metrics never read it silently.
        self.clock = clock
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str) -> Counter:
        # Hot path (instrumented code calls this per sample): plain dict
        # hit with no closure allocation.
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        elif not isinstance(metric, Counter):
            raise MetricError(f"{name!r} is a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge(name)
        elif not isinstance(metric, Gauge):
            raise MetricError(f"{name!r} is a {metric.kind}, not a gauge")
        return metric

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            if edges is None:
                raise MetricError(
                    f"histogram {name!r} does not exist yet; pass edges"
                )
            metric = Histogram(name, edges)
            self._metrics[name] = metric
        if not isinstance(metric, Histogram):
            raise MetricError(f"{name!r} is a {metric.kind}, not a histogram")
        if edges is not None and tuple(float(e) for e in edges) != metric.edges:
            raise MetricError(
                f"histogram {name!r} already exists with edges {metric.edges!r}"
            )
        return metric

    def series(self, name: str) -> TimeSeries:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = TimeSeries(name)
        elif not isinstance(metric, TimeSeries):
            raise MetricError(f"{name!r} is a {metric.kind}, not a series")
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """Plain-dict export, keys in sorted order (JSON-stable)."""
        return {name: self._metrics[name].to_dict() for name in self.names()}
