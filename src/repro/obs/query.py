"""Causal query API over recorded traces.

The runtime instrumentation links every adaptation record to its cause:
a ``config.switch`` points at the ``steer.request`` span that carried it,
which points at the ``sched.decision`` that issued it, which points at
the ``monitor.violation`` (or watchdog event) that triggered it.  These
helpers reconstruct that structure from a flat record list — whether the
records came straight off a live :class:`~repro.obs.record.TraceRecorder`
or were re-read from a JSONL export.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .export import ordered
from .record import SpanRecord

__all__ = ["adaptation_chains", "chain", "dwell_times", "timeline"]


def timeline(records: Sequence[SpanRecord]) -> List[SpanRecord]:
    """All records in causal display order: ``(t0, sid)``."""
    return ordered(records)


def _index(records: Sequence[SpanRecord]) -> Dict[int, SpanRecord]:
    return {record.sid: record for record in records}


def chain(records: Sequence[SpanRecord], sid: int) -> List[SpanRecord]:
    """The causal chain ending at ``sid``, root cause first.

    Walks parent links upward from the given record; unknown ids raise
    ``KeyError`` so a truncated export fails loudly instead of silently
    shortening chains.
    """
    index = _index(records)
    node: Optional[SpanRecord] = index[sid]
    out: List[SpanRecord] = []
    seen = set()
    while node is not None:
        if node.sid in seen:  # pragma: no cover - defensive (no cycles emitted)
            break
        seen.add(node.sid)
        out.append(node)
        node = index.get(node.parent) if node.parent is not None else None
    out.reverse()
    return out


def adaptation_chains(
    records: Sequence[SpanRecord], leaf: str = "config.switch"
) -> List[List[SpanRecord]]:
    """One causal chain per ``leaf`` record (default: applied switches).

    Each chain runs root-first, e.g. ``monitor.violation`` ->
    ``sched.decision`` -> ``steer.request`` -> ``config.switch``.
    """
    return [chain(records, record.sid) for record in ordered(records)
            if record.name == leaf]


def dwell_times(records: Sequence[SpanRecord]) -> Dict[str, float]:
    """Total simulated time spent in each configuration.

    Reconstructed from the ``config.initial`` instant and the sequence of
    ``config.switch`` instants (each carrying a ``config`` attr with the
    configuration label); the final segment is closed at the trace's last
    timestamp.  Configurations visited more than once accumulate.
    """
    marks = [
        record
        for record in ordered(records)
        if record.name in ("config.initial", "config.switch")
    ]
    if not marks:
        return {}
    times = [record.t0 for record in records]
    times += [record.t1 for record in records if record.t1 is not None]
    end = max(times)
    dwell: Dict[str, float] = {}
    for record, nxt in zip(marks, marks[1:] + [None]):
        label = str(record.attrs.get("config", "?"))
        until = end if nxt is None else nxt.t0
        dwell[label] = dwell.get(label, 0.0) + max(0.0, until - record.t0)
    return {k: dwell[k] for k in sorted(dwell)}
