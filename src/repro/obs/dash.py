"""Multi-run fleet dashboard: N runs/cells on one self-contained page.

``render_dashboard`` aggregates heterogeneous *cells* — traced
experiment runs, ``repro.exec`` sweep results, or a live
:class:`~repro.obs.interactive.InteractiveContext` snapshot — into a
single no-JS HTML page (inline CSS + inline SVG, like
:mod:`repro.obs.report`): a fleet overview table, QoS/violation heat
rows across all cells, per-cell adaptation timelines and utilization
bars, and first-divergence links between run pairs of the same group.

A *cell* is a plain dict (see :func:`dashboard_cell`); builders exist
for the three sources:

- :func:`dashboard_cell_from_run` — a traced run (records + metrics
  snapshot + optional usage summary + optional experiment payload);
- :func:`load_store_cells` — every entry of a ``repro.exec``
  :class:`~repro.exec.ResultStore` directory (sweep results);
- :func:`dashboard_cell_from_context` — the mid-flight state of an
  interactive context (strictly passive: rendering leaves the run
  byte-identical).

Determinism: the page is a pure function of the cells — no wall clocks,
no random ids, stable iteration order — so two same-seed builds are
byte-identical (gated in CI).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .diff import diff_traces, format_key
from .report import (
    _CSS,
    _config_marks,
    _esc,
    _fault_events,
    _fmt,
    _recovery_events,
    _series_svg,
    _timeline_svg,
    _trace_extent,
)

__all__ = [
    "dashboard_cell",
    "dashboard_cell_from_context",
    "dashboard_cell_from_run",
    "load_store_cells",
    "render_dashboard",
]

_DASH_CSS = _CSS + """
.heat { display: flex; gap: 3px; margin: .3em 0; }
.heat .box { width: 5.2em; height: 1.6em; border: 1px solid #cbd5e1;
             font-size: .7em; display: flex; align-items: center;
             justify-content: center; overflow: hidden; }
.cellgrid { border-left: 3px solid #16213e; padding-left: .8em;
            margin: 1.2em 0; }
.util { display: flex; align-items: center; gap: .5em; font-size: .8em; }
.util .track { background: #f1f5f9; border: 1px solid #e2e8f0;
               width: 240px; height: 11px; }
.util .fill { background: #2563eb; height: 11px; }
"""


def dashboard_cell(
    label: str,
    group: Optional[str] = None,
    records: Optional[Sequence] = None,
    metrics: Optional[dict] = None,
    usage: Optional[dict] = None,
    payload: Optional[dict] = None,
    inspect: Optional[dict] = None,
    seed: Optional[int] = None,
) -> dict:
    """One dashboard cell.  ``group`` scopes the pairwise divergence links."""
    return {
        "label": label,
        "group": group if group is not None else label.split("@")[0].split()[0],
        "records": list(records) if records is not None else None,
        "metrics": metrics,
        "usage": usage,
        "payload": payload,
        "inspect": inspect,
        "seed": seed,
    }


def dashboard_cell_from_run(
    label: str,
    recorder,
    usage=None,
    payload: Optional[dict] = None,
    group: Optional[str] = None,
    seed: Optional[int] = None,
) -> dict:
    """Cell from a traced run's :class:`TraceRecorder` (+ accountant)."""
    return dashboard_cell(
        label,
        group=group,
        records=recorder.records,
        metrics=recorder.metrics.snapshot(),
        usage=usage.summary() if usage is not None else None,
        payload=payload,
        seed=seed,
    )


def dashboard_cell_from_context(ctx) -> dict:
    """Mid-flight cell from an :class:`InteractiveContext` (passive)."""
    recorder = ctx.recorder
    return dashboard_cell(
        f"{ctx.scenario}@seed={ctx.seed} t={ctx.now:.3f}",
        group=ctx.scenario,
        records=recorder.records if recorder is not None else None,
        metrics=recorder.metrics.snapshot() if recorder is not None else None,
        usage=ctx.usage.summary() if ctx.usage is not None else None,
        payload=ctx.result[1] if ctx.result is not None else None,
        inspect=ctx.inspect.snapshot(),
        seed=ctx.seed,
    )


def load_store_cells(root) -> List[dict]:
    """Cells for every entry of a ``repro.exec`` result-store directory.

    Entries are loaded in sorted cache-key order (the sweep engine's
    merge order), so the cell list is deterministic for a given store.
    """
    root = Path(root)
    cells: List[dict] = []
    for path in sorted(root.rglob("*.json")):
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        spec = entry.get("spec") or {}
        kind = str(spec.get("kind", "?")).rpartition(":")[2]
        seed = spec.get("seed")
        label_bits = [kind]
        job_payload = spec.get("payload") or {}
        for field in ("config", "point"):
            part = job_payload.get(field)
            if isinstance(part, dict):
                label_bits.append(
                    ",".join(f"{k}={_fmt(v)}" for k, v in sorted(part.items()))
                )
        label_bits.append(f"seed={seed}")
        value = entry.get("value")
        cells.append(
            dashboard_cell(
                " ".join(label_bits),
                group=kind,
                payload=value if isinstance(value, dict) else {"value": value},
                usage=entry.get("usage"),
                seed=seed,
            )
        )
    return cells


# -- derived per-cell stats ----------------------------------------------------

def _metric_value(metrics: Optional[dict], name: str) -> Optional[float]:
    if not metrics:
        return None
    payload = metrics.get(name)
    if not isinstance(payload, dict) or "value" not in payload:
        return None
    return payload["value"]


def _flat_numbers(payload: Optional[dict]) -> Dict[str, float]:
    """Scalar numbers of an experiment/measurement payload, one level deep."""
    out: Dict[str, float] = {}
    if not isinstance(payload, dict):
        return out
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = value
        elif isinstance(value, dict):
            for sub in sorted(value):
                if isinstance(value[sub], (int, float)) and not isinstance(
                    value[sub], bool
                ):
                    out[f"{key}.{sub}"] = value[sub]
    return out


def _cell_stats(cell: dict) -> dict:
    """The overview/heat numbers of one cell, however it was sourced."""
    records = cell.get("records")
    payload = cell.get("payload") or {}
    metrics = cell.get("metrics")
    duration = None
    switches = faults = None
    if records:
        duration = _trace_extent(records)
        switches = max(0, len(_config_marks(records)) - 1)
        faults = len(_fault_events(records))
    if switches is None and isinstance(payload.get("switches"), list):
        switches = len(payload["switches"])
    if duration is None:
        for key in ("total_time", "run_time", "elapsed"):
            if isinstance(payload.get(key), (int, float)):
                duration = float(payload[key])
                break
    violations = _metric_value(metrics, "monitor.violations")
    if violations is None and isinstance(payload.get("violations"), (int, float)):
        violations = payload["violations"]
    qos = payload.get("qos") if isinstance(payload.get("qos"), dict) else None
    if qos is None and isinstance(payload.get("metrics"), dict):
        qos = payload["metrics"]  # profiling measurement records
    return {
        "duration": duration,
        "records": len(records) if records is not None else None,
        "switches": switches,
        "faults": faults,
        "violations": violations,
        "qos": qos,
    }


def _heat_color(value: Optional[float], worst: float) -> str:
    """White (no data) / green (0) / yellow-to-red ramp up to ``worst``."""
    if value is None:
        return "#f8fafc"
    if value <= 0:
        return "#bbf7d0"
    frac = min(1.0, value / worst) if worst > 0 else 1.0
    # fixed 4-step ramp keeps the palette (and the bytes) deterministic
    if frac < 0.25:
        return "#fef9c3"
    if frac < 0.5:
        return "#fde68a"
    if frac < 0.75:
        return "#fca5a5"
    return "#ef4444"


def _heat_row(title: str, boxes: List[str]) -> str:
    return (
        f'<div class="label">{_esc(title)}</div>'
        f'<div class="heat">{"".join(boxes)}</div>'
    )


def _interactive_events(records: Sequence) -> List:
    return [r for r in records if r.cat == "interactive"]


def _utilization_bars(usage_summary: dict) -> str:
    parts: List[str] = []
    for name in sorted(usage_summary.get("resources", {})):
        res = usage_summary["resources"][name]
        frac = min(1.0, max(0.0, float(res.get("utilization", 0.0))))
        parts.append(
            f'<div class="util"><span style="width:11em">'
            f"<code>{_esc(name)}</code></span>"
            f'<span class="track"><span class="fill" '
            f'style="width:{round(240 * frac)}px;display:block"></span></span>'
            f"<span>{100.0 * frac:.1f}%</span></div>"
        )
    return "".join(parts)


def _divergence_rows(cells: Sequence[dict]) -> List[str]:
    """First-divergence links between consecutive same-group traced cells."""
    rows: List[str] = []
    by_group: Dict[str, List[dict]] = {}
    for cell in cells:
        if cell.get("records"):
            by_group.setdefault(cell["group"], []).append(cell)
    for group in sorted(by_group):
        members = by_group[group]
        for a, b in zip(members, members[1:]):
            result = diff_traces(a["records"], b["records"])
            if result.identical:
                verdict = (
                    f'<span class="ok">identical</span> '
                    f"({result.matched} spans matched)"
                )
            else:
                divergence = result.first_divergence
                where = (
                    f"<code>{_esc(format_key(divergence.key))}</code> "
                    f"at t={divergence.record.t0:.4f}s ({_esc(divergence.kind)})"
                    if divergence is not None
                    else f"{result.divergences} divergence(s)"
                )
                verdict = f'<span class="bad">diverges</span>: {where}'
            rows.append(
                f"<tr><td>{_esc(a['label'])}</td><td>{_esc(b['label'])}</td>"
                f"<td>{verdict}</td></tr>"
            )
    return rows


def render_dashboard(
    cells: Sequence[dict], title: str = "repro fleet dashboard"
) -> str:
    """One self-contained HTML page over all ``cells`` (see module doc)."""
    cells = list(cells)
    stats = [_cell_stats(cell) for cell in cells]

    body: List[str] = []

    # -- fleet overview -------------------------------------------------
    body.append("<h2>Fleet</h2><table>")
    body.append(
        "<tr><th>#</th><th>cell</th><th>duration</th><th>trace records</th>"
        "<th>switches</th><th>faults</th><th>violations</th></tr>"
    )
    for i, (cell, st) in enumerate(zip(cells, stats)):

        def num(v, fmt="{:g}"):
            return "-" if v is None else fmt.format(v)

        body.append(
            f'<tr><td class="num">{i}</td>'
            f"<td><a href=\"#cell-{i}\">{_esc(cell['label'])}</a></td>"
            f'<td class="num">{num(st["duration"], "{:.3f}s")}</td>'
            f'<td class="num">{num(st["records"])}</td>'
            f'<td class="num">{num(st["switches"])}</td>'
            f'<td class="num">{num(st["faults"])}</td>'
            f'<td class="num">{num(st["violations"])}</td></tr>'
        )
    body.append("</table>")

    # -- heat rows ------------------------------------------------------
    worst_violations = max(
        (st["violations"] for st in stats if st["violations"] is not None),
        default=0.0,
    )
    violation_boxes = []
    qos_metrics = sorted(
        {name for st in stats for name in (st["qos"] or {})
         if isinstance((st["qos"] or {}).get(name), (int, float))}
    )
    for i, st in enumerate(stats):
        color = _heat_color(st["violations"], worst_violations)
        text = "-" if st["violations"] is None else f"{st['violations']:g}"
        violation_boxes.append(
            f'<div class="box" style="background:{color}" '
            f'title="cell {i}">{text}</div>'
        )
    body.append("<h2>QoS / violation heat</h2>")
    body.append(_heat_row("constraint violations", violation_boxes))
    for metric in qos_metrics:
        values = [
            (st["qos"] or {}).get(metric)
            if isinstance((st["qos"] or {}).get(metric), (int, float))
            else None
            for st in stats
        ]
        worst = max((v for v in values if v is not None), default=0.0)
        boxes = [
            f'<div class="box" style="background:{_heat_color(v, worst)}" '
            f'title="cell {i}">{"-" if v is None else _fmt(v)}</div>'
            for i, v in enumerate(values)
        ]
        body.append(_heat_row(f"qos: {metric}", boxes))

    # -- per-cell sections ----------------------------------------------
    for i, (cell, st) in enumerate(zip(cells, stats)):
        body.append(f'<div class="cellgrid" id="cell-{i}">')
        body.append(f"<h2>cell {i}: {_esc(cell['label'])}</h2>")
        records = cell.get("records")
        if records:
            t_end = _trace_extent(records)
            marks = _config_marks(records)
            recovery = list(_recovery_events(records)) + _interactive_events(
                records
            )
            body.append("<h3>Adaptation timeline</h3>")
            body.append(
                _timeline_svg(
                    marks, _fault_events(records), t_end, recovery=recovery
                )
            )
            interventions = _interactive_events(records)
            if interventions:
                body.append("<h3>Interventions</h3><table>")
                body.append("<tr><th>t</th><th>kind</th><th>args</th></tr>")
                for record in interventions:
                    attrs = " ".join(
                        f"{k}={v}"
                        for k, v in sorted(record.attrs.items())
                        if k != "steps"
                    )
                    body.append(
                        f'<tr><td class="num">{record.t0:.3f}</td>'
                        f"<td><code>{_esc(record.name)}</code></td>"
                        f"<td>{_esc(attrs)}</td></tr>"
                    )
                body.append("</table>")
        if cell.get("usage"):
            body.append("<h3>Utilization</h3>")
            body.append(_utilization_bars(cell["usage"]))
        numbers = _flat_numbers(cell.get("payload"))
        if numbers:
            body.append("<h3>Result</h3><table>")
            body.append("<tr><th>key</th><th>value</th></tr>")
            for key, value in numbers.items():
                body.append(
                    f"<tr><td><code>{_esc(key)}</code></td>"
                    f'<td class="num">{_esc(_fmt(value))}</td></tr>'
                )
            body.append("</table>")
        inspect = cell.get("inspect")
        if inspect:
            body.append("<h3>Live state</h3>")
            body.append(
                f"<pre><code>{_esc(json.dumps(inspect, indent=1, sort_keys=True, default=str))}"
                "</code></pre>"
            )
        body.append("</div>")

    # -- pairwise first divergences -------------------------------------
    divergences = _divergence_rows(cells)
    if divergences:
        body.append("<h2>Run-pair divergences</h2><table>")
        body.append("<tr><th>A</th><th>B</th><th>first divergence</th></tr>")
        body.extend(divergences)
        body.append("</table>")

    return (
        "<!DOCTYPE html>\n"
        f'<html lang="en"><head><meta charset="utf-8">'
        f"<title>{_esc(title)}</title><style>{_DASH_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>{''.join(body)}"
        f"<footer>Generated by <code>repro dash</code> over {len(cells)} "
        "cell(s) — deterministic: a pure function of the runs.</footer>"
        "</body></html>\n"
    )
