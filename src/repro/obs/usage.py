"""Usage accounting: where the resources actually went, over time.

The adaptation argument of the paper (Sections 5-7) is that decisions
should follow measured resource consumption — CPU share, link bandwidth,
memory — yet the tracing layer records only control-plane causality
(violations -> decisions -> switches).  A :class:`UsageAccountant` adds
the data-plane account: per-resource, per-process, and per-active-
configuration served-work totals, folded into time-weighted
:class:`~repro.obs.metrics.TimeSeries` at event boundaries.

Like the :class:`~repro.obs.record.TraceRecorder` it is strictly
**passive**:

- no probe processes, no scheduled events, no RNG draws — a run with
  accounting enabled is byte-identical to the same run without it
  (enforced by ``benchmarks/bench_obs.py``);
- progress is observed two ways, both read-only at the simulator level:
  a *work tap* on each :class:`~repro.sim.fluid.FluidShare` receives
  exact served-work deltas as the share folds its lazy accumulators (so
  totals are exact regardless of sampling resolution), and a *speed
  tap* folds the capacity integral (``speed * dt``) exactly at each
  ``set_speed`` change point — so the chained kernel ``step_hook`` is
  O(1) per event: it only checks whether virtual time has advanced past
  the next ``resolution`` boundary and, if so, cuts a utilization
  sample;
- attribution keys are stable strings: the ``owner`` label of the fluid
  job (normally a sandbox name) and the label of the configuration
  active when the work was served.  The runtime updates the active
  configuration through :meth:`set_config` at ``config.switch`` safe
  points (see :mod:`repro.runtime.steering`), discovered via the
  ``sim.usage`` attribute.

Accounting invariants (see ``docs/observability.md``):

1. for every tracked share, ``sum(by_owner) == sum(by_config) ==
   served`` to float tolerance — the three views are the same work;
2. ``served / capacity`` equals the share's own
   ``utilization_since(t0, served0)`` ground truth over the tracked
   window (under constant speed; capacity integrates exactly across
   speed changes at event boundaries);
3. the utilization series is time-weighted: each sample ``(t, u)``
   covers exactly the interval since the previous sample, so the
   capacity-weighted mean of the samples reproduces the overall
   utilization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.core import Event, Simulator
from ..sim.fluid import FluidShare
from .metrics import MetricsRegistry

__all__ = ["MemoryUsage", "ResourceUsage", "UsageAccountant", "owner_label"]

_EPS = 1e-12

#: Attribution bucket for work whose fluid job carries no owner.
UNATTRIBUTED = "(unattributed)"

#: Attribution bucket before any configuration label is known.
NO_CONFIG = "(none)"


def owner_label(owner: Optional[object]) -> str:
    """Stable attribution key for a fluid job's owner (a sandbox, usually)."""
    if owner is None:
        return UNATTRIBUTED
    name = getattr(owner, "name", None)
    if isinstance(name, str) and name:
        return name
    return type(owner).__name__


class ResourceUsage:
    """Accounting state for one tracked fluid-shared resource."""

    __slots__ = (
        "name", "kind", "share", "capacity", "served",
        "by_owner", "by_config", "_pending_owner", "_pending_config",
        "_served_mark", "_capacity_mark", "_base_served", "_cap_t",
    )

    def __init__(self, name: str, kind: str, share: FluidShare):
        self.name = name
        self.kind = kind  # "cpu" | "link"
        self.share = share
        #: Integral of ``speed * dt``, folded up to :attr:`_cap_t`.
        self.capacity = 0.0
        #: Exact served work over the tracked window(s) (tap-fed).
        self.served = 0.0
        self.by_owner: Dict[str, float] = {}
        self.by_config: Dict[str, float] = {}
        #: Owner/config deltas since the last sample cut.
        self._pending_owner: Dict[str, float] = {}
        self._pending_config: Dict[str, float] = {}
        #: served/capacity values at the last sample cut.
        self._served_mark = 0.0
        self._capacity_mark = 0.0
        #: ``share.total_served`` when tracking (re)started — taps report
        #: deltas, but the passive projection below is cumulative.
        self._base_served = share.total_served
        #: Virtual time the capacity integral is folded up to.  Between
        #: folds the share's speed is constant (the speed tap folds at
        #: every ``set_speed``), so ``capacity + speed * (t - _cap_t)``
        #: is exact at any later ``t``.
        self._cap_t = share.sim.now

    def rebase(self, share: FluidShare) -> None:
        """Point at a fresh share (new testbed); totals keep accumulating."""
        self.share = share
        self._base_served = share.total_served
        self._cap_t = share.sim.now

    def fold_capacity(self, t: float) -> None:
        """Advance the capacity integral to ``t`` at the current speed."""
        dt = t - self._cap_t
        if dt > 0.0:
            self.capacity += self.share.speed * dt
            self._cap_t = t

    def on_work(self, owner: str, config: str, amount: float) -> None:
        self.served += amount
        self.by_owner[owner] = self.by_owner.get(owner, 0.0) + amount
        self.by_config[config] = self.by_config.get(config, 0.0) + amount
        self._pending_owner[owner] = self._pending_owner.get(owner, 0.0) + amount
        self._pending_config[config] = (
            self._pending_config.get(config, 0.0) + amount
        )

    def projected_served(self) -> float:
        """Served work including the share's not-yet-folded progress."""
        in_flight = self.share.served_now() - self.share.total_served
        return self.served + max(0.0, in_flight)

    def utilization(self) -> float:
        """Overall served / capacity over the tracked window(s)."""
        self.fold_capacity(self.share.sim.now)
        if self.capacity <= _EPS:
            return 0.0
        return self.projected_served() / self.capacity

    def to_dict(self) -> dict:
        self.fold_capacity(self.share.sim.now)
        served = self.projected_served()
        return {
            "kind": self.kind,
            "capacity": self.capacity,
            "served": served,
            "utilization": self.utilization(),
            "by_owner": {k: self.by_owner[k] for k in sorted(self.by_owner)},
            "by_config": {k: self.by_config[k] for k in sorted(self.by_config)},
        }


class MemoryUsage:
    """Accounting state for one tracked host memory."""

    __slots__ = ("name", "memory", "faults", "faults_by_config", "peak_resident")

    def __init__(self, name: str, memory) -> None:
        self.name = name
        self.memory = memory
        self.faults = 0
        self.faults_by_config: Dict[str, int] = {}
        self.peak_resident = 0

    def rebase(self, memory) -> None:
        self.memory = memory

    def resident_pages(self) -> int:
        return sum(space.resident_pages for space in self.memory.spaces)

    def to_dict(self) -> dict:
        return {
            "kind": "memory",
            "faults": self.faults,
            "faults_by_config": {
                k: self.faults_by_config[k]
                for k in sorted(self.faults_by_config)
            },
            "peak_resident_pages": self.peak_resident,
            "total_pages": self.memory.total_pages,
        }


class UsageAccountant:
    """Folds served-work deltas into per-resource utilization series.

    Attach order composes with the rest of the obs stack exactly as the
    recorder does: attach the race detector first (it refuses to chain),
    then :meth:`attach` the accountant, then ``recorder.bind`` — each
    later layer chains the hook it finds.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        resolution: float = 1.0,
    ):
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution!r}")
        #: Where the ``usage.*`` series land; share a recorder's registry
        #: (``UsageAccountant(metrics=recorder.metrics)``) to make them
        #: visible to ``repro metrics`` and the HTML report.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.resolution = float(resolution)
        self.resources: Dict[str, ResourceUsage] = {}
        self.memories: Dict[str, MemoryUsage] = {}
        #: (virtual time, configuration label) attribution switch points,
        #: fed by the runtime at ``config.switch`` safe points.
        self.config_marks: List[Tuple[float, str]] = []
        self._config = NO_CONFIG
        self.sim: Optional[Simulator] = None
        self._prev_hook = None
        self._hook = None
        self._elapsed_mark = 0.0
        self._sample_t = 0.0
        #: Virtual time accounted so far, across attach/detach cycles.
        self.elapsed = 0.0
        self.steps = 0

    # -- binding ----------------------------------------------------------
    def attach(self, sim: Simulator) -> "UsageAccountant":
        """Chain into ``sim.step_hook`` and become ``sim.usage``."""
        if self.sim is not None:
            raise ValueError("accountant is already attached; detach() first")
        if sim.usage is not None:
            raise ValueError("simulator already has an attached accountant")
        self.sim = sim
        sim.usage = self
        self._prev_hook = sim.step_hook
        # One bound-method object, kept for the identity check in detach().
        self._hook = self._step_hook
        sim.step_hook = self._hook
        self._elapsed_mark = sim.now
        self._sample_t = sim.now
        return self

    def detach(self) -> "UsageAccountant":
        """Unchain from the simulator (restores any chained hook)."""
        sim = self.sim
        if sim is None:
            return self
        dt = sim.now - self._elapsed_mark
        if dt > 0.0:
            self.elapsed += dt
            self._elapsed_mark = sim.now
        if sim.usage is self:
            sim.usage = None
        if sim.step_hook is self._hook:
            sim.step_hook = self._prev_hook
        self._prev_hook = None
        self._hook = None
        self.sim = None
        return self

    # -- registration -----------------------------------------------------
    def track_share(self, name: str, share: FluidShare, kind: str) -> ResourceUsage:
        """Track a fluid-shared resource under a stable ``name``.

        Re-tracking an existing name (a fresh testbed in a profiling
        sweep) rebases the entry onto the new share; totals accumulate.
        """
        entry = self.resources.get(name)
        if entry is None:
            entry = ResourceUsage(name, kind, share)
            self.resources[name] = entry
        else:
            entry.rebase(share)

        def tap(owner: Optional[object], amount: float) -> None:
            entry.on_work(owner_label(owner), self._config, amount)

        def speed_tap() -> None:
            # Fold the capacity integral at the old speed just before the
            # share replaces it; keeps the per-event step hook O(1).
            entry.fold_capacity(share.sim.now)

        share.usage_tap = tap
        share.speed_tap = speed_tap
        return entry

    def track_cpu(self, cpu, name: Optional[str] = None) -> ResourceUsage:
        entry = self.track_share(name or cpu.name, cpu.share, "cpu")
        return entry

    def track_link(self, link, name: Optional[str] = None) -> ResourceUsage:
        return self.track_share(name or link.name, link.share, "link")

    def track_memory(self, memory, name: str) -> MemoryUsage:
        entry = self.memories.get(name)
        if entry is None:
            entry = MemoryUsage(name, memory)
            self.memories[name] = entry
        else:
            entry.rebase(memory)

        def tap(_space, faults: int) -> None:
            entry.faults += faults
            entry.faults_by_config[self._config] = (
                entry.faults_by_config.get(self._config, 0) + faults
            )

        memory.install_usage_tap(tap)
        return entry

    def track_testbed(self, testbed) -> "UsageAccountant":
        """Track every host CPU/memory and every network link of a testbed."""
        for host_name in sorted(testbed.hosts):
            host = testbed.hosts[host_name]
            self.track_cpu(host.cpu)
            self.track_memory(host.memory, f"{host_name}.mem")
        for link in testbed.network.links():
            self.track_link(link)
        return self

    # -- configuration attribution ----------------------------------------
    def set_config(self, label: str, t: Optional[float] = None) -> None:
        """Switch the attribution bucket for subsequently served work.

        Called by the runtime at ``config.switch`` safe points (and once
        at startup with the initial configuration); ``t`` records the
        safe-point time in :attr:`config_marks`.
        """
        if t is None:
            t = self.sim.now if self.sim is not None else 0.0
        if label != self._config or not self.config_marks:
            self.config_marks.append((float(t), label))
        self._config = label

    @property
    def active_config(self) -> str:
        return self._config

    # -- the step hook ------------------------------------------------------
    def _step_hook(self, t: float, prio: int, seq: int, event: Event) -> None:
        # Hot path — once per kernel event.  All real work (capacity
        # folding, attribution) happens in the share taps at exact change
        # points; here we only decide whether to cut a sample.
        self.steps += 1
        if t - self._sample_t >= self.resolution:
            self._sample(t)
        prev = self._prev_hook
        if prev is not None:
            prev(t, prio, seq, event)

    def _sample(self, t: float) -> None:
        """Cut one time-weighted sample per tracked resource."""
        for name in self.resources:
            entry = self.resources[name]
            entry.fold_capacity(t)
            served = entry.projected_served()
            d_cap = entry.capacity - entry._capacity_mark
            d_served = served - entry._served_mark
            util = d_served / d_cap if d_cap > _EPS else 0.0
            self.metrics.series(f"usage.{name}").record(t, util)
            for owner in sorted(entry._pending_owner):
                self.metrics.series(f"usage.{name}.proc.{owner}").record(
                    t, entry._pending_owner[owner] / d_cap if d_cap > _EPS else 0.0
                )
            for config in sorted(entry._pending_config):
                self.metrics.series(f"usage.{name}.config.{config}").record(
                    t, entry._pending_config[config] / d_cap if d_cap > _EPS else 0.0
                )
            entry._pending_owner.clear()
            entry._pending_config.clear()
            entry._served_mark = served
            entry._capacity_mark = entry.capacity
        for name in self.memories:
            entry = self.memories[name]
            resident = entry.resident_pages()
            entry.peak_resident = max(entry.peak_resident, resident)
            self.metrics.series(f"usage.{name}.resident").record(t, resident)
        self._sample_t = t

    # -- teardown ------------------------------------------------------------
    def finish(self) -> "UsageAccountant":
        """Flush the final partial interval at the current virtual time."""
        if self.sim is None:
            return self
        t = self.sim.now
        dt = t - self._elapsed_mark
        if dt > 0.0:
            self.elapsed += dt
            self._elapsed_mark = t
        for entry in self.resources.values():
            entry.fold_capacity(t)
        if t > self._sample_t:
            self._sample(t)
        return self

    # -- export ---------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-stable account: per-resource totals and attributions."""
        return {
            "elapsed": self.elapsed,
            "steps": self.steps,
            "resources": {
                name: self.resources[name].to_dict()
                for name in sorted(self.resources)
            },
            "memory": {
                name: self.memories[name].to_dict()
                for name in sorted(self.memories)
            },
            "config_marks": [[t, label] for t, label in self.config_marks],
        }

    def series(self, name: str):
        """The recorded ``usage.<name>`` utilization series (or None)."""
        return self.metrics.get(f"usage.{name}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<UsageAccountant resources={len(self.resources)} "
            f"elapsed={self.elapsed:.6g}>"
        )
