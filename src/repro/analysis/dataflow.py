"""Interprocedural nondeterminism dataflow: the ``DET5xx`` family.

The ``DET1xx``–``DET4xx`` rules (:mod:`repro.analysis.rules`) are local:
they flag a wall-clock read, an entropy draw, or an unordered iteration
*at the expression that performs it*.  They cannot see a value that is
produced in one function and only becomes dangerous two calls later::

    def stamp():                  # no local finding: just returns a float
        return time.time()

    def jitter(base):             # no local finding: adds two numbers
        return base + 0.01

    def arm(sim):                 # no local finding: timeout(x) looks clean
        sim.timeout(jitter(stamp()))

This module closes that gap with a call-graph taint analysis:

* **Sources** are the same canonical nondeterminism producers the local
  rules know (wall clocks, OS entropy / global RNG, set construction,
  filesystem enumeration, ``id()``/``hash()``).
* Taint propagates through assignments, arithmetic, containers,
  attributes on ``self``, function returns, and function parameters —
  per-function summaries (``returns tainted``, ``param i flows to
  return``, ``param i reaches sink``) are iterated to a fixed point over
  the module's call graph, so chains of any depth converge.
* **Sinks** are the ordering-sensitive operations (event scheduling,
  message emission, serialization, checkpoint writes).
* Only **multi-hop** flows — those crossing at least one function
  boundary — are reported, with the full source → hop → sink chain in
  the message.  Single-function flows are the local rules' territory
  and are deliberately not duplicated.

Scope: the call graph is per-module (module-level functions, nested
calls through ``self.`` methods of the same class).  Cross-module flows
are out of scope — an under-approximation, never a false positive.

Findings gate exactly like the lint rules: inline
``# repro: allow[DET501] -- reason`` on the sink line, or an entry in
the checked-in ``lint_baseline.json``; ``repro check flow`` drives it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding, sort_findings
from .lint import LintResult, _inline_allows, discover_files, load_baseline
from .rules import (
    _ENTROPY,
    _FS_ENUM,
    _FS_ENUM_ATTRS,
    _ORDER_SINKS,
    _RNG_PREFIXES,
    _WALLCLOCK,
    _Aliases,
    _dotted,
)

__all__ = ["DATAFLOW_RULES", "flow_source", "flow_paths", "ModuleFlow"]

#: rule id -> one-line summary.
DATAFLOW_RULES: Dict[str, str] = {
    "DET501": "wall-clock-derived value reaches an ordering sink "
    "across function boundaries",
    "DET502": "RNG/entropy-derived value reaches an ordering sink "
    "across function boundaries",
    "DET503": "unordered-collection/identity-derived value reaches an "
    "ordering sink across function boundaries",
}

_KIND_RULE = {"wallclock": "DET501", "entropy": "DET502", "unordered": "DET503"}

_KIND_HINT = {
    "wallclock": "order events by virtual time (sim.now) or explicit "
    "parameters; wall-clock values must never influence scheduling",
    "entropy": "derive the value from a named seeded stream "
    "(repro.sim.rng.stream(seed, name)) so the flow replays",
    "unordered": "canonicalize with sorted(...) before the value "
    "influences event/message/serialization order",
}

#: Ordering-sensitive operations for the flow analysis: the local rules'
#: sinks plus checkpoint writes (``store.save``) — a nondeterministic
#: value serialized into a checkpoint replays differently on restart.
_FLOW_SINKS: Set[str] = set(_ORDER_SINKS) | {"save"}

#: Fixed-point safety valve; summaries grow monotonically, so real
#: convergence is bounded by chain depth (call-graph diameter), far
#: below this.
_MAX_ROUNDS = 20


@dataclass(frozen=True)
class Taint:
    """One nondeterministic value with its provenance chain."""

    kind: str  # "wallclock" | "entropy" | "unordered"
    origin: str  # e.g. "time.time() in stamp()"
    line: int  # source line of the origin
    hops: Tuple[str, ...] = ()  # function-boundary crossings, in order

    def hop(self, description: str) -> "Taint":
        if description in self.hops:  # cycles: don't grow forever
            return self
        return replace(self, hops=self.hops + (description,))


@dataclass(frozen=True)
class ParamRef:
    """Symbolic taint: 'whatever the caller passes for parameter i'."""

    index: int


#: A sink reachable from a parameter: (sink name, sink line, inner hops).
SinkRef = Tuple[str, int, Tuple[str, ...]]


@dataclass
class FunctionInfo:
    """One analyzed function plus its interprocedural summary."""

    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: List[str]
    cls: Optional[str] = None
    return_taints: Set[Taint] = field(default_factory=set)
    param_to_return: Set[int] = field(default_factory=set)
    param_to_sink: Dict[int, Set[SinkRef]] = field(default_factory=dict)

    def summary_key(self) -> tuple:
        return (
            frozenset(self.return_taints),
            frozenset(self.param_to_return),
            frozenset(
                (i, frozenset(refs)) for i, refs in self.param_to_sink.items()
            ),
        )


def _param_names(node: ast.AST) -> List[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    # kwonly params are addressable by keyword at call sites; vararg and
    # kwarg collect unnamed extras and are not tracked.
    names += [a.arg for a in args.kwonlyargs]
    return names


class ModuleFlow:
    """Call-graph taint analysis over one parsed module."""

    def __init__(self, tree: ast.AST, path: str):
        self.tree = tree
        self.path = path
        self.aliases = _Aliases().collect(tree)
        self.functions: Dict[str, FunctionInfo] = {}
        self.methods: Dict[Tuple[str, str], FunctionInfo] = {}
        #: Taints written to ``self.<attr>`` anywhere in a class.
        self.attr_taints: Dict[Tuple[str, str], Set[Taint]] = {}
        self.findings: List[Finding] = []
        self._seen: Set[tuple] = set()
        self._collect()

    # -- collection ------------------------------------------------------
    def _collect(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(node.name, node, _param_names(node))
                self.functions[node.name] = info
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            f"{node.name}.{item.name}",
                            item,
                            _param_names(item),
                            cls=node.name,
                        )
                        self.methods[(node.name, item.name)] = info

    def _all_functions(self) -> List[FunctionInfo]:
        return list(self.functions.values()) + list(self.methods.values())

    # -- resolution ------------------------------------------------------
    def resolve_call(
        self, node: ast.Call, caller: FunctionInfo
    ) -> Optional[FunctionInfo]:
        func = node.func
        if isinstance(func, ast.Name):
            return self.functions.get(func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and caller.cls is not None
        ):
            return self.methods.get((caller.cls, func.attr))
        return None

    # -- driver ----------------------------------------------------------
    def analyze(self) -> List[Finding]:
        for _ in range(_MAX_ROUNDS):
            before = tuple(f.summary_key() for f in self._all_functions())
            for info in self._all_functions():
                _FunctionAnalyzer(self, info, emit=False).run()
            if tuple(f.summary_key() for f in self._all_functions()) == before:
                break
        for info in self._all_functions():
            _FunctionAnalyzer(self, info, emit=True).run()
        return sort_findings(self.findings)

    # -- reporting -------------------------------------------------------
    def report(
        self,
        taint: Taint,
        sink_name: str,
        line: int,
        extra_hops: Tuple[str, ...] = (),
    ) -> None:
        chain = [taint.origin, *taint.hops, *extra_hops, f"{sink_name}()"]
        key = (taint.kind, line, sink_name, tuple(chain))
        if key in self._seen:
            return
        self._seen.add(key)
        rule = _KIND_RULE[taint.kind]
        hops = len(chain) - 2
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=line,
                col=1,
                message=(
                    f"{taint.kind} value reaches ordering sink "
                    f"{sink_name}() through {hops} function-boundary "
                    f"hop(s): {' -> '.join(chain)}"
                ),
                hint=_KIND_HINT[taint.kind],
            )
        )


class _FunctionAnalyzer:
    """Two-pass abstract interpreter for one function body.

    The environment maps local names to sets of :class:`Taint` /
    :class:`ParamRef` markers.  Updates are weak (sets only grow), which
    keeps everything monotone; the second pass lets loop-carried flows
    stabilize within the function.
    """

    def __init__(self, flow: ModuleFlow, info: FunctionInfo, emit: bool):
        self.flow = flow
        self.info = info
        self.emit = emit
        self.env: Dict[str, Set[Any]] = {
            name: {ParamRef(i)} for i, name in enumerate(info.params)
        }
        if info.cls is not None and info.params and info.params[0] == "self":
            # `self` is the instance, not caller data: drop its ParamRef so
            # method calls don't report flows through the receiver slot.
            self.env["self"] = set()

    def run(self) -> None:
        body = getattr(self.info.node, "body", [])
        for _ in range(2):
            self._block(body)

    # -- statements ------------------------------------------------------
    def _block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _assign_target(self, target: ast.AST, markers: Set[Any]) -> None:
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, set()).update(markers)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, markers)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, markers)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.info.cls is not None
        ):
            slot = self.flow.attr_taints.setdefault(
                (self.info.cls, target.attr), set()
            )
            # An attribute write is a function-boundary crossing: the
            # value becomes visible to every other method of the class.
            hop = f"via self.{target.attr} (set in {self.info.qualname}())"
            slot.update(
                m.hop(hop) for m in markers if isinstance(m, Taint)
            )
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            # container[k] = tainted: the container is now tainted.
            self.env.setdefault(target.value.id, set()).update(markers)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            markers = self._expr(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, markers)
        elif isinstance(stmt, ast.AugAssign):
            markers = self._expr(stmt.value)
            self._assign_target(stmt.target, markers)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign_target(stmt.target, self._expr(stmt.value))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for marker in self._expr(stmt.value):
                    if isinstance(marker, ParamRef):
                        self.info.param_to_return.add(marker.index)
                    else:
                        self.info.return_taints.add(marker)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign_target(stmt.target, self._expr(stmt.iter))
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                markers = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, markers)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)
        elif isinstance(stmt, ast.Delete):
            pass
        # Nested FunctionDef/ClassDef: separate scopes, not descended —
        # they are not resolvable call targets at module level anyway.

    # -- expressions -----------------------------------------------------
    def _expr(self, node: Optional[ast.expr]) -> Set[Any]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.info.cls is not None
            ):
                return set(
                    self.flow.attr_taints.get((self.info.cls, node.attr), ())
                )
            return self._expr(node.value)
        if isinstance(node, (ast.Set, ast.SetComp)):
            markers = self._sub_markers(node)
            markers.add(
                Taint(
                    "unordered",
                    "set construction",
                    getattr(node, "lineno", 0),
                )
            )
            return markers
        if isinstance(
            node,
            (
                ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare, ast.IfExp,
                ast.Tuple, ast.List, ast.Dict, ast.Subscript, ast.JoinedStr,
                ast.FormattedValue, ast.Starred, ast.Await, ast.Yield,
                ast.YieldFrom, ast.ListComp, ast.GeneratorExp, ast.DictComp,
                ast.NamedExpr, ast.Slice,
            ),
        ):
            return self._sub_markers(node)
        if isinstance(node, ast.Lambda):
            return set()
        return self._sub_markers(node)

    def _sub_markers(self, node: ast.AST) -> Set[Any]:
        markers: Set[Any] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                markers |= self._expr(child)
            elif isinstance(child, ast.comprehension):
                self._assign_target(child.target, self._expr(child.iter))
                for cond in child.ifs:
                    self._expr(cond)
        return markers

    # -- calls: sources, sinks, summaries --------------------------------
    def _source_taint(self, node: ast.Call, resolved: Optional[str]) -> Optional[Taint]:
        line = getattr(node, "lineno", 0)
        where = f"in {self.info.qualname}()"
        if resolved is not None:
            if resolved in _WALLCLOCK:
                return Taint("wallclock", f"{resolved}() {where}", line)
            if resolved in _ENTROPY or resolved.startswith(_RNG_PREFIXES):
                return Taint("entropy", f"{resolved}() {where}", line)
            if resolved in _FS_ENUM:
                return Taint("unordered", f"{resolved}() {where}", line)
            if resolved in ("set", "frozenset"):
                return Taint("unordered", f"{resolved}() {where}", line)
            if resolved in ("id", "hash"):
                return Taint("unordered", f"{resolved}() {where}", line)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_ENUM_ATTRS
        ):
            return Taint(
                "unordered", f".{node.func.attr}() {where}", line
            )
        return None

    def _arg_markers(self, node: ast.Call, callee: Optional[FunctionInfo]):
        """[(param index or None, markers)] for every argument."""
        out = []
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                out.append((None, self._expr(arg.value)))
            else:
                out.append((i, self._expr(arg)))
        for kw in node.keywords:
            index = None
            if callee is not None and kw.arg in (callee.params or ()):
                index = callee.params.index(kw.arg)
            out.append((index, self._expr(kw.value)))
        return out

    def _call(self, node: ast.Call) -> Set[Any]:
        dotted = _dotted(node.func)
        resolved = self.flow.aliases.resolve(dotted) if dotted else None
        line = getattr(node, "lineno", 0)
        callee = self.flow.resolve_call(node, self.info)
        args = self._arg_markers(node, callee)
        all_arg_markers: Set[Any] = set()
        for _, markers in args:
            all_arg_markers |= markers

        # sorted() canonicalizes order: unordered taint is sanitized,
        # value-level taints (a wall-clock reading is still wall-clock
        # after sorting) pass through.
        if resolved == "sorted":
            return {
                m
                for m in all_arg_markers
                if not (isinstance(m, Taint) and m.kind == "unordered")
            }

        source = self._source_taint(node, resolved)

        # Receiver method names that are ordering sinks.
        sink_name = None
        if isinstance(node.func, ast.Attribute) and node.func.attr in _FLOW_SINKS:
            sink_name = node.func.attr
        elif isinstance(node.func, ast.Name) and node.func.id in _FLOW_SINKS:
            sink_name = node.func.id
        if sink_name is not None:
            for marker in all_arg_markers:
                if isinstance(marker, Taint):
                    # Multi-hop only: same-function flows belong to the
                    # local DET1xx-4xx rules.
                    if marker.hops and self.emit:
                        self.flow.report(marker, sink_name, line)
                elif isinstance(marker, ParamRef):
                    self.info.param_to_sink.setdefault(
                        marker.index, set()
                    ).add((sink_name, line, ()))

        result: Set[Any] = set()
        if source is not None:
            result.add(source)
        if callee is not None:
            through = f"{callee.qualname}()"
            for taint in callee.return_taints:
                result.add(taint.hop(f"returned by {through}"))
            for index, markers in args:
                if index is None:
                    continue
                if index in callee.param_to_return:
                    for marker in markers:
                        if isinstance(marker, Taint):
                            result.add(marker.hop(f"through {through}"))
                        else:
                            result.add(marker)
                for sink_ref in callee.param_to_sink.get(index, ()):
                    sname, _sline, inner = sink_ref
                    hop_chain = (f"into {through}",) + inner
                    for marker in markers:
                        if isinstance(marker, Taint):
                            if self.emit:
                                self.flow.report(
                                    marker, sname, line, extra_hops=hop_chain
                                )
                        elif isinstance(marker, ParamRef):
                            self.info.param_to_sink.setdefault(
                                marker.index, set()
                            ).add((sname, line, hop_chain))
        else:
            # Unknown callee: conservative pass-through of argument taints
            # (str(x), float(x), obj.transform(x) keep the value tainted).
            result |= all_arg_markers
            # A method call on a tainted receiver yields tainted values.
            if isinstance(node.func, ast.Attribute):
                result |= self._expr(node.func.value)
        return result


# --------------------------------------------------------------------------
# Engine entry points (mirror repro.analysis.lint)
# --------------------------------------------------------------------------


def flow_source(source: str, path: str = "<string>") -> List[Finding]:
    """Analyze one source string; findings after inline suppression."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
                hint="file could not be analyzed",
            )
        ]
    findings = ModuleFlow(tree, path).analyze()
    lines = source.splitlines()
    allows = _inline_allows(source)
    kept: List[Finding] = []
    for f in findings:
        allowed = allows.get(f.line, set())
        if f.rule in allowed or "ALL" in allowed:
            continue
        context = lines[f.line - 1].strip() if 0 < f.line <= len(lines) else ""
        kept.append(
            Finding(
                rule=f.rule, path=f.path, line=f.line, col=f.col,
                message=f.message, hint=f.hint, severity=f.severity,
                context=context,
            )
        )
    return sort_findings(kept)


def flow_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    baseline: Optional[Path] = None,
) -> LintResult:
    """Run the dataflow analysis over every python file under ``paths``.

    Same reporting contract as :func:`repro.analysis.lint.lint_paths`:
    relative paths anchored at ``root``, known findings suppressed by the
    shared ``lint_baseline.json`` (keyed by rule + path + sink-line
    context), unused baseline entries surfaced.
    """
    root = (root or Path.cwd()).resolve()
    result = LintResult()
    baseline_entries = load_baseline(baseline) if baseline is not None else []
    baseline_index = {e.key(): e for e in baseline_entries}
    used: Set[tuple] = set()

    for file_path in discover_files(paths):
        resolved = file_path.resolve()
        try:
            rel = str(resolved.relative_to(root)).replace("\\", "/")
        except ValueError:
            rel = str(file_path).replace("\\", "/")
        findings = flow_source(resolved.read_text(), path=rel)
        result.files_checked += 1
        for f in findings:
            if f.rule == "PARSE":
                result.parse_errors.append(f)
                continue
            key = (f.rule, f.path, f.context)
            if key in baseline_index:
                used.add(key)
                result.suppressed_baseline += 1
                continue
            result.findings.append(f)

    result.findings = sort_findings(result.findings)
    result.unused_baseline = [
        e for e in baseline_entries if e.key() not in used
    ]
    return result
