"""``repro lint`` — the static-analysis entry point.

Exit codes: 0 clean, 1 findings (or parse errors, or stale baseline
entries), 2 usage error.  ``--json`` emits a machine-readable report for
CI; the human format prints one finding per block with its fix hint.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .lint import ALL_RULES, BASELINE_NAME, lint_paths, write_baseline

__all__ = ["lint_main"]


def lint_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Determinism and sim-protocol linter for this repository.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files/directories to lint (default: src/ and benchmarks/)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to check (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule id and exit"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: ./{BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(ALL_RULES):
            print(f"{rule_id}  {ALL_RULES[rule_id]}")
        return 0

    root = Path.cwd()
    paths = args.paths or [root / "src", root / "benchmarks"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path: {missing[0]}", file=sys.stderr)
        return 2

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in ALL_RULES]
        if unknown:
            print(f"repro lint: unknown rule(s): {unknown}", file=sys.stderr)
            return 2

    baseline = args.baseline
    if baseline is None and (root / BASELINE_NAME).exists():
        baseline = root / BASELINE_NAME

    result = lint_paths(paths, root=root, baseline=baseline, rules=rules)

    if args.write_baseline:
        target = args.baseline or (root / BASELINE_NAME)
        write_baseline(target, result.findings)
        print(f"wrote {len(result.findings)} entr(y/ies) to {target}")
        return 0

    if args.json:
        print(json.dumps(result.to_dict(), indent=1, sort_keys=True))
    else:
        for finding in result.parse_errors + result.findings:
            print(finding.render())
        for entry in result.unused_baseline:
            print(
                f"stale baseline entry: {entry.rule} {entry.path} "
                f"({entry.reason or 'no reason recorded'})"
            )
        status = "clean" if result.clean else f"{len(result.findings)} finding(s)"
        print(
            f"repro lint: {status}; {result.files_checked} file(s), "
            f"{result.suppressed_inline} inline suppression(s), "
            f"{result.suppressed_baseline} baselined"
        )

    if not result.clean or result.unused_baseline:
        return 1
    return 0
