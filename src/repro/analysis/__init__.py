"""Static and dynamic analysis guarding the repo's determinism claims.

Three coordinated passes:

- :mod:`repro.analysis.rules` — AST determinism linter (``DET*`` rules):
  no wall clocks, no OS entropy, all randomness via
  ``repro.sim.rng.stream``, no unordered iteration feeding event or
  message order;
- :mod:`repro.analysis.protocol` — sim-protocol checker (``SIM*`` rules)
  for the kernel's coroutine discipline;
- :mod:`repro.analysis.races` — opt-in run-time tie-order race detector
  for same-timestamp conflicting accesses to shared simulation state.

``repro lint`` (see :mod:`repro.analysis.cli`) runs the static passes
with inline-suppression and baseline workflows; ``docs/determinism.md``
documents every rule and its rationale.
"""

from .findings import Finding, Severity, sort_findings
from .lint import (
    ALL_RULES,
    BASELINE_NAME,
    LintResult,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from .cli import lint_main
from .protocol import PROTOCOL_RULES, ProtocolVisitor
from .races import Access, RaceDetector, RaceReport, watch
from .rules import DETERMINISM_RULES, DeterminismVisitor

__all__ = [
    "ALL_RULES",
    "Access",
    "BASELINE_NAME",
    "DETERMINISM_RULES",
    "DeterminismVisitor",
    "Finding",
    "LintResult",
    "PROTOCOL_RULES",
    "ProtocolVisitor",
    "RaceDetector",
    "RaceReport",
    "Severity",
    "lint_main",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "sort_findings",
    "watch",
    "write_baseline",
]
