"""Static and dynamic analysis guarding the repo's determinism claims.

Three coordinated passes:

- :mod:`repro.analysis.rules` — AST determinism linter (``DET*`` rules):
  no wall clocks, no OS entropy, all randomness via
  ``repro.sim.rng.stream``, no unordered iteration feeding event or
  message order;
- :mod:`repro.analysis.protocol` — sim-protocol checker (``SIM*`` rules)
  for the kernel's coroutine discipline;
- :mod:`repro.analysis.races` — opt-in run-time tie-order race detector
  for same-timestamp conflicting accesses to shared simulation state;
- :mod:`repro.analysis.dataflow` — interprocedural nondeterminism taint
  analysis (``DET5xx``): source → sink chains that cross function
  boundaries, which the local rules cannot see;
- :mod:`repro.analysis.explore` + :mod:`repro.analysis.schedule` —
  bounded DPOR-style schedule exploration: replay a workload under
  permuted same-instant event orders (pruned by the race detector's
  conflict sets) and certify that no tie order changes the payload.

``repro lint`` (see :mod:`repro.analysis.cli`) runs the static passes
with inline-suppression and baseline workflows; ``repro check`` (see
:mod:`repro.analysis.check_cli`) runs the explorer and the dataflow
linter; ``docs/determinism.md`` documents every rule and its rationale.
"""

from .findings import Finding, Severity, sort_findings
from .lint import (
    ALL_RULES,
    BASELINE_NAME,
    LintResult,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from .cli import lint_main
from .check_cli import check_main
from .dataflow import DATAFLOW_RULES, flow_paths, flow_source
from .explore import (
    ExplorationResult,
    Flip,
    Scenario,
    ScheduleDivergence,
    ScheduleExplorer,
    builtin_scenarios,
)
from .protocol import PROTOCOL_RULES, ProtocolVisitor
from .races import Access, RaceDetector, RaceReport, watch
from .rules import DETERMINISM_RULES, DeterminismVisitor
from .schedule import DemoteTiebreak, FifoTiebreak

__all__ = [
    "ALL_RULES",
    "Access",
    "BASELINE_NAME",
    "DATAFLOW_RULES",
    "DETERMINISM_RULES",
    "DemoteTiebreak",
    "DeterminismVisitor",
    "ExplorationResult",
    "FifoTiebreak",
    "Finding",
    "Flip",
    "LintResult",
    "PROTOCOL_RULES",
    "ProtocolVisitor",
    "RaceDetector",
    "RaceReport",
    "Scenario",
    "ScheduleDivergence",
    "ScheduleExplorer",
    "Severity",
    "builtin_scenarios",
    "check_main",
    "flow_paths",
    "flow_source",
    "lint_main",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "sort_findings",
    "watch",
    "write_baseline",
]
