"""Dynamic tie-order race detection for the cooperative sim kernel.

The kernel's event queue breaks same-time, same-priority ties with a FIFO
counter (:attr:`Simulator._seq`).  That makes every run deterministic —
but when two *different* processes touch the same shared state at the same
virtual timestamp, the outcome depends only on that tiebreak counter,
i.e. on the incidental order in which events were scheduled.  Such code is
one innocuous refactor away from changing every figure.  This is the
cooperative-scheduling analogue of a happens-before data race: there is no
ordering between the two accesses other than the queue's arrival order.

:class:`RaceDetector` is opt-in instrumentation over a
:class:`~repro.sim.core.Simulator`:

* :meth:`attach` installs a step hook recording which scheduled event
  (time, priority, FIFO sequence) is currently executing;
* :meth:`watch_store` / :meth:`watch_mapping` / :meth:`record` declare
  the shared state to track (mailbox stores, controller tables, host or
  link state) and record per-context read/write sets between yields;
* at each timestamp boundary the detector flags conflicting accesses —
  different contexts, at least one write, equal queue priority — and
  emits a deterministic, replay-stable report.

The detector never changes simulation behavior: it only observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    MutableMapping,
    Optional,
    Set,
    Tuple,
)

from ..sim.core import Event, Simulator

__all__ = ["Access", "RaceDetector", "RaceReport", "watch"]

#: Context used for accesses made outside any scheduled event (setup code
#: that runs before ``sim.run()``): it cannot race with anything.
_SETUP = ("setup", -1)


@dataclass(frozen=True)
class Access:
    """One recorded touch of a watched shared object."""

    label: str
    op: str  # "read" | "write"
    time: float
    step_seq: int
    step_priority: int
    context: str  # human-readable owner (process name or event type)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "op": self.op,
            "t": self.time,
            "seq": self.step_seq,
            "priority": self.step_priority,
            "context": self.context,
        }


@dataclass(frozen=True)
class RaceReport:
    """Two same-timestamp accesses ordered only by the FIFO tiebreak."""

    time: float
    label: str
    first: Access
    second: Access

    def message(self) -> str:
        return (
            f"t={self.time:.6g}: tie-order race on {self.label!r}: "
            f"{self.first.context} ({self.first.op}, seq {self.first.step_seq}) vs "
            f"{self.second.context} ({self.second.op}, seq {self.second.step_seq}) "
            "— relative order is decided only by the event queue's FIFO counter"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t": self.time,
            "label": self.label,
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
        }


class _TrackedDict(dict):
    """Dict shim that reports reads/writes to the detector."""

    def __init__(self, data: MutableMapping, detector: "RaceDetector", label: str):
        super().__init__(data)
        self._detector = detector
        self._label = label

    # -- reads -----------------------------------------------------------
    def __getitem__(self, key):
        self._detector.record(self._label, "read")
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._detector.record(self._label, "read")
        return super().get(key, default)

    def __contains__(self, key):
        self._detector.record(self._label, "read")
        return super().__contains__(key)

    def __iter__(self):
        self._detector.record(self._label, "read")
        return super().__iter__()

    def items(self):
        self._detector.record(self._label, "read")
        return super().items()

    def keys(self):
        self._detector.record(self._label, "read")
        return super().keys()

    def values(self):
        self._detector.record(self._label, "read")
        return super().values()

    # -- writes ----------------------------------------------------------
    def __setitem__(self, key, value):
        self._detector.record(self._label, "write")
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._detector.record(self._label, "write")
        super().__delitem__(key)

    def pop(self, *args):
        self._detector.record(self._label, "write")
        return super().pop(*args)

    def setdefault(self, key, default=None):
        self._detector.record(self._label, "write")
        return super().setdefault(key, default)

    def update(self, *args, **kwargs):
        self._detector.record(self._label, "write")
        super().update(*args, **kwargs)

    def clear(self):
        self._detector.record(self._label, "write")
        super().clear()


class RaceDetector:
    """Opt-in tie-order race detection over one simulator.

    Two same-timestamp accesses race only when *neither step
    happens-before the other*: an event enqueued while step A executes is
    causally ordered after A (A's callbacks created it), so the classic
    put-wakes-parked-receiver chain is ordered, not racy.  Only steps with
    no same-timestamp causal path between them — whose relative order
    exists purely because one was pushed onto the heap first — count.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.reports: List[RaceReport] = []
        self._attached = False
        #: Accesses of the timestamp window currently being executed.
        self._window: List[Access] = []
        self._window_time: Optional[float] = None
        #: (time, priority, seq, context string) of the executing step.
        self._current: Optional[Tuple[float, int, int, str]] = None
        #: Stable per-object context numbering (assignment order is part of
        #: the deterministic replay, so these indices are reproducible).
        self._ctx_ids: Dict[int, int] = {}
        self._watched_stores: Set[int] = set()
        self._watched_calls: Set[Tuple[int, str]] = set()
        #: (label, first ctx, second ctx) pairs already reported at the
        #: current timestamp, so one loop does not spam N reports.
        self._reported_pairs: Set[Tuple[str, str, str]] = set()
        #: id(event) -> (parent step seq, parent step time): the step that
        #: was executing when the event was enqueued.
        self._parent: Dict[int, Tuple[int, float]] = {}
        #: step seq -> transitive same-timestamp ancestors (window-local).
        self._ancestors: Dict[int, frozenset] = {}
        self._orig_enqueue: Optional[Callable[[Event, float, int], None]] = None

    # -- lifecycle -------------------------------------------------------
    def attach(self) -> "RaceDetector":
        if self.sim.step_hook is not None and self.sim.step_hook is not self._on_step:
            raise RuntimeError("simulator already has a step hook installed")
        self.sim.step_hook = self._on_step
        if self._orig_enqueue is None:
            original = self.sim._enqueue
            self._orig_enqueue = original

            def enqueue(event: Event, delay: float, priority: int) -> None:
                if not event._scheduled and self._current is not None:
                    time, _prio, seq, _ctx = self._current
                    self._parent[id(event)] = (seq, time)
                original(event, delay, priority)

            self.sim._enqueue = enqueue  # type: ignore[method-assign]
        self._attached = True
        return self

    def detach(self) -> "RaceDetector":
        if self._attached:
            self.sim.step_hook = None
            if self._orig_enqueue is not None:
                # attach() shadowed the class method with an instance
                # attribute; removing the shadow restores the original.
                self.sim.__dict__.pop("_enqueue", None)
                self._orig_enqueue = None
            self._attached = False
        return self

    def finish(self) -> List[RaceReport]:
        """Flush the last timestamp window and return all reports."""
        self._flush()
        return self.reports

    # -- step hook -------------------------------------------------------
    def _context_of(self, event: Event) -> str:
        """Stable, human-readable identity for the code an event runs."""
        proc = getattr(event, "callbacks", None)
        # A Process resuming: the event's callbacks include its _resume; use
        # the process the simulator will mark active.  Cheaper and stable:
        # name by event type + per-object stable index.
        owner: Any = event
        name = type(event).__name__
        if hasattr(event, "generator"):  # the Process object itself
            name = f"process:{getattr(event, 'name', 'process')}"
        elif proc:
            for cb in proc:
                bound = getattr(cb, "__self__", None)
                if bound is not None and hasattr(bound, "generator"):
                    owner = bound
                    name = f"process:{getattr(bound, 'name', 'process')}"
                    break
        key = id(owner)
        if key not in self._ctx_ids:
            self._ctx_ids[key] = len(self._ctx_ids)
        return f"{name}#{self._ctx_ids[key]}"

    def _on_step(self, time: float, priority: int, seq: int, event: Event) -> None:
        if self._window_time is not None and time != self._window_time:
            self._flush()
        self._window_time = time
        # Same-timestamp happens-before: inherit the enqueuing step's
        # ancestry when that step ran at this timestamp.
        parent = self._parent.pop(id(event), None)
        if parent is not None and parent[1] == time:
            parent_seq = parent[0]
            self._ancestors[seq] = frozenset(
                {parent_seq} | set(self._ancestors.get(parent_seq, frozenset()))
            )
        self._current = (time, priority, seq, self._context_of(event))

    # -- recording -------------------------------------------------------
    def record(self, label: str, op: str) -> None:
        """Record one read/write of the shared object named ``label``."""
        if self._current is None:
            time, priority, seq = self.sim.now, -1, -1
            context = _SETUP[0]
        else:
            time, priority, seq, context = self._current
        access = Access(
            label=label,
            op=op,
            time=time,
            step_seq=seq,
            step_priority=priority,
            context=context,
        )
        self._window.append(access)
        self._check(access)

    def watch_store(self, store: Any, label: str) -> None:
        """Track a :class:`repro.sim.Store`: puts and gets are conflicting
        (consuming) operations, so any same-timestamp pair from different
        contexts is order-sensitive."""
        if id(store) in self._watched_stores:
            return
        self._watched_stores.add(id(store))
        for op_name in ("put", "get", "try_get"):
            original = getattr(store, op_name)

            def wrapped(*args, _original=original, _label=label, **kwargs):
                self.record(_label, "write")
                return _original(*args, **kwargs)

            setattr(store, op_name, wrapped)

    def watch_mapping(self, obj: Any, attr: str, label: str) -> None:
        """Replace ``obj.attr`` (a dict) with a read/write-recording shim."""
        current = getattr(obj, attr)
        if isinstance(current, _TrackedDict):
            return
        setattr(obj, attr, _TrackedDict(current, self, label))

    def watch_calls(
        self, obj: Any, methods: Iterable[str], label: str, op: str = "write"
    ) -> None:
        """Record every call of the named methods as one ``op`` access.

        For state that is not a plain dict (deques of restart timestamps,
        admission counters, rank bookkeeping) the mutation surface *is*
        the method: wrapping it records one access per invocation, which
        is exactly the granularity the tie-order analysis needs — two
        same-timestamp calls from different contexts are order-sensitive.
        The wrapper shadows the bound method with an instance attribute,
        so even callbacks that capture ``self`` route through it.
        """
        for name in methods:
            key = (id(obj), name)
            if key in self._watched_calls:
                continue
            self._watched_calls.add(key)
            original = getattr(obj, name)

            def wrapped(*args, _original=original, _label=label, _op=op, **kwargs):
                self.record(_label, _op)
                return _original(*args, **kwargs)

            setattr(obj, name, wrapped)

    # -- analysis --------------------------------------------------------
    def _check(self, access: Access) -> None:
        """Compare the new access against the current timestamp window."""
        if access.step_seq < 0:
            return  # setup accesses cannot race
        for other in self._window[:-1]:
            if other.label != access.label:
                continue
            if other.context == access.context:
                continue  # program order within one process/callback chain
            if other.step_seq == access.step_seq:
                continue  # same scheduled event: one atomic callback chain
            if other.step_priority != access.step_priority:
                continue  # URGENT-vs-NORMAL order is semantic, not a tie
            if other.op == "read" and access.op == "read":
                continue
            if other.step_seq < 0:
                continue
            # Happens-before: the older step is an ancestor of the newer
            # one — their order is causal, not a heap-arrival accident.
            older, newer = sorted((other.step_seq, access.step_seq))
            if older in self._ancestors.get(newer, frozenset()):
                continue
            pair = (access.label, other.context, access.context)
            if pair in self._reported_pairs:
                continue
            self._reported_pairs.add(pair)
            first, second = sorted(
                (other, access), key=lambda a: (a.step_seq, a.op, a.context)
            )
            self.reports.append(
                RaceReport(
                    time=access.time, label=access.label,
                    first=first, second=second,
                )
            )

    def _flush(self) -> None:
        self._window.clear()
        self._reported_pairs.clear()
        self._ancestors.clear()


def watch(detector: RaceDetector, host: Any) -> None:
    """Instrument one cluster host: every current and future mailbox.

    Existing mailboxes are wrapped immediately; the host's lazy
    ``mailbox(port)`` factory is shimmed so ports created later are
    tracked too.
    """
    for port in sorted(host._mailboxes):
        detector.watch_store(host._mailboxes[port], f"{host.name}:{port}")
    original = host.mailbox

    def mailbox(port: str, _original=original, _host=host.name):
        box = _original(port)
        detector.watch_store(box, f"{_host}:{port}")
        return box

    host.mailbox = mailbox
