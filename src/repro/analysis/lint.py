"""Static-analysis engine: file discovery, passes, suppressions, baseline.

The engine runs every registered pass (determinism rules, sim-protocol
rules — see :data:`ALL_RULES`) over a set of files and post-filters the
findings through two suppression channels:

* **inline**: ``# repro: allow[DET103] -- reason`` on the flagged line
  silences the named rule(s) for that line only;
* **baseline**: a checked-in JSON file of known findings, matched by
  line-number-independent fingerprint, each entry carrying a ``reason``.

Both channels are intentionally loud in the result object (counts plus
unused-baseline detection) so suppressions stay justified and current.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .findings import Finding, sort_findings
from .protocol import PROTOCOL_RULES, ProtocolVisitor
from .rules import (
    ALLOW_SATISFIES,
    DETERMINISM_RULES,
    DeterminismVisitor,
    OBSERVABILITY_RULES,
    ObservabilityVisitor,
)

__all__ = [
    "ALL_RULES",
    "BASELINE_NAME",
    "LintResult",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]

#: Every known rule id -> one-line summary.
ALL_RULES: Dict[str, str] = {
    **DETERMINISM_RULES,
    **PROTOCOL_RULES,
    **OBSERVABILITY_RULES,
}

#: Default name of the checked-in baseline file (repo root).
BASELINE_NAME = "lint_baseline.json"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")

#: The one module allowed to construct numpy generators directly.
_RNG_HOME_SUFFIX = ("repro", "sim", "rng.py")


@dataclass
class BaselineEntry:
    rule: str
    path: str
    context: str
    reason: str = ""

    def key(self) -> tuple:
        return (self.rule, self.path, self.context)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed_inline: int = 0
    suppressed_baseline: int = 0
    unused_baseline: List[BaselineEntry] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "parse_errors": [f.to_dict() for f in self.parse_errors],
            "suppressed_inline": self.suppressed_inline,
            "suppressed_baseline": self.suppressed_baseline,
            "unused_baseline": [vars(e) for e in self.unused_baseline],
        }


def _is_rng_home(path: str) -> bool:
    return tuple(Path(path).parts[-3:]) == _RNG_HOME_SUFFIX


def _inline_allows(source: str) -> Dict[int, Set[str]]:
    """line number -> rule ids allowed on that line."""
    allows: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            allows[lineno] = rules
    return allows


def _lint_one(
    source: str,
    path: str,
    rules: Optional[Iterable[str]] = None,
) -> tuple:
    """(kept findings, inline-suppressed count) for one source string."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        parse_error = Finding(
            rule="PARSE",
            path=path,
            line=exc.lineno or 0,
            col=(exc.offset or 0),
            message=f"syntax error: {exc.msg}",
            hint="file could not be analyzed",
        )
        return [parse_error], 0
    lines = source.splitlines()
    findings: List[Finding] = []
    findings += DeterminismVisitor(path, is_rng_home=_is_rng_home(path)).run(tree)
    findings += ProtocolVisitor(path).run(tree)
    findings += ObservabilityVisitor(path).run(tree)
    if rules is not None:
        wanted = set(rules)
        findings = [f for f in findings if f.rule in wanted]
    allows = _inline_allows(source)
    kept: List[Finding] = []
    suppressed = 0
    for f in findings:
        context = lines[f.line - 1].strip() if 0 < f.line <= len(lines) else ""
        allowed = allows.get(f.line, set())
        satisfies = ALLOW_SATISFIES.get(f.rule, frozenset({f.rule}))
        if allowed & satisfies or "ALL" in allowed:
            suppressed += 1
            continue
        kept.append(
            Finding(
                rule=f.rule, path=f.path, line=f.line, col=f.col,
                message=f.message, hint=f.hint, severity=f.severity,
                context=context,
            )
        )
    return sort_findings(kept), suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string; returns findings after inline suppression.

    ``rules`` optionally restricts the report to a subset of rule ids.
    """
    findings, _suppressed = _lint_one(source, path, rules)
    return findings


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths``, in deterministic sorted order."""
    files: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
    return sorted(set(files))


def load_baseline(path: Path) -> List[BaselineEntry]:
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    return [
        BaselineEntry(
            rule=e["rule"],
            path=e["path"],
            context=e.get("context", ""),
            reason=e.get("reason", ""),
        )
        for e in payload.get("entries", [])
    ]


#: Reason stamped on freshly baselined findings.  The field is free-form
#: documentation for reviewers — ``--baseline-write`` cannot know *why* a
#: finding is acceptable, so it records that the entry was auto-accepted
#: and from which state; maintainers edit it in place when they triage.
AUTO_BASELINE_REASON = "accepted when the baseline was regenerated"


def write_baseline(path: Path, findings: List[Finding]) -> None:
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "context": f.context,
            "reason": AUTO_BASELINE_REASON,
        }
        for f in sort_findings(findings)
    ]
    path.write_text(json.dumps({"entries": entries}, indent=1) + "\n")


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    baseline: Optional[Path] = None,
    rules: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every python file under ``paths``.

    ``root`` anchors the relative paths used in reports and baseline
    matching (defaults to the current working directory).  ``baseline``
    points at a JSON baseline file; missing files mean an empty baseline.
    """
    root = (root or Path.cwd()).resolve()
    result = LintResult()
    baseline_entries = load_baseline(baseline) if baseline is not None else []
    baseline_index: Dict[tuple, BaselineEntry] = {
        e.key(): e for e in baseline_entries
    }
    used_baseline: Set[tuple] = set()

    for file_path in discover_files(paths):
        resolved = file_path.resolve()
        try:
            rel = str(resolved.relative_to(root)).replace("\\", "/")
        except ValueError:
            rel = str(file_path).replace("\\", "/")
        source = resolved.read_text()
        raw, suppressed = _lint_one(source, path=rel, rules=rules)
        result.files_checked += 1
        result.suppressed_inline += suppressed
        for f in raw:
            if f.rule == "PARSE":
                result.parse_errors.append(f)
                continue
            key = (f.rule, f.path, f.context)
            if key in baseline_index:
                used_baseline.add(key)
                result.suppressed_baseline += 1
                continue
            result.findings.append(f)

    result.findings = sort_findings(result.findings)
    result.unused_baseline = [
        e for e in baseline_entries if e.key() not in used_baseline
    ]
    return result
