"""Tiebreak policies: controlled same-instant event ordering.

The kernel breaks same-``(time, priority)`` scheduling ties with a FIFO
counter (:attr:`repro.sim.core.Simulator._seq`).  A *tiebreak policy*
replaces that counter's heap key, which is the only degree of freedom a
deterministic cooperative scheduler has: changing the key reorders
events **within** a tie window and nothing else (virtual time and the
URGENT/NORMAL priority bands still dominate the sort).

Two policies live here:

* :class:`FifoTiebreak` — the identity policy: installing it is
  byte-identical to installing nothing (regression-tested), which is the
  anchor for every exploration claim below.
* :class:`DemoteTiebreak` — the schedule explorer's workhorse: a map of
  ``seq -> rank`` *directives*.  An event whose FIFO sequence number is
  named by a directive is demoted past every lower-ranked event of its
  own tie window (``key = seq + rank * RANK_STRIDE``); all other events
  keep their FIFO key.  Because a replay is deterministic, the prefix of
  a run up to the first demoted window assigns exactly the same sequence
  numbers as the run the directive was derived from — which is what lets
  :mod:`repro.analysis.explore` name "the other side" of an observed
  race by its sequence number alone.

Policies are installed at :class:`~repro.sim.core.Simulator`
construction (``Simulator(tiebreak=...)``, ``Testbed(tiebreak=...)``,
or the ``tiebreak=`` parameter of ``run_chaos``/``run_recovery``);
installing one mid-run is rejected by :meth:`Simulator.set_tiebreak`
because keys from different policies are not comparable.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..sim.core import Event

__all__ = ["FifoTiebreak", "DemoteTiebreak", "RANK_STRIDE"]

#: Demotion stride: one rank moves an event past every same-window FIFO
#: key while preserving the relative order of equally-ranked events.
#: Far larger than any realistic sequence counter, so ranked keys can
#: never collide with plain FIFO keys.
RANK_STRIDE = 1 << 60


class FifoTiebreak:
    """The identity policy: byte-identical to no policy at all."""

    def key(self, time: float, priority: int, seq: int, event: Event) -> int:
        return seq


class DemoteTiebreak:
    """Demote named events past their same-``(time, priority)`` window.

    ``directives`` maps a FIFO sequence number to a rank ``>= 1``; the
    matching event's heap key becomes ``seq + rank * RANK_STRIDE`` so it
    fires after every lower-ranked event scheduled at the same
    ``(time, priority)``.  An empty directive map is byte-identical to
    FIFO.  :attr:`applied` records which directives actually matched an
    enqueue — the explorer uses it to reject stale flip descriptions.

    With ``observe=True`` the policy also counts, per ``(time,
    priority)`` pair, how many events were enqueued — a cheap census of
    the tie windows a schedule actually has (:meth:`tie_windows`).
    """

    def __init__(
        self,
        directives: Optional[Mapping[int, int]] = None,
        observe: bool = False,
    ):
        self.directives: Dict[int, int] = dict(directives or {})
        for seq, rank in self.directives.items():
            if rank < 1:
                raise ValueError(f"directive rank must be >= 1: {seq}->{rank}")
        #: seq -> rank for every directive that matched an enqueue.
        self.applied: Dict[int, int] = {}
        self.observe = observe
        self._window_counts: Dict[tuple, int] = {}

    def key(self, time: float, priority: int, seq: int, event: Event) -> int:
        if self.observe:
            window = (time, priority)
            self._window_counts[window] = self._window_counts.get(window, 0) + 1
        rank = self.directives.get(seq)
        if rank is None:
            return seq
        self.applied[seq] = rank
        return seq + rank * RANK_STRIDE

    def tie_windows(self) -> int:
        """Number of ``(time, priority)`` windows holding >= 2 events."""
        return sum(1 for n in self._window_counts.values() if n > 1)

    def events_in_ties(self) -> int:
        """Total events that shared a window with at least one other."""
        return sum(n for n in self._window_counts.values() if n > 1)
