"""Determinism lint rules (the ``DET`` family).

Every rule enforces one invariant behind the repo's bit-reproducibility
claim: all randomness flows through ``repro.sim.rng.stream``, no code
reads wall clocks or OS entropy, and nothing that feeds event scheduling,
message emission, or serialization iterates an unordered collection
without an explicit ``sorted(...)``.

Rule ids are stable API: they appear in inline suppressions
(``# repro: allow[DET103]``), in the checked-in baseline, and in CI
output.  See ``docs/determinism.md`` for the rationale of each rule.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .findings import Finding

__all__ = [
    "ALLOW_SATISFIES",
    "DETERMINISM_RULES",
    "DeterminismVisitor",
    "OBSERVABILITY_RULES",
    "ObservabilityVisitor",
]

#: rule id -> one-line summary (docs, CLI `--rules`, allow[] validation).
DETERMINISM_RULES: Dict[str, str] = {
    "DET101": "wall-clock read (time.time/monotonic/perf_counter, datetime.now, ...)",
    "DET102": "OS entropy source (os.urandom, uuid.uuid1/4, secrets.*, SystemRandom)",
    "DET103": "global/unseeded RNG (random.*, numpy.random.*) outside repro/sim/rng.py",
    "DET201": "iteration over an unordered set without sorted(...)",
    "DET202": "filesystem enumeration (os.listdir, glob, iterdir) without sorted(...)",
    "DET203": "dict-view iteration feeding a scheduling/emission sink without sorted(...)",
    "DET301": "ordering by id()/hash() (memory-address-dependent order)",
    "DET401": "branch condition depends on an environment variable",
}

#: rule id -> one-line summary (the ``OBS`` family).
OBSERVABILITY_RULES: Dict[str, str] = {
    "OBS101": "direct print() in runtime/sim/faults code "
    "(emit through the trace recorder instead)",
    "OBS102": "span id from .begin() discarded or never referenced "
    "(the span can never be finished)",
    "OBS103": "bare wall-clock read in runtime/sim/faults code without a "
    "host-side-telemetry allow annotation",
    "OBS104": "mutating kernel/runtime call inside a read-only inspector "
    "accessor (repro.obs.interactive)",
}

#: Allow-annotation aliasing: an inline ``# repro: allow[X]`` naming any
#: rule in the value set satisfies the key rule too.  OBS103 exists to
#: force wall-clock reads in kernel code to *carry a justification*; the
#: established justification convention is the DET101 allow
#: (``# repro: allow[DET101] -- host-side ... telemetry``), so that
#: annotation is the fix, not a second stacked allow.
ALLOW_SATISFIES: Dict[str, frozenset] = {
    "OBS103": frozenset({"OBS103", "DET101"}),
}

#: Directory fragments whose files must not print directly: these modules
#: run inside the simulation and own the structured-trace contract.
_OBS_GATED = ("repro/runtime/", "repro/sim/", "repro/faults/")

#: Files whose ``*Inspector*`` classes carry the read-only contract
#: (OBS104): every accessor must leave the run byte-identical, so none
#: may call a mutating kernel/runtime API.
_OBS104_GATED = ("repro/obs/interactive",)

#: Method names that mutate simulation, runtime, or recorder state when
#: called on *any* receiver — scheduling events, moving fluid-share
#: clocks, steering the controller, closing accounting windows, or
#: writing metrics.  Passive counterparts (``peek``, ``served_now``,
#: ``summary``, ``estimates``, ``stats``, ``totals``) are the inspector
#: vocabulary.  ``schedule*`` is matched by prefix.
_OBS104_MUTATING = frozenset({
    "set_speed", "set_weight", "set_cap", "set_limits", "set_config",
    "send", "succeed", "fail", "interrupt", "submit", "cancel", "put",
    "timeout", "process", "step", "run",
    "sync", "snapshot", "utilization_since",
    "select", "select_initial", "retarget", "force_config",
    "resume_normal", "attach", "detach", "bind", "unbind",
    "install", "inject", "crash", "restore", "finalize", "finish",
    "inc", "observe", "begin", "end", "instant",
})

#: Canonical call targets that read wall clocks.
_WALLCLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "time.process_time", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Canonical call targets that draw OS entropy.
_ENTROPY = {
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
    "random.SystemRandom",
}

#: Module prefixes whose *call* use constitutes global/unseeded RNG.
_RNG_PREFIXES = ("random.", "numpy.random.")

#: Files allowed to construct numpy generators directly: the one blessed
#: seed-derivation module.
_RNG_HOME = "repro/sim/rng.py"

#: Calls that enumerate the filesystem in OS-dependent order.
_FS_ENUM = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_FS_ENUM_ATTRS = {"iterdir", "glob", "rglob"}

#: Attribute/function names that schedule events, emit messages, or
#: serialize state — the sinks whose input order must be canonical.
_ORDER_SINKS = {
    "timeout", "process", "schedule_callback", "put", "send", "succeed",
    "fail", "interrupt", "emit", "publish", "enqueue", "dump", "dumps",
}

_DICT_VIEWS = {"items", "keys", "values"}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Aliases:
    """Import-alias table so ``from time import time as t; t()`` resolves."""

    def __init__(self) -> None:
        self._map: Dict[str, str] = {}

    def collect(self, tree: ast.AST) -> "_Aliases":
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._map[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self._map[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return self

    def resolve(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        base = self._map.get(head, head)
        return f"{base}.{rest}" if rest else base


class DeterminismVisitor(ast.NodeVisitor):
    """Single-pass AST visitor emitting every DET-family finding."""

    def __init__(self, path: str, is_rng_home: bool = False):
        self.path = path
        self.is_rng_home = is_rng_home
        self.findings: List[Finding] = []
        self.aliases = _Aliases()
        #: Names assigned a syntactic set in the enclosing function scope.
        self._set_names: List[Set[str]] = [set()]
        #: Nodes sanctioned by an enclosing ``sorted(...)`` call.
        self._sorted_args: Set[int] = set()
        #: Nonzero while inside an If/While/IfExp test subtree.
        self._in_test = 0

    # -- entry point ----------------------------------------------------
    def run(self, tree: ast.AST) -> List[Finding]:
        self.aliases.collect(tree)
        self.visit(tree)
        return self.findings

    def _flag(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                hint=hint,
            )
        )

    # -- scope tracking -------------------------------------------------
    def _visit_function(self, node: ast.AST) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names[-1].add(target.id)
        self.generic_visit(node)

    # -- helpers --------------------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_names)
        return False

    def _is_dict_view(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
            and not node.args
        )

    def _is_fs_enum(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = _dotted(node.func)
        if name is not None and self.aliases.resolve(name) in _FS_ENUM:
            return True
        # Pathlib idiom: .iterdir()/.glob()/.rglob() on any receiver.
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_ENUM_ATTRS
        )

    @staticmethod
    def _contains_sink(nodes: List[ast.stmt]) -> bool:
        for stmt in nodes:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    func = sub.func
                    name = (
                        func.attr
                        if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name) else None
                    )
                    if name in _ORDER_SINKS:
                        return True
        return False

    # -- calls: DET101/102/103, DET202, DET301 --------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        resolved = self.aliases.resolve(name) if name else None

        if resolved is not None:
            if resolved in _WALLCLOCK:
                self._flag(
                    "DET101", node,
                    f"wall-clock read: {resolved}()",
                    "use the simulator's virtual clock (sim.now) instead",
                )
            elif resolved in _ENTROPY:
                self._flag(
                    "DET102", node,
                    f"OS entropy source: {resolved}()",
                    "derive randomness from repro.sim.rng.stream(seed, name)",
                )
            elif (
                resolved.startswith(_RNG_PREFIXES) or resolved == "random"
            ) and not self.is_rng_home:
                self._flag(
                    "DET103", node,
                    f"global/unseeded RNG call: {resolved}()",
                    "draw from a named stream: repro.sim.rng.stream(seed, name)",
                )

        if name == "sorted":
            for arg in node.args:
                self._sorted_args.add(id(arg))

        if self._is_fs_enum(node) and id(node) not in self._sorted_args:
            self._flag(
                "DET202", node,
                "filesystem enumeration order is OS-dependent",
                "wrap the call in sorted(...)",
            )

        # DET301: sorted/min/max/.sort keyed on id() or hash().
        sort_name = (
            node.func.attr if isinstance(node.func, ast.Attribute) else name
        )
        if sort_name in ("sorted", "min", "max", "sort"):
            for kw in node.keywords:
                if kw.arg == "key" and self._keys_on_identity(kw.value):
                    self._flag(
                        "DET301", node,
                        f"{sort_name}() keyed on id()/hash(): order depends on "
                        "memory layout / hash randomization",
                        "sort on a stable attribute (name, sequence number)",
                    )
        self.generic_visit(node)

    @staticmethod
    def _keys_on_identity(key: ast.AST) -> bool:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return True
        if isinstance(key, ast.Lambda):
            for sub in ast.walk(key.body):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in ("id", "hash")
                ):
                    return True
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        # DET301: ordering comparison between id()/hash() results.
        if any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if sum(1 for o in operands if self._is_identity_call(o)) >= 2:
                self._flag(
                    "DET301", node,
                    "ordering comparison between id()/hash() values",
                    "compare stable keys instead",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_identity_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("id", "hash")
        )

    # -- iteration: DET201, DET203 --------------------------------------
    def _check_iter(self, iter_node: ast.AST, body: List[ast.stmt]) -> None:
        if id(iter_node) in self._sorted_args:
            return
        if isinstance(iter_node, ast.Call) and _dotted(iter_node.func) == "sorted":
            return
        if self._is_set_expr(iter_node):
            self._flag(
                "DET201", iter_node,
                "iteration over an unordered set",
                "iterate sorted(<set>) so traversal order is deterministic",
            )
        elif self._is_dict_view(iter_node) and self._contains_sink(body):
            self._flag(
                "DET203", iter_node,
                "dict-view iteration feeds an event/message/serialization sink",
                "iterate sorted(d.items()) so the sink sees a canonical order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node.body)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        elements = [
            e
            for e in (
                getattr(node, "elt", None),
                getattr(node, "key", None),
                getattr(node, "value", None),
            )
            if e is not None
        ]
        wrappers = [ast.Expr(value=e) for e in elements]
        for gen in node.generators:
            self._check_iter(gen.iter, wrappers)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- env-dependent branches: DET401 ---------------------------------
    def _check_test(self, test: ast.AST) -> None:
        for sub in ast.walk(test):
            resolved = None
            if isinstance(sub, ast.Call):
                name = _dotted(sub.func)
                resolved = self.aliases.resolve(name) if name else None
            dotted = _dotted(sub) if isinstance(sub, ast.Attribute) else None
            if resolved == "os.getenv" or (
                dotted is not None and self.aliases.resolve(dotted) == "os.environ"
            ):
                self._flag(
                    "DET401", sub,
                    "branch condition depends on an environment variable",
                    "thread the setting through an explicit parameter / spec",
                )

    def visit_If(self, node: ast.If) -> None:
        self._check_test(node.test)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_test(node.test)
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._check_test(node.test)
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._check_test(node.test)
        self.generic_visit(node)


#: Scope boundaries for the OBS102 leaked-span analysis.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _is_begin_call(node: ast.AST) -> bool:
    """A ``<recorder>.begin(...)`` call expression."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "begin"
    )


class ObservabilityVisitor(ast.NodeVisitor):
    """The ``OBS`` family: structured-trace hygiene.

    **OBS101** (gated to ``repro/runtime``, ``repro/sim``,
    ``repro/faults``): code there runs *inside* simulated executions.
    Ad-hoc ``print(...)`` bypasses the span/metric trace (so the output
    is invisible to ``repro trace``) and interleaves nondeterministically
    with any real exporter output.  Files elsewhere — CLIs, experiments,
    figure renderers — print freely.

    **OBS102** (everywhere): a span id returned by ``recorder.begin(...)``
    that is immediately discarded, or bound to a local name that is never
    referenced again in the enclosing scope, can never be passed to
    ``end()`` — the span leaks open on every path.  Ids stored on
    attributes/subscripts (``message.span = obs.begin(...)``) escape the
    local scope and are not flagged.

    **OBS103** (gated like OBS101): a wall-clock read in kernel code
    either leaks host time into simulation state (a DET101 bug) or is
    deliberate host-side telemetry — and the two must be visually
    distinguishable at the call site.  The fix for legitimate telemetry
    is the standard annotation, ``# repro: allow[DET101] -- host-side
    ... telemetry``, which satisfies OBS103 too (see
    :data:`ALLOW_SATISFIES`); an *unannotated* read is flagged even
    where plain DET101 linting is not running.

    **OBS104** (gated to ``repro/obs/interactive``): methods of
    ``*Inspector*`` classes are the read-only surface of the interactive
    context — stepped runs with inspection must stay byte-identical to
    uninterrupted ones, so no accessor may call a mutating kernel or
    runtime API (``set_speed``, ``send``, ``succeed``, ``schedule*``,
    ``sync``, ``select``, ...).
    """

    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        self.aliases = _Aliases()
        norm = path.replace("\\", "/")
        self._gated = any(fragment in norm for fragment in _OBS_GATED)
        self._inspector_gated = any(
            fragment in norm for fragment in _OBS104_GATED
        )

    def run(self, tree: ast.AST) -> List[Finding]:
        if self._gated:
            self.aliases.collect(tree)
            self.visit(tree)
        self._check_leaked_spans(tree)
        if self._inspector_gated:
            self._check_inspectors(tree)
        return self.findings

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.findings.append(
                Finding(
                    rule="OBS101",
                    path=self.path,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0) + 1,
                    message="direct print() inside simulation code",
                    hint="record a span/instant on sim.obs (repro.obs) "
                    "or return the data to the caller",
                )
            )
        name = _dotted(node.func)
        resolved = self.aliases.resolve(name) if name else None
        if resolved in _WALLCLOCK:
            self.findings.append(
                Finding(
                    rule="OBS103",
                    path=self.path,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=f"bare wall-clock read in kernel code: {resolved}()",
                    hint="sim state must use the virtual clock (sim.now); "
                    "if this is host-side telemetry, annotate the line: "
                    "# repro: allow[DET101] -- host-side <what> telemetry",
                )
            )
        self.generic_visit(node)

    # -- OBS102: leaked spans -------------------------------------------
    def _check_leaked_spans(self, tree: ast.AST) -> None:
        scopes = [tree] + [
            n for n in ast.walk(tree) if isinstance(n, _SCOPE_NODES)
        ]
        for scope in scopes:
            self._check_scope(scope)

    def _check_scope(self, scope: ast.AST) -> None:
        body = getattr(scope, "body", None)
        if body is None or isinstance(body, ast.expr):  # Lambda: expr body
            return
        # Load-context name uses anywhere under this scope — including
        # nested closures, which legitimately capture a span id.
        loads: Set[str] = {
            n.id
            for n in ast.walk(scope)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }
        for stmt in self._own_statements(body):
            if isinstance(stmt, ast.Expr) and _is_begin_call(stmt.value):
                self._flag_leak(
                    stmt.value,
                    "span id from .begin() is discarded",
                )
            elif isinstance(stmt, ast.Assign) and _is_begin_call(stmt.value):
                targets = stmt.targets
                if len(targets) == 1 and isinstance(targets[0], ast.Name):
                    name = targets[0].id
                    if name not in loads:
                        self._flag_leak(
                            stmt.value,
                            f"span id {name!r} from .begin() is never "
                            "referenced again",
                        )

    @staticmethod
    def _own_statements(body: List[ast.stmt]):
        """Statements of one scope, not descending into nested scopes."""
        stack = list(body)
        while stack:
            stmt = stack.pop()
            yield stmt
            if isinstance(stmt, _SCOPE_NODES):
                continue
            for child in ast.iter_child_nodes(stmt):
                # excepthandler/match_case are statement *containers* that
                # are not themselves ast.stmt; descend through them too.
                if isinstance(child, (ast.stmt, ast.excepthandler)) or (
                    child.__class__.__name__ == "match_case"
                ):
                    stack.append(child)

    # -- OBS104: mutating calls in inspector accessors ------------------
    def _check_inspectors(self, tree: ast.AST) -> None:
        """Inspector classes in gated files must stay strictly passive.

        Any ``<receiver>.<mutator>(...)`` call inside a class whose name
        contains ``Inspector`` is flagged: the receiver could be the
        simulator, a fluid share, the controller, or the recorder, and
        one mutating call breaks the inspection byte-identity guarantee
        (see :mod:`repro.obs.interactive`).  ``schedule*`` names match by
        prefix so new kernel scheduling entry points are covered.
        """
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef) or "Inspector" not in cls.name:
                continue
            for node in ast.walk(cls):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                attr = node.func.attr
                if attr in _OBS104_MUTATING or attr.startswith("schedule"):
                    self.findings.append(
                        Finding(
                            rule="OBS104",
                            path=self.path,
                            line=getattr(node, "lineno", 0),
                            col=getattr(node, "col_offset", 0) + 1,
                            message=f"mutating call .{attr}(...) inside "
                            f"read-only inspector class {cls.name!r}",
                            hint="inspectors must use passive reads only "
                            "(peek/served_now/summary/estimates/stats); "
                            "mutations belong on InteractiveContext "
                            "interventions",
                        )
                    )

    def _flag_leak(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule="OBS102",
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                hint="keep the id and call end(sid) on every path "
                "(or use the `with recorder.span(...)` context manager)",
            )
        )
