"""``repro bench check`` — compare fresh benchmark numbers to baselines.

Benchmarks record their headline numbers as ``BENCH_*.json`` files in
``benchmarks/out/`` (e.g. ``BENCH_exec.json`` from the sweep-engine
benchmark, ``BENCH_obs.json`` from the observability benchmark).  The
committed copies are the *baselines*; a CI run regenerates them and this
command reports what moved.

Comparison rules, per field:

* **exact** — booleans, integers, and strings must match bit-for-bit.
  These encode deterministic guarantees (``bytes_identical``, cell
  counts), so any drift is a regression.
* **band** — floats are wall-clock-derived (timings, speedups, overhead
  ratios) and compared within a relative tolerance band.  Direction
  matters: a timing (key ending ``_s`` or containing ``overhead``) only
  regresses when it *grows* past the band; a throughput-like value
  (``speedup``, ``cache_hit_rate``) only regresses when it *shrinks*.
  Movement past the band in the good direction is an ``improved`` note,
  not a failure.
* **info** — machine-dependent fields (``cpu_count``,
  ``speedup_asserted``) are reported but never fail the check.

Exit codes: 0 no blocking regressions, 1 blocking regressions (or
missing benchmarks), 2 usage error.  ``--block-on`` picks what blocks:
``all`` (the default) fails on any regression, while ``exact`` fails
only on exact-field and structural regressions (missing files/fields,
unreadable records) and downgrades band drift to a warning — that is
what CI runs, so the deterministic guarantees gate merges while
wall-clock noise stays advisory.  ``--out`` writes the full comparison
as JSON so CI can upload it as an artifact.

``--update <name>`` (repeatable) accepts the fresh numbers of the named
benchmark as the new baseline: the comparison still reports what moved
(as ``updated`` rows), but that benchmark's drift never blocks, and the
fresh record is copied over the baseline copy after the report.  Names
are short (``sim`` means ``BENCH_sim.json``); re-run the benchmark
first — updating from a stale fresh directory is refused only when the
file is missing outright.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["apply_updates", "bench_main", "compare_dirs", "compare_records"]

#: Default relative tolerance for wall-clock-derived floats.  Generous on
#: purpose: CI machines are noisy and the exact fields carry the
#: deterministic guarantees.
DEFAULT_TOLERANCE = 0.5

#: Fields reported but never compared: they describe the machine, not the
#: code under test.
_INFO_FIELDS = frozenset({"cpu_count", "speedup_asserted"})


def _bench_filename(name: str) -> str:
    """Normalise a benchmark name (``sim`` / ``BENCH_sim`` /
    ``BENCH_sim.json``) to its file name."""
    if name.endswith(".json"):
        name = name[: -len(".json")]
    if not name.startswith("BENCH_"):
        name = f"BENCH_{name}"
    return f"{name}.json"


def _is_timing(key: str) -> bool:
    """True when lower is better for this float field."""
    return key.endswith("_s") or "overhead" in key


def _field_kind(key: str, value) -> str:
    if key in _INFO_FIELDS:
        return "info"
    if isinstance(value, bool) or isinstance(value, int):
        return "exact"
    if isinstance(value, float):
        return "band"
    return "exact"


def compare_records(
    name: str, fresh: Dict, baseline: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[Dict]:
    """Field-by-field comparison of one benchmark record pair."""
    rows: List[Dict] = []
    for key in sorted(set(fresh) | set(baseline)):
        if key not in baseline:
            rows.append(
                {"benchmark": name, "field": key, "kind": "new",
                 "fresh": fresh[key], "baseline": None, "status": "new"}
            )
            continue
        if key not in fresh:
            rows.append(
                {"benchmark": name, "field": key, "kind": "missing",
                 "fresh": None, "baseline": baseline[key],
                 "status": "regression"}
            )
            continue
        f, b = fresh[key], baseline[key]
        kind = _field_kind(key, b)
        row = {
            "benchmark": name, "field": key, "kind": kind,
            "fresh": f, "baseline": b,
        }
        if kind == "info":
            row["status"] = "info"
        elif kind == "exact":
            row["status"] = "ok" if f == b else "regression"
        else:  # band
            base = abs(float(b))
            delta = float(f) - float(b)
            rel = delta / base if base > 1e-12 else (0.0 if delta == 0 else float("inf"))
            row["delta_rel"] = round(rel, 4) if rel != float("inf") else "inf"
            worse = rel > tolerance if _is_timing(key) else rel < -tolerance
            better = rel < -tolerance if _is_timing(key) else rel > tolerance
            row["status"] = (
                "regression" if worse else "improved" if better else "ok"
            )
        rows.append(row)
    return rows


def compare_dirs(
    fresh_dir: Path, baseline_dir: Path, tolerance: float = DEFAULT_TOLERANCE
) -> Dict:
    """Compare every ``BENCH_*.json`` pair across two directories."""
    fresh_files = {p.name: p for p in sorted(fresh_dir.glob("BENCH_*.json"))}
    base_files = {p.name: p for p in sorted(baseline_dir.glob("BENCH_*.json"))}
    rows: List[Dict] = []
    for name in sorted(set(fresh_files) | set(base_files)):
        if name not in base_files:
            rows.append(
                {"benchmark": name, "field": "*", "kind": "new",
                 "fresh": "present", "baseline": None, "status": "new"}
            )
            continue
        if name not in fresh_files:
            rows.append(
                {"benchmark": name, "field": "*", "kind": "missing",
                 "fresh": None, "baseline": "present", "status": "regression"}
            )
            continue
        try:
            fresh = json.loads(fresh_files[name].read_text())
            baseline = json.loads(base_files[name].read_text())
        except (OSError, json.JSONDecodeError) as exc:
            rows.append(
                {"benchmark": name, "field": "*", "kind": "unreadable",
                 "fresh": str(exc), "baseline": None, "status": "regression"}
            )
            continue
        rows.extend(compare_records(name, fresh, baseline, tolerance))
    regressions = [r for r in rows if r["status"] == "regression"]
    blocking = [r for r in regressions if r["kind"] != "band"]
    return {
        "tolerance": tolerance,
        "benchmarks": sorted(set(fresh_files) | set(base_files)),
        "rows": rows,
        "regressions": len(regressions),
        # Band (wall-clock) regressions are separable so callers can gate
        # on the deterministic fields only (``--block-on exact``).
        "exact_regressions": len(blocking),
        "ok": not regressions,
    }


def apply_updates(
    report: Dict, names: List[str], fresh_dir: Path, baseline_dir: Path
) -> List[str]:
    """Accept fresh numbers as the new baseline for the named benchmarks.

    Re-marks the named benchmarks' drift rows as ``updated`` (so they no
    longer block), recomputes the report's regression counts, and copies
    each fresh record over its baseline copy.  Returns a list of error
    strings (unknown names, missing fresh files); on any error nothing
    is copied.
    """
    filenames = [_bench_filename(n) for n in names]
    errors = []
    for filename in filenames:
        if not (fresh_dir / filename).is_file():
            errors.append(
                f"--update {filename}: no fresh record at {fresh_dir / filename}"
            )
    if errors:
        return errors
    updated = set(filenames)
    for row in report["rows"]:
        if row["benchmark"] in updated and row["status"] in (
            "regression", "improved", "new"
        ):
            row["status"] = "updated"
    regressions = [r for r in report["rows"] if r["status"] == "regression"]
    report["regressions"] = len(regressions)
    report["exact_regressions"] = len(
        [r for r in regressions if r["kind"] != "band"]
    )
    report["ok"] = not regressions
    report["updated"] = sorted(updated)
    for filename in filenames:
        src, dst = fresh_dir / filename, baseline_dir / filename
        if src.resolve() != dst.resolve():
            dst.write_text(src.read_text())
    return []


def _render(report: Dict) -> str:
    lines = []
    current = None
    for row in report["rows"]:
        if row["benchmark"] != current:
            current = row["benchmark"]
            lines.append(f"== {current} ==")
        mark = {
            "ok": " ", "info": "i", "new": "+", "improved": "^",
            "regression": "!", "updated": "~",
        }[row["status"]]
        detail = f"{row['fresh']!r} vs baseline {row['baseline']!r}"
        if "delta_rel" in row:
            detail += f" ({row['delta_rel']:+.1%})" if isinstance(
                row["delta_rel"], float
            ) else f" (delta {row['delta_rel']})"
        lines.append(f" {mark} {row['field']}: {detail} [{row['status']}]")
    verdict = (
        "no regressions"
        if report["ok"]
        else f"{report['regressions']} regression(s)"
    )
    lines.append(
        f"repro bench check: {verdict} across "
        f"{len(report['benchmarks'])} benchmark file(s) "
        f"(tolerance {report['tolerance']:.0%} on wall-clock fields)"
    )
    if report.get("updated"):
        lines.append(
            "baselines updated: " + ", ".join(report["updated"])
        )
    if report.get("block_on") == "exact" and not report["ok"]:
        band_only = report["regressions"] - report["exact_regressions"]
        if report["exact_regressions"]:
            lines.append(
                f"blocking: {report['exact_regressions']} exact-field "
                "regression(s) [--block-on exact]"
            )
        elif band_only:
            lines.append(
                f"advisory only: {band_only} wall-clock regression(s) "
                "within --block-on exact policy"
            )
    return "\n".join(lines)


def bench_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Compare fresh benchmark numbers against committed baselines.",
    )
    sub = parser.add_subparsers(dest="command")
    check = sub.add_parser(
        "check", help="diff BENCH_*.json files between two directories"
    )
    check.add_argument(
        "--fresh",
        type=Path,
        default=Path("benchmarks/out"),
        help="directory holding freshly generated BENCH_*.json files "
        "(default: benchmarks/out)",
    )
    check.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="directory holding baseline BENCH_*.json files "
        "(default: same as --fresh, i.e. the committed copies)",
    )
    check.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative tolerance band for wall-clock fields "
        f"(default {DEFAULT_TOLERANCE})",
    )
    check.add_argument("--json", action="store_true", help="machine-readable output")
    check.add_argument(
        "--block-on",
        choices=("all", "exact"),
        default="all",
        help="which regressions set a failing exit code: 'all' (default) "
        "or 'exact' (only deterministic/exact-field and structural "
        "regressions block; wall-clock band drift is advisory)",
    )
    check.add_argument(
        "--out", type=Path, default=None,
        help="also write the JSON comparison report to this file",
    )
    check.add_argument(
        "--update", action="append", metavar="NAME", default=None,
        help="accept the fresh numbers of this benchmark as the new "
        "baseline ('sim' means BENCH_sim.json; repeatable): its drift "
        "is reported but never blocks, and the fresh record is copied "
        "over the baseline copy",
    )
    args = parser.parse_args(argv)

    if args.command != "check":
        parser.print_help()
        return 2

    baseline_dir = args.baseline if args.baseline is not None else args.fresh
    for label, path in (("fresh", args.fresh), ("baseline", baseline_dir)):
        if not path.is_dir():
            print(f"repro bench check: no such {label} directory: {path}",
                  file=sys.stderr)
            return 2

    report = compare_dirs(args.fresh, baseline_dir, tolerance=args.tolerance)
    report["block_on"] = args.block_on
    if args.update:
        errors = apply_updates(report, args.update, args.fresh, baseline_dir)
        if errors:
            for error in errors:
                print(f"repro bench check: {error}", file=sys.stderr)
            return 2
    if not report["benchmarks"]:
        print(
            f"repro bench check: no BENCH_*.json files under {args.fresh} "
            f"or {baseline_dir}",
            file=sys.stderr,
        )
        return 2

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(_render(report))
    blocking = (
        report["regressions"] if args.block_on == "all"
        else report["exact_regressions"]
    )
    return 0 if not blocking else 1
