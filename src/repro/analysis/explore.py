"""Bounded DPOR-style schedule exploration: certify trace-invariance.

The race detector (:mod:`repro.analysis.races`) reports *candidate*
order-sensitivities: same-timestamp conflicting accesses whose relative
order is decided only by the event queue's FIFO tiebreak.  A report is a
smell, not a verdict — the access pair may be benign (both orders compute
the same result).  This module closes that gap by *executing* the other
order and comparing outcomes.

The approach is dynamic partial-order reduction in miniature:

* A scenario is replayed under a :class:`~repro.analysis.schedule.
  DemoteTiebreak` policy whose directives permute only same-``(time,
  priority)`` event ties — everything the kernel treats as semantically
  ordered (virtual time, URGENT-before-NORMAL) is untouchable.
* The only candidate permutations are the race detector's conflict
  pairs (its happens-before pruning already removed causally-ordered
  pairs), so independent events are never reordered — this is the DPOR
  persistent-set idea: exploring schedules that differ only in the
  order of non-conflicting events is provably redundant.
* Each explored schedule re-runs detection, so races that only surface
  *after* a flip extend the frontier, up to a depth / schedule budget.
* A schedule whose payload digest differs from the baseline is a real
  divergence: it is delta-debugged down to a minimal flip set and the
  first divergent span is localized via :func:`repro.obs.diff_traces`.

When the frontier drains without divergence and without hitting a
budget, the scenario is **certified schedule-invariant** over its pruned
tie-permutation space: no same-instant reordering the detector can name
changes a single payload byte.  A scenario with zero reported races is
certified after the baseline run alone.

Flip directives name events by their FIFO sequence number from the run
that reported them.  This is sound because replay is deterministic: the
prefix of a re-run up to the first demoted window enqueues exactly the
same events with exactly the same sequence numbers.  Nested flips are
expressed against the parent run's own schedule for the same reason.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .schedule import DemoteTiebreak

__all__ = [
    "Flip",
    "Scenario",
    "ScheduleDivergence",
    "ExplorationResult",
    "ScheduleExplorer",
    "builtin_scenarios",
    "payload_digest",
    "run_racy",
]

#: Payload keys excluded from the divergence digest: the ``races`` list
#: names FIFO sequence numbers, which legitimately differ under a flip
#: (the flip *is* a renumbering) without the outcome differing.
VOLATILE_KEYS = ("races",)


@dataclass(frozen=True)
class Flip:
    """Demote one event past its same-``(time, priority)`` tie window.

    ``seq`` is the event's FIFO sequence number in the run the flip was
    derived from; the remaining fields describe the race that proposed
    it, and identify the flip stably across runs (:meth:`signature`).
    """

    seq: int
    time: float
    label: str
    first_context: str
    second_context: str

    @classmethod
    def from_report(cls, report: Dict[str, Any]) -> "Flip":
        """Build the flip that reverses a race report's observed order."""
        return cls(
            seq=report["first"]["seq"],
            time=report["t"],
            label=report["label"],
            first_context=report["first"]["context"],
            second_context=report["second"]["context"],
        )

    def signature(self) -> Tuple[float, str, str, str]:
        """Replay-stable identity (sequence numbers are schedule-local)."""
        return (self.time, self.label, self.first_context, self.second_context)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.time,
            "label": self.label,
            "first": self.first_context,
            "second": self.second_context,
        }


@dataclass
class Scenario:
    """A replayable workload the explorer can drive.

    ``run(tiebreak=..., detect_races=..., recorder=...)`` must return the
    JSON-friendly payload of one complete run; two calls with equal
    arguments must return byte-identical payloads (modulo
    :data:`VOLATILE_KEYS`), and the ``tiebreak``/``detect_races``/
    ``recorder`` instrumentation must itself be payload-passive.
    """

    name: str
    run: Callable[..., Dict[str, Any]]
    description: str = ""


@dataclass
class ScheduleDivergence:
    """One schedule whose outcome differs from the baseline."""

    #: Minimal flip set (delta-debugged) that still diverges.
    flips: Tuple[Flip, ...]
    #: The flip trail as first discovered (superset of ``flips``).
    found_flips: Tuple[Flip, ...]
    digest: str
    #: First payload key path that differs (``$.qos.response_time``).
    payload_path: Optional[str] = None
    #: First divergent span from :func:`repro.obs.diff_traces`.
    first_span: Optional[Dict[str, Any]] = None
    #: Set when the divergent schedule crashed instead of finishing.
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "flips": [f.to_dict() for f in self.flips],
            "found_flips": [f.to_dict() for f in self.found_flips],
            "digest": self.digest,
            "payload_path": self.payload_path,
            "first_span": self.first_span,
            "error": self.error,
        }


@dataclass
class ExplorationResult:
    """Outcome of one bounded exploration."""

    scenario: str
    baseline_digest: str
    #: Scenario executions total (search + minimization + localization).
    schedules: int
    #: Distinct flipped schedules explored during the search proper.
    explored: int
    #: Same-``(time, priority)`` windows with >= 2 events in the baseline.
    tie_windows: int
    #: Distinct race signatures observed across all detection runs.
    races_seen: int
    certified: bool
    exhausted: bool
    #: Which budget stopped the search early, if any.
    budget_hit: Optional[str]
    divergences: List[ScheduleDivergence] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "baseline_digest": self.baseline_digest,
            "schedules": self.schedules,
            "explored": self.explored,
            "tie_windows": self.tie_windows,
            "races_seen": self.races_seen,
            "certified": self.certified,
            "exhausted": self.exhausted,
            "budget_hit": self.budget_hit,
            "divergences": [d.to_dict() for d in self.divergences],
        }

    def summary(self) -> str:
        if self.certified:
            return (
                f"{self.scenario}: certified schedule-invariant "
                f"({self.explored} flipped schedule(s) explored, "
                f"{self.races_seen} race signature(s), "
                f"{self.tie_windows} tie windows)"
            )
        if self.divergences:
            d = self.divergences[0]
            where = d.payload_path or (d.error and "crash") or "payload"
            return (
                f"{self.scenario}: DIVERGENT — minimal schedule of "
                f"{len(d.flips)} flip(s) changes {where} "
                f"({self.explored} schedule(s) explored)"
            )
        return (
            f"{self.scenario}: inconclusive — budget hit "
            f"({self.budget_hit}) after {self.explored} schedule(s), "
            "no divergence found"
        )


def payload_digest(
    payload: Dict[str, Any], volatile: Tuple[str, ...] = VOLATILE_KEYS
) -> str:
    """Canonical outcome digest, ignoring schedule-local bookkeeping."""
    trimmed = {k: v for k, v in payload.items() if k not in volatile}
    blob = json.dumps(trimmed, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def first_payload_divergence(
    a: Any, b: Any, path: str = "$"
) -> Optional[str]:
    """Key path of the first difference between two payloads, else None.

    Dict keys are compared in sorted order so the answer is stable; list
    items positionally.  Returns a JSONPath-ish string like
    ``$.qos.response_time`` or ``$.image_times[3][1]``.
    """
    if type(a) is not type(b):
        return path
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b), key=str):
            if key not in a or key not in b:
                return f"{path}.{key}"
            sub = first_payload_divergence(a[key], b[key], f"{path}.{key}")
            if sub is not None:
                return sub
        return None
    if isinstance(a, (list, tuple)):
        for i, (x, y) in enumerate(zip(a, b)):
            sub = first_payload_divergence(x, y, f"{path}[{i}]")
            if sub is not None:
                return sub
        if len(a) != len(b):
            return f"{path}[{min(len(a), len(b))}]"
        return None
    return None if a == b else path


class ScheduleExplorer:
    """Bounded exploration of one scenario's tie-permutation space.

    ``max_schedules`` bounds search executions (diagnostic re-runs for
    minimization and localization are counted in the result's
    ``schedules`` but never cut a divergence report short);
    ``max_depth`` bounds nested flips per schedule.  With
    ``stop_on_divergence`` (default) the search stops at the first
    divergent schedule — one counterexample is enough for a gate.
    """

    def __init__(
        self,
        scenario: Scenario,
        max_schedules: int = 24,
        max_depth: int = 3,
        localize: bool = True,
        stop_on_divergence: bool = True,
    ):
        self.scenario = scenario
        self.max_schedules = max_schedules
        self.max_depth = max_depth
        self.localize = localize
        self.stop_on_divergence = stop_on_divergence
        self.runs = 0
        self._tie_windows = 0

    # -- execution -------------------------------------------------------
    def _execute(
        self,
        flips: Tuple[Flip, ...],
        detect: bool = True,
        recorder: Any = None,
    ) -> Tuple[str, List[Dict[str, Any]], Optional[Dict[str, Any]], Optional[str]]:
        """One run under ``flips``: (digest, races, payload, error).

        Later flips get higher demotion ranks, so a nested flip demotes
        its event past earlier demotions sharing the window.  A crashed
        run (a reordering can deadlock or trip an invariant) digests its
        error string — always a divergence, never a silent pass.
        """
        directives: Dict[int, int] = {}
        for i, flip in enumerate(flips):
            directives[flip.seq] = max(directives.get(flip.seq, 0), i + 1)
        policy = DemoteTiebreak(directives, observe=not flips)
        self.runs += 1
        try:
            payload = self.scenario.run(
                tiebreak=policy, detect_races=detect, recorder=recorder
            )
        except Exception as exc:  # noqa: BLE001 — crash == divergence
            error = f"{type(exc).__name__}: {exc}"
            digest = "error:" + hashlib.sha256(error.encode()).hexdigest()
            return digest, [], None, error
        if not flips:
            self._tie_windows = policy.tie_windows()
        races = list(payload.get("races", ())) if detect else []
        return payload_digest(payload), races, payload, None

    # -- search ----------------------------------------------------------
    def explore(self) -> ExplorationResult:
        base_digest, base_races, base_payload, base_error = self._execute(())
        if base_error is not None:
            raise RuntimeError(
                f"baseline run of scenario {self.scenario.name!r} failed: "
                f"{base_error}"
            )
        assert base_payload is not None

        frontier: deque = deque([((), base_races)])
        flipped: Set[Tuple] = set()  # race signatures already reversed
        all_sigs: Set[Tuple] = {
            Flip.from_report(r).signature() for r in base_races
        }
        divergences: List[ScheduleDivergence] = []
        explored = 0
        budget_hit: Optional[str] = None
        done = False

        while frontier and not done:
            flips, races = frontier.popleft()
            for report in races:
                flip = Flip.from_report(report)
                sig = flip.signature()
                if sig in flipped:
                    continue
                if len(flips) >= self.max_depth:
                    budget_hit = budget_hit or "max_depth"
                    continue
                if explored + 1 >= self.max_schedules:
                    budget_hit = "max_schedules"
                    done = True
                    break
                flipped.add(sig)
                trail = flips + (flip,)
                digest, child_races, _payload, error = self._execute(trail)
                explored += 1
                if digest != base_digest:
                    divergences.append(
                        self._diagnose(trail, base_digest, base_payload)
                    )
                    if self.stop_on_divergence:
                        done = True
                        break
                else:
                    all_sigs.update(
                        Flip.from_report(r).signature() for r in child_races
                    )
                    frontier.append((trail, child_races))

        # The space was exhausted only if nothing stopped us early: no
        # budget, no early divergence exit, and a drained frontier.
        exhausted = (
            budget_hit is None
            and not frontier
            and not (divergences and self.stop_on_divergence)
        )
        certified = exhausted and not divergences
        return ExplorationResult(
            scenario=self.scenario.name,
            baseline_digest=base_digest,
            schedules=self.runs,
            explored=explored,
            tie_windows=self._tie_windows,
            races_seen=len(all_sigs),
            certified=certified,
            exhausted=exhausted,
            budget_hit=budget_hit,
            divergences=divergences,
        )

    # -- diagnosis -------------------------------------------------------
    def _minimize(
        self, trail: Tuple[Flip, ...], base_digest: str
    ) -> Tuple[Flip, ...]:
        """Greedy delta-debug: drop flips while divergence persists."""
        current = list(trail)
        shrunk = True
        while shrunk and len(current) > 1:
            shrunk = False
            for i in range(len(current)):
                candidate = tuple(current[:i] + current[i + 1 :])
                digest, _races, _payload, _error = self._execute(
                    candidate, detect=False
                )
                if digest != base_digest:
                    current = list(candidate)
                    shrunk = True
                    break
        return tuple(current)

    def _diagnose(
        self,
        trail: Tuple[Flip, ...],
        base_digest: str,
        base_payload: Dict[str, Any],
    ) -> ScheduleDivergence:
        """Shrink a divergent trail and localize where outcomes split."""
        minimal = self._minimize(trail, base_digest)
        digest, _races, payload, error = self._execute(minimal, detect=False)
        payload_path: Optional[str] = None
        first_span: Optional[Dict[str, Any]] = None
        if error is None and payload is not None:
            strip = lambda p: {  # noqa: E731
                k: v for k, v in p.items() if k not in VOLATILE_KEYS
            }
            payload_path = first_payload_divergence(
                strip(base_payload), strip(payload)
            )
            if self.localize:
                first_span = self._localize(minimal)
        return ScheduleDivergence(
            flips=minimal,
            found_flips=trail,
            digest=digest,
            payload_path=payload_path,
            first_span=first_span,
            error=error,
        )

    def _localize(self, minimal: Tuple[Flip, ...]) -> Optional[Dict[str, Any]]:
        """First divergent span between baseline and flipped traces."""
        from ..obs import TraceRecorder, diff_traces

        rec_base, rec_flip = TraceRecorder(), TraceRecorder()
        _d, _r, _p, err_base = self._execute(
            (), detect=False, recorder=rec_base
        )
        _d2, _r2, _p2, err_flip = self._execute(
            minimal, detect=False, recorder=rec_flip
        )
        if err_base or err_flip or not rec_base.records or not rec_flip.records:
            return None
        result = diff_traces(rec_base.records, rec_flip.records)
        if result.first_divergence is None:
            return None
        return result.first_divergence.to_dict()


# --------------------------------------------------------------------------
# Built-in scenarios
# --------------------------------------------------------------------------


def run_racy(
    seed: int = 0, tiebreak=None, detect_races: bool = False, recorder=None
) -> Dict[str, Any]:
    """A deliberately order-sensitive workload (explorer ground truth).

    Two tie windows, each a genuine detector-visible race:

    * ``t=1``: two writers race on a *scratch* cell the payload never
      reads — a benign race, both orders produce the same payload;
    * ``t=2``: two writers race on ``winner`` (last write wins) — the
      payload depends on the tie order, so reversing this window is a
      real divergence.

    The explorer must certify nothing here: it should flip both windows,
    find the ``t=2`` flip divergent, and shrink any divergent trail to
    that single flip.
    """
    from ..sim.core import Simulator

    sim = Simulator(tiebreak=tiebreak)
    detector = None
    if detect_races:
        from .races import RaceDetector

        detector = RaceDetector(sim).attach()
    if recorder is not None:
        recorder.bind(sim)
    state: Dict[str, Any] = {"scratch": 0, "winner": None, "log": []}

    def note(label: str) -> None:
        if detector is not None:
            detector.record(label, "write")

    def scratch_writer(value: int):
        yield sim.timeout(1.0)
        note("racy.scratch")
        state["scratch"] = value

    def winner_writer(name: str):
        yield sim.timeout(2.0)
        note("racy.winner")
        if recorder is not None:
            # position makes the span order-sensitive, so trace diffing
            # can localize the flip (span structure alone would not: each
            # instant's other attrs are tied to its process, not its order)
            recorder.instant(
                "racy.write", cat="racy", writer=name,
                position=len(state["log"]),
            )
        state["winner"] = name
        state["log"].append(name)

    sim.process(scratch_writer(1), name="scratch-a")
    sim.process(scratch_writer(2), name="scratch-b")
    sim.process(winner_writer("a"), name="winner-a")
    sim.process(winner_writer("b"), name="winner-b")
    sim.run()

    payload: Dict[str, Any] = {
        "experiment": "racy",
        "seed": seed,
        "winner": state["winner"],
        "log": list(state["log"]),
    }
    if detector is not None:
        payload["races"] = [r.to_dict() for r in detector.finish()]
        detector.detach()
    if recorder is not None:
        recorder.finish()
        recorder.unbind()
    return payload


def _run_fig5_cell(
    seed: int, tiebreak=None, detect_races: bool = False, recorder=None
) -> Dict[str, Any]:
    """One Experiment-3 profiling cell as a self-contained testbed run.

    ``fig5_database`` spawns a fresh simulator per (config, point) cell
    through the profiling driver, so tie directives — which name one
    simulator's sequence numbers — cannot target it as a whole.  This
    replays a single representative cell (fovea 160 at 60 % CPU, the
    mid-grid point) exactly as :meth:`ProfilingDriver.measure` would.
    """
    from ..apps.visualization import VizWorkload, make_viz_app
    from ..experiments.fig5 import EXP3_BW, EXP3_COSTS
    from ..profiling import ResourcePoint, limits_for_point
    from ..sandbox import Testbed
    from ..sim import derive_seed
    from ..tunable import Configuration

    config = Configuration({"dR": 160, "c": "lzw", "l": 4})
    point = ResourcePoint({"client.cpu": 0.6, "client.network": EXP3_BW})
    run_seed = derive_seed(seed, f"{config.label()}|{point.label()}")
    app = make_viz_app()
    testbed = Testbed(
        host_specs=app.env.host_specs(),
        link_specs=app.env.link_specs(),
        seed=run_seed,
        tiebreak=tiebreak,
    )
    detector = None
    if detect_races:
        from .races import RaceDetector, watch

        detector = RaceDetector(testbed.sim).attach()
        for host_name in sorted(testbed.hosts):
            watch(detector, testbed.hosts[host_name])
    if recorder is not None:
        recorder.bind(testbed.sim)
    workload = VizWorkload(n_images=2, costs=EXP3_COSTS, seed=run_seed)
    rt = app.instantiate(
        testbed,
        config,
        limits=limits_for_point(point),
        workload=workload,
        seed=run_seed,
    )
    testbed.run(until=600.0)
    testbed.shutdown()
    if not rt.finished.triggered:
        raise RuntimeError("fig5 cell run did not finish by t=600")
    payload: Dict[str, Any] = {
        "experiment": "fig5-cell",
        "seed": seed,
        "config": config.label(),
        "point": point.label(),
        "metrics": rt.qos.snapshot(),
        "image_times": [[t, d] for t, d in workload.image_times],
    }
    if detector is not None:
        payload["races"] = [r.to_dict() for r in detector.finish()]
        detector.detach()
    if recorder is not None:
        recorder.finish()
        recorder.unbind()
    return payload


def builtin_scenarios(seed: int = 0) -> Dict[str, Scenario]:
    """The explorable workloads behind ``repro check explore``."""

    def chaos(tiebreak=None, detect_races=False, recorder=None):
        from ..experiments.chaos import run_chaos

        _fig, payload = run_chaos(
            seed=seed,
            tiebreak=tiebreak,
            detect_races=detect_races,
            recorder=recorder,
        )
        return payload

    def recovery(tiebreak=None, detect_races=False, recorder=None):
        from ..experiments.recovery import run_recovery

        _fig, payload = run_recovery(
            seed=seed,
            tiebreak=tiebreak,
            detect_races=detect_races,
            recorder=recorder,
        )
        return payload

    def fig5(tiebreak=None, detect_races=False, recorder=None):
        return _run_fig5_cell(
            seed, tiebreak=tiebreak, detect_races=detect_races,
            recorder=recorder,
        )

    def racy(tiebreak=None, detect_races=False, recorder=None):
        return run_racy(
            seed, tiebreak=tiebreak, detect_races=detect_races,
            recorder=recorder,
        )

    return {
        "chaos": Scenario(
            "chaos", chaos,
            "adaptation trajectory through crash/partition/loss faults",
        ),
        "recovery": Scenario(
            "recovery", recovery,
            "supervision, checkpoint restart, failover, and overload shedding",
        ),
        "fig5": Scenario(
            "fig5", fig5,
            "one Experiment-3 profiling cell (fovea 160 @ 60% CPU)",
        ),
        "racy": Scenario(
            "racy", racy,
            "synthetic order-sensitive workload (must NOT certify)",
        ),
    }
