"""Finding model shared by every analysis pass.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`fingerprint` deliberately ignores the line *number* (hashing the
rule, the path, and the stripped source line instead) so that checked-in
baseline entries survive unrelated edits above the flagged line.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = ["Finding", "Severity"]


class Severity:
    """Finding severities (plain constants; no enum dependency)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One analysis finding: rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    severity: str = Severity.ERROR
    #: The stripped source line the finding points at (baseline matching).
    context: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching."""
        blob = f"{self.rule}\x00{self.path}\x00{self.context}".encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "severity": self.severity,
            "context": self.context,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        text = f"{self.location()}: {self.rule}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order: path, line, column, rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


__all__.append("sort_findings")
