"""Sim-protocol lint rules (the ``SIM`` family).

These rules encode the coroutine discipline of :mod:`repro.sim.core`:
process generators only ``yield`` events, events trigger exactly once,
created events are always consumed, and the kernel's ``run()`` loop is
never re-entered from inside a process.  Each static rule has a dynamic
counterpart in the kernel itself (``SimulationError`` at run time); the
checker surfaces the misuse before a simulation ever runs.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from .findings import Finding

__all__ = ["PROTOCOL_RULES", "ProtocolVisitor"]

PROTOCOL_RULES: Dict[str, str] = {
    "SIM101": "process generator yields a non-event literal",
    "SIM102": "event created and immediately discarded (leaked event)",
    "SIM103": "succeed()/fail() reachable twice on one event in a block",
    "SIM104": "sim.run()/step() re-entered from inside a process generator",
}

#: Attribute calls whose result is an Event the process can yield.
_EVENT_FACTORIES = {
    "timeout", "event", "process", "any_of", "all_of",
    "put", "get", "request", "send", "transfer",
}

#: Event constructors by class name (``Timeout(sim, 1.0)`` style).
_EVENT_CLASSES = {"Event", "Timeout", "Process", "AnyOf", "AllOf"}

#: Creating one of these as a bare statement leaks a queue entry: the
#: event fires but nobody observes it.  (``put`` is deliberately absent:
#: fire-and-forget puts are legitimate.)
_LEAKABLE = {"timeout", "event"}

_TRIGGERS = {"succeed", "fail"}


def _is_event_yield(value: Optional[ast.AST]) -> bool:
    """Does this yield value look like an Event produced by the kernel?"""
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr in _EVENT_FACTORIES:
            return True
        if isinstance(func, ast.Name) and func.id in _EVENT_CLASSES:
            return True
    return False


def _is_literal(value: Optional[ast.AST]) -> bool:
    return value is None or isinstance(
        value, (ast.Constant, ast.Tuple, ast.List, ast.Dict, ast.Set, ast.JoinedStr)
    )


def _own_yields(func: ast.AST) -> List[ast.Yield]:
    """Yield nodes belonging to ``func`` itself (not nested functions)."""
    yields: List[ast.Yield] = []
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Yield):
            yields.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return yields


def _receiver_is_sim(func: ast.Attribute) -> bool:
    """True for ``sim.run(...)`` / ``self.sim.run(...)`` style receivers."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id == "sim"
    if isinstance(value, ast.Attribute):
        return value.attr == "sim"
    return False


class ProtocolVisitor(ast.NodeVisitor):
    """Single-pass AST visitor emitting every SIM-family finding."""

    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []

    def run(self, tree: ast.AST) -> List[Finding]:
        self.visit(tree)
        for node in ast.walk(tree):
            body = getattr(node, "body", None)
            if isinstance(body, list):
                self._check_block(body)
            orelse = getattr(node, "orelse", None)
            if isinstance(orelse, list):
                self._check_block(orelse)
            final = getattr(node, "finalbody", None)
            if isinstance(final, list):
                self._check_block(final)
        return self.findings

    def _flag(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                hint=hint,
            )
        )

    # -- SIM101 / SIM104: per process-generator checks -------------------
    def _visit_function(self, node: ast.AST) -> None:
        yields = _own_yields(node)
        if yields and any(_is_event_yield(y.value) for y in yields):
            # This generator is a sim process: every yield must be an event.
            for y in yields:
                if _is_literal(y.value):
                    what = (
                        "a bare value"
                        if y.value is None
                        else f"a literal ({ast.dump(y.value)[:40]})"
                    )
                    self._flag(
                        "SIM101", y,
                        f"process generator yields {what}, not an Event",
                        "yield only Event objects (sim.timeout(...), store.get(), ...)",
                    )
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("run", "step", "run_process")
                    and _receiver_is_sim(sub.func)
                ):
                    self._flag(
                        "SIM104", sub,
                        f"sim.{sub.func.attr}() called from inside a process "
                        "generator (kernel re-entrancy)",
                        "yield events instead; only the driver calls run()",
                    )
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- SIM102 / SIM103: per statement-block checks ---------------------
    def _check_block(self, body: List[ast.stmt]) -> None:
        triggered: Dict[str, ast.AST] = {}
        for stmt in body:
            if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
                continue
            call = stmt.value
            func = call.func
            # SIM102: event factory called for its side effect only.
            if isinstance(func, ast.Attribute) and func.attr in _LEAKABLE:
                self._flag(
                    "SIM102", stmt,
                    f".{func.attr}(...) result discarded: the event is "
                    "scheduled but nobody can ever observe it",
                    "yield it, store it, or do not create it",
                )
            elif isinstance(func, ast.Name) and func.id in ("Event", "Timeout"):
                self._flag(
                    "SIM102", stmt,
                    f"{func.id}(...) constructed and discarded (leaked event)",
                    "yield it, store it, or do not create it",
                )
            # SIM103: second trigger of the same event in one block.
            if isinstance(func, ast.Attribute) and func.attr in _TRIGGERS:
                target = ast.dump(func.value)
                if target in triggered:
                    self._flag(
                        "SIM103", stmt,
                        "succeed()/fail() called twice on the same event in "
                        "one block (second call raises at run time)",
                        "an event triggers exactly once; guard or restructure",
                    )
                else:
                    triggered[target] = stmt
