"""``repro check`` — dynamic schedule exploration and dataflow linting.

Two subcommands:

* ``repro check explore <scenario>`` replays a scenario under permuted
  same-``(time, priority)`` event orders (:mod:`repro.analysis.explore`)
  and either certifies it schedule-invariant or prints the minimal
  divergent flip schedule with its first divergent span.
* ``repro check flow [paths]`` runs the interprocedural nondeterminism
  dataflow linter (:mod:`repro.analysis.dataflow`, ``DET5xx``) with the
  same inline-allow and baseline gating as ``repro lint``.

Exit codes mirror ``repro lint``: 0 clean/certified, 1 findings (a
divergence, a taint chain, or a stale baseline entry), 2 usage error.
An exploration that hits its budget without finding a divergence exits
0 with an explicit "inconclusive" note — budgets bound CI time, and a
truncated pass must not read as a failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .lint import BASELINE_NAME

__all__ = ["check_main"]


def _explore_main(args: argparse.Namespace) -> int:
    from .explore import ScheduleExplorer, builtin_scenarios

    scenarios = builtin_scenarios(seed=args.seed)
    if args.list:
        for name in sorted(scenarios):
            print(f"{name}  {scenarios[name].description}")
        return 0
    if args.scenario is None:
        print("repro check explore: scenario required", file=sys.stderr)
        return 2
    if args.scenario not in scenarios:
        print(
            f"repro check explore: unknown scenario {args.scenario!r} "
            f"(known: {', '.join(sorted(scenarios))})",
            file=sys.stderr,
        )
        return 2

    explorer = ScheduleExplorer(
        scenarios[args.scenario],
        max_schedules=args.max_schedules,
        max_depth=args.max_depth,
        localize=not args.no_localize,
    )
    result = explorer.explore()

    if args.json:
        print(json.dumps(result.to_dict(), indent=1, sort_keys=True))
    else:
        print(result.summary())
        for div in result.divergences:
            print(f"  minimal divergent schedule ({len(div.flips)} flip(s)):")
            for flip in div.flips:
                print(
                    f"    t={flip.time:g} demote seq {flip.seq} on "
                    f"{flip.label!r}: {flip.second_context} before "
                    f"{flip.first_context}"
                )
            if div.error:
                print(f"  flipped run crashed: {div.error}")
            if div.payload_path:
                print(f"  first payload divergence: {div.payload_path}")
            if div.first_span:
                print(
                    f"  first divergent span: {div.first_span.get('key')} "
                    f"({div.first_span.get('kind')}) at "
                    f"t={div.first_span.get('t')}"
                )
        if not result.certified and not result.divergences:
            print(
                "note: inconclusive (budget bound the search); raise "
                "--max-schedules/--max-depth for a full certificate"
            )

    return 1 if result.divergences else 0


def _flow_main(args: argparse.Namespace) -> int:
    from .dataflow import DATAFLOW_RULES, flow_paths

    if args.list_rules:
        for rule_id in sorted(DATAFLOW_RULES):
            print(f"{rule_id}  {DATAFLOW_RULES[rule_id]}")
        return 0

    root = Path.cwd()
    paths = args.paths or [root / "src", root / "benchmarks"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro check flow: no such path: {missing[0]}", file=sys.stderr)
        return 2

    baseline = args.baseline
    if baseline is None and (root / BASELINE_NAME).exists():
        baseline = root / BASELINE_NAME

    result = flow_paths(paths, root=root, baseline=baseline)

    if args.json:
        print(json.dumps(result.to_dict(), indent=1, sort_keys=True))
    else:
        for finding in result.parse_errors + result.findings:
            print(finding.render())
        for entry in result.unused_baseline:
            if entry.rule in DATAFLOW_RULES:
                print(
                    f"stale baseline entry: {entry.rule} {entry.path} "
                    f"({entry.reason or 'no reason recorded'})"
                )
        status = "clean" if result.clean else f"{len(result.findings)} finding(s)"
        print(
            f"repro check flow: {status}; {result.files_checked} file(s), "
            f"{result.suppressed_baseline} baselined"
        )

    stale_flow = [
        e for e in result.unused_baseline if e.rule in DATAFLOW_RULES
    ]
    if not result.clean or stale_flow:
        return 1
    return 0


def check_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Schedule-invariance exploration and dataflow linting.",
    )
    sub = parser.add_subparsers(dest="command")

    explore = sub.add_parser(
        "explore", help="replay a scenario under permuted event-tie orders"
    )
    explore.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario name (see --list)",
    )
    explore.add_argument("--seed", type=int, default=0, help="scenario seed")
    explore.add_argument(
        "--max-schedules", type=int, default=24,
        help="total schedule budget for the search (default 24)",
    )
    explore.add_argument(
        "--max-depth", type=int, default=3,
        help="max nested flips per schedule (default 3)",
    )
    explore.add_argument(
        "--no-localize", action="store_true",
        help="skip trace-diff localization of divergences",
    )
    explore.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    explore.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    flow = sub.add_parser(
        "flow", help="interprocedural nondeterminism dataflow linter (DET5xx)"
    )
    flow.add_argument(
        "paths", nargs="*", type=Path, default=None,
        help="files/directories to analyze (default: src/ and benchmarks/)",
    )
    flow.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: ./{BASELINE_NAME} when present)",
    )
    flow.add_argument(
        "--list-rules", action="store_true",
        help="print every DET5xx rule id and exit",
    )
    flow.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    args = parser.parse_args(argv)
    if args.command == "explore":
        return _explore_main(args)
    if args.command == "flow":
        return _flow_main(args)
    parser.print_help()
    return 2
