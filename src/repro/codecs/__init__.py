"""Codecs: wavelet pyramids, real compressors, and virtual-cost models."""

from .images import image_series, synthetic_image
from .lzw import lzw_compress, lzw_decompress
from .model import BZ2, CODECS, LZW, MTF_RLE, NULL, Codec, get_codec
from .rle import mtf_decode, mtf_encode, rle_compress, rle_decompress
from .wavelet import (
    WaveletPyramid,
    haar2d_decompose,
    haar2d_forward,
    haar2d_inverse,
    haar2d_reconstruct,
)

__all__ = [
    "WaveletPyramid",
    "haar2d_forward",
    "haar2d_inverse",
    "haar2d_decompose",
    "haar2d_reconstruct",
    "lzw_compress",
    "lzw_decompress",
    "rle_compress",
    "rle_decompress",
    "mtf_encode",
    "mtf_decode",
    "Codec",
    "CODECS",
    "get_codec",
    "NULL",
    "LZW",
    "BZ2",
    "MTF_RLE",
    "synthetic_image",
    "image_series",
]
