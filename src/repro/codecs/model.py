"""Codec abstractions: real byte codecs plus virtual-time cost models.

The paper's compression tradeoff (Section 5.2, Fig. 6a) is: compression B
(Bzip2) achieves a better ratio than compression A (LZW) at a higher CPU
cost.  A :class:`Codec` couples a real byte transformation (so compressed
*sizes* are genuine, measured on the actual data) with calibrated
*cycles-per-byte* costs that the simulated client and server charge to
their sandboxes.

``cycles`` here are the abstract CPU work units of :class:`repro.cluster.CPU`
(one unit ≈ one megacycle on the machine catalog scale; a PII-450 host runs
450 units/second).
"""

from __future__ import annotations

import bz2
from dataclasses import dataclass
from typing import Callable, Dict

from .lzw import lzw_compress, lzw_decompress
from .rle import mtf_decode, mtf_encode, rle_compress, rle_decompress

__all__ = ["Codec", "CODECS", "get_codec", "NULL", "LZW", "BZ2", "MTF_RLE"]


@dataclass(frozen=True)
class Codec:
    """A compression method with virtual CPU cost coefficients.

    compress_cost / decompress_cost are work units per *input* byte
    (compress) and per *output* byte (decompress) respectively, calibrated
    so that the paper's timing relationships hold on the machine catalog
    scale (see DESIGN.md Section 5).
    """

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]
    compress_cost: float
    decompress_cost: float

    def compress_work(self, nbytes: float) -> float:
        """Virtual CPU work to compress ``nbytes`` of raw data."""
        return self.compress_cost * nbytes

    def decompress_work(self, nbytes: float) -> float:
        """Virtual CPU work to decompress back into ``nbytes`` of raw data."""
        return self.decompress_cost * nbytes

    def roundtrip_ok(self, data: bytes) -> bool:
        return self.decompress(self.compress(data)) == data

    def ratio(self, data: bytes) -> float:
        """Measured compression ratio on ``data`` (>= values mean smaller)."""
        if not data:
            return 1.0
        compressed = self.compress(data)
        if not compressed:
            return float("inf")
        return len(data) / len(compressed)


def _identity(data: bytes) -> bytes:
    return data


def _mtf_rle_compress(data: bytes) -> bytes:
    return rle_compress(mtf_encode(data))


def _mtf_rle_decompress(data: bytes) -> bytes:
    return mtf_decode(rle_decompress(data))


#: No compression (baseline).
NULL = Codec(
    name="none",
    compress=_identity,
    decompress=_identity,
    compress_cost=0.0,
    decompress_cost=0.0,
)

#: Compression A in the paper: LZW — cheap, moderate ratio.
#: 5e-5 units/byte ≈ 0.11 µs/byte on a PII-450 (450 units/s scale).
LZW = Codec(
    name="lzw",
    compress=lzw_compress,
    decompress=lzw_decompress,
    compress_cost=5e-5,
    decompress_cost=3e-5,
)

#: Compression B in the paper: Bzip2 — expensive, better ratio.
#: ~10x the LZW CPU cost, producing the paper's CPU-bound regime at high
#: bandwidth (Fig. 6a): compressing a ~5.6 MB image stack costs ~5.6 s of
#: full PII-450 time.
BZ2 = Codec(
    name="bzip2",
    compress=lambda data: bz2.compress(data, 9) if data else b"",
    decompress=lambda data: bz2.decompress(data) if data else b"",
    compress_cost=4.5e-4,
    decompress_cost=1e-4,
)

#: A simple MTF+RLE codec (useful as a third, very cheap option and for
#: exercising the framework with more than two compression knob values).
MTF_RLE = Codec(
    name="mtf-rle",
    compress=_mtf_rle_compress,
    decompress=_mtf_rle_decompress,
    compress_cost=2e-5,
    decompress_cost=1e-5,
)

CODECS: Dict[str, Codec] = {c.name: c for c in (NULL, LZW, BZ2, MTF_RLE)}


def get_codec(name: str) -> Codec:
    try:
        return CODECS[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {sorted(CODECS)}"
        ) from None
